"""Quickstart: ask InferA a question about a HACC-style ensemble.

Generates a small synthetic ensemble (same file hierarchy and schema as
the real HACC data products), starts the assistant, and runs the paper's
"precise" control question end to end.  Everything lands in ./quickstart_out:
the provenance session (plan, generated SQL/Python, intermediate CSVs) and
the on-disk analysis database.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro.core import InferA, InferAConfig
from repro.llm.errors import NO_ERRORS
from repro.sim import EnsembleSpec, generate_ensemble

OUT = Path(__file__).resolve().parent / "quickstart_out"


def main() -> None:
    print("== generating a synthetic HACC-style ensemble ==")
    ensemble = generate_ensemble(
        OUT / "ensemble",
        EnsembleSpec(n_runs=2, n_particles=3000, timesteps=(0, 249, 498, 624)),
    )
    print(ensemble.describe())

    # NO_ERRORS disables the calibrated LLM-error injection so the
    # quickstart is deterministic; drop it to see the QA repair loop work.
    assistant = InferA(ensemble, OUT / "workspace", InferAConfig(error_model=NO_ERRORS))

    question = (
        "Can you find me the top 20 largest friends-of-friends halos "
        "from timestep 498 in simulation 0?"
    )
    print(f"\n== asking ==\n{question}\n")
    report = assistant.run_query(question)

    print(f"completed: {report.completed}")
    print(f"plan steps: {report.run.plan_size}  (analysis steps: {report.analysis_steps})")
    print(f"tokens used: {report.tokens:,}")
    print(f"storage overhead: {report.storage_bytes:,} bytes "
          f"(of a {ensemble.total_data_bytes():,}-byte ensemble)")
    load = report.run.load_report
    print(f"data selectivity: {load.bytes_selected:,} / {load.bytes_total:,} bytes "
          f"= {load.selectivity:.3%} of the ensemble read")

    print("\n== result ==")
    print(report.tables["work"])
    print(f"\nprovenance session: {report.session_dir}")


if __name__ == "__main__":
    main()
