"""Tour of the substrate layers, used directly (no agents).

InferA is built on independently usable pieces; this example drives each
one the way a downstream user would: the GenericIO-style format, the
columnar SQL database, the Frame analytics layer, the FoF halo finder,
and the SVG/3D visualization backend.

Run:  python examples/substrate_tour.py
"""

from pathlib import Path

import numpy as np

from repro.db import Database
from repro.frame import Frame
from repro.gio import GIOFile
from repro.sim import EnsembleSpec, friends_of_friends, generate_ensemble
from repro.viz import Figure

OUT = Path(__file__).resolve().parent / "substrate_out"


def main() -> None:
    ensemble = generate_ensemble(
        OUT / "ensemble",
        EnsembleSpec(n_runs=2, n_particles=3000, timesteps=(498, 624)),
    )

    # --- GenericIO-style selective reads --------------------------------
    gio = GIOFile(ensemble.file_path(0, 624, "halos"))
    print(f"halos.gio: {gio.num_rows} rows, columns {gio.columns[:4]}...")
    two_cols = gio.read(["fof_halo_tag", "fof_halo_mass"])
    print(f"selective read touched {gio.bytes_for(['fof_halo_tag', 'fof_halo_mass']):,} "
          f"of {gio.total_data_nbytes():,} payload bytes")

    # --- SQL over an on-disk columnar database --------------------------
    db = Database(OUT / "analysis.db")
    if not db.has_table("halos"):
        for run in range(ensemble.n_runs):
            for step in ensemble.timesteps:
                frame = ensemble.read(run, step, "halos").assign(
                    run=np.int64(run), step=np.int64(step)
                )
                if db.has_table("halos"):
                    db.append("halos", frame)
                else:
                    db.create_table("halos", frame)
    top = db.query(
        "SELECT run, step, fof_halo_tag, fof_halo_mass FROM halos "
        "WHERE step = 624 ORDER BY fof_halo_mass DESC LIMIT 5"
    )
    print("\ntop 5 halos at step 624 (SQL):")
    print(top)

    stats = db.query(
        "SELECT run, COUNT(*) AS n, AVG(fof_halo_mass) AS mean_mass, "
        "MEDIAN(fof_halo_mass) AS median_mass FROM halos GROUP BY run ORDER BY run"
    )
    print("\nper-run statistics (streaming GROUP BY):")
    print(stats)

    # --- Frame analytics -------------------------------------------------
    halos = db.table_frame("halos")
    gas_fraction = halos["sod_halo_MGas500c"] / halos["sod_halo_M500c"]
    enriched = halos.assign(gas_fraction=gas_fraction)
    by_step = enriched.groupby("step").agg({"gas_fraction": "mean"})
    print("\nmean gas fraction by step (Frame groupby):")
    print(by_step)

    # --- the FoF halo finder on raw particles ----------------------------
    particles = ensemble.read(0, 624, "particles", ["x", "y", "z"])
    positions = np.stack([particles[c] for c in "xyz"], axis=1)
    fof = friends_of_friends(positions, ensemble.box_size, linking_length=0.45, min_members=8)
    print(f"\nFoF on {len(positions)} particles: {fof.num_groups} groups "
          f"(catalog has {gio.num_rows} halos)")

    # --- visualization ----------------------------------------------------
    fig = Figure(width=700, height=420)
    ax = fig.axes(0)
    for i, run in enumerate(np.unique(halos["run"])):
        sel = enriched.filter(enriched["run"] == run)
        grouped = sel.groupby("step").agg({"fof_halo_mass": "max"})
        ordered = grouped.sort_values("step")
        ax.plot(ordered["step"], ordered["fof_halo_mass_max"], label=f"sim {int(run)}")
    ax.set_yscale("log")
    ax.set_xlabel("timestep")
    ax.set_ylabel("largest halo mass [Msun/h]")
    ax.title = "growth of the most massive halo"
    path = OUT / "substrate_tour.svg"
    fig.save(path)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
