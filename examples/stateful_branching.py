"""Stateful sessions: plan feedback, provenance audit, checkpoint branching.

Demonstrates the three §4.2 features together:

1. a scripted human-feedback round during planning (the multi-turn
   dialogue the evaluation deliberately skips),
2. the provenance audit trail, verified and partially replayed,
3. branch-from-checkpoint: re-running only the steps after the branch
   point instead of the whole workflow.

Run:  python examples/stateful_branching.py
"""

from pathlib import Path

from repro.agents.planner import ScriptedFeedback
from repro.core import InferAConfig, SessionManager
from repro.llm.errors import NO_ERRORS
from repro.provenance import verify_audit_trail
from repro.sim import EnsembleSpec, generate_ensemble

OUT = Path(__file__).resolve().parent / "branching_out"


def main() -> None:
    ensemble = generate_ensemble(
        OUT / "ensemble",
        EnsembleSpec(n_runs=3, n_particles=2000, timesteps=(0, 498, 624)),
    )
    manager = SessionManager(
        ensemble, OUT / "workspace", InferAConfig(error_model=NO_ERRORS)
    )
    session = manager.new_session("exploration")

    # --- 1. plan refinement with human feedback -------------------------
    question = (
        "Plot the change in mass of the largest friends-of-friends halos "
        "for all timesteps in all simulations using fof_halo_mass."
    )
    print(f"== asking with one feedback round ==\n{question}\n")
    report = session.run(question, feedback=ScriptedFeedback(["limit runs 2"]))
    print(f"completed: {report.completed} in {report.plan.rounds} planning rounds")
    load = report.run.load_report
    print(f"runs actually loaded: {sorted(load.tables)} -> "
          f"{load.bytes_selected:,} bytes read\n")

    # --- 2. provenance audit --------------------------------------------
    records = verify_audit_trail(report.session_dir)
    print(f"audit trail verified: {len(records)} sequential records")
    by_kind: dict[str, int] = {}
    for r in records:
        by_kind[r["kind"]] = by_kind.get(r["kind"], 0) + 1
    print(f"artifact kinds: {by_kind}\n")

    # --- 3. branch from the post-load checkpoint ------------------------
    checkpoints = session.checkpoints()
    load_cp = next(cp for cp in checkpoints if cp.node == "data_loader")
    print(f"branching from checkpoint {load_cp.checkpoint_id} "
          f"(after '{load_cp.node}')")
    result = session.branch_from(load_cp.checkpoint_id, "what-if")
    rerun_nodes = [e.node for e in result.events]
    print(f"branched thread re-executed only: {rerun_nodes}")
    print("the load step was restored from the snapshot, not re-run")


if __name__ == "__main__":
    main()
