"""The Fig. 4 case study: 32 simulations, halo count & mass over all timesteps.

Reproduces the paper's scalability demonstration: "the query requests the
creation of two plots from all 32 simulations, visualizing the halo count
and halo mass of the largest halo from all time steps."  The paper's
ensemble was 11.2 TB; ours is a scaled synthetic one, but the pipeline —
plan, selective load, SQL filter, per-run tracking, two line charts — and
the storage-selectivity property are identical.

Run:  python examples/scalability_case_study.py
"""

from pathlib import Path

from repro.core import InferA, InferAConfig
from repro.llm.errors import NO_ERRORS
from repro.sim import EnsembleSpec, generate_ensemble

OUT = Path(__file__).resolve().parent / "scalability_out"


def main() -> None:
    print("== generating the 32-run ensemble ==")
    ensemble = generate_ensemble(
        OUT / "ensemble",
        EnsembleSpec(n_runs=32, n_particles=2000, timesteps=(0, 124, 249, 374, 498, 624)),
    )
    total = ensemble.total_data_bytes()
    print(f"32 runs x 6 snapshots, {total:,} bytes on disk")

    assistant = InferA(ensemble, OUT / "workspace", InferAConfig(error_model=NO_ERRORS))
    question = (
        "Can you plot the change in mass of the largest friends-of-friends "
        "halos for all timesteps in all simulations? Provide me two plots "
        "using both fof_halo_count and fof_halo_mass as metrics for mass."
    )
    print(f"\n== asking ==\n{question}\n")
    report = assistant.run_query(question)

    print(f"completed: {report.completed} "
          f"({sum(1 for s in report.run.steps if s.status == 'ok')}/{report.run.plan_size} steps)")
    print(f"analysis steps executed: {report.analysis_steps}")
    print(f"tokens: {report.tokens:,}")
    print(f"db + provenance storage: {report.storage_bytes:,} bytes "
          f"= {report.storage_bytes / total:.2%} of the ensemble")
    load = report.run.load_report
    print(f"bytes actually read from the ensemble: {load.bytes_selected:,} "
          f"({load.selectivity:.3%})")

    for i, svg in enumerate(report.figures):
        path = OUT / f"fig4_plot_{i}.svg"
        path.write_text(svg)
        print(f"wrote {path}")

    track = report.tables["track_fof_halo_mass"]
    print(f"\ntracked largest-halo mass rows: {track.num_rows} "
          f"({len(set(track['run'].tolist()))} runs x {len(set(track['step'].tolist()))} steps)")


if __name__ == "__main__":
    main()
