"""The Fig. 5 example: a target halo and all halos within 20 Mpc, in 3D.

The visualization agent routes spatial tasks through the custom
ParaView-style tool; the target halo is highlighted in the reserved red.
We also export a .vtp file loadable in real ParaView.

Run:  python examples/paraview_halo_neighborhood.py
"""

from pathlib import Path

import numpy as np

from repro.agents.tools import paraview_scene
from repro.core import InferA, InferAConfig
from repro.llm.errors import NO_ERRORS
from repro.sim import EnsembleSpec, generate_ensemble

OUT = Path(__file__).resolve().parent / "paraview_out"


def main() -> None:
    ensemble = generate_ensemble(
        OUT / "ensemble",
        EnsembleSpec(n_runs=1, n_particles=4000, timesteps=(498, 624)),
    )
    assistant = InferA(ensemble, OUT / "workspace", InferAConfig(error_model=NO_ERRORS))

    question = (
        "Can you plot a dark matter halo and all halos within 20 Mpc of it "
        "at timestep 624 in simulation 0 using Paraview?"
    )
    print(f"== asking ==\n{question}\n")
    report = assistant.run_query(question)
    print(f"completed: {report.completed}")

    hood = report.tables["neighborhood"]
    n_target = int(hood["is_target"].sum())
    print(f"neighborhood: {hood.num_rows} halos within 20 Mpc "
          f"(max distance {float(hood['distance'].max()):.1f} Mpc), "
          f"{n_target} target highlighted")

    svg_path = OUT / "fig5_neighborhood.svg"
    svg_path.write_text(report.figures[0])
    print(f"wrote {svg_path}")

    # direct tool use: the same scene exported for real ParaView
    scene = paraview_scene(hood, title="halos within 20 Mpc of the target")
    vtp_path = OUT / "fig5_neighborhood.vtp"
    scene.save_vtp(vtp_path)
    print(f"wrote {vtp_path} (open in ParaView)")


if __name__ == "__main__":
    main()
