"""Approximate tokenizer and token accounting.

The real system bills tokens against OpenAI's BPE vocabulary.  Offline we
approximate with a deterministic word-piece scheme that matches GPT-style
tokenizers to within ~10% on English/code text: words are split on
whitespace and punctuation boundaries, long words are divided into 4-char
pieces, and runs of digits count one token per 3 digits.  What matters for
the reproduction is that token counts are monotone in text length and
stable across runs, so the Table 2 token-usage orderings are meaningful.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_WORD_RE = re.compile(r"[A-Za-z_]+|\d+|[^\sA-Za-z\d]")

# Average characters per BPE token for alphabetic words; GPT-4-family
# tokenizers average ~4 chars/token on English prose.
_CHARS_PER_PIECE = 4
_DIGITS_PER_PIECE = 3


def tokenize(text: str) -> list[str]:
    """Split ``text`` into approximate BPE-like token pieces.

    Deterministic and allocation-light; used both for counting and for the
    RAG chunker's 80-token document limit.
    """
    pieces: list[str] = []
    for match in _WORD_RE.finditer(text):
        tok = match.group(0)
        if tok.isdigit():
            step = _DIGITS_PER_PIECE
        elif tok[0].isalpha() or tok[0] == "_":
            step = _CHARS_PER_PIECE
        else:
            pieces.append(tok)
            continue
        for start in range(0, len(tok), step):
            pieces.append(tok[start : start + step])
    return pieces


def count_tokens(text: str) -> int:
    """Return the approximate token count of ``text``."""
    return len(tokenize(text))


@dataclass
class TokenMeter:
    """Accumulates prompt/completion token usage across LLM invocations.

    Mirrors the usage object returned by hosted chat APIs; the evaluation
    harness reads ``total`` for the Table 2 "Token Usage" column.
    """

    prompt_tokens: int = 0
    completion_tokens: int = 0
    invocations: int = 0
    per_role: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def record(self, prompt: str, completion: str, role: str = "unknown") -> None:
        """Charge one invocation with the given prompt and completion text."""
        p = count_tokens(prompt)
        c = count_tokens(completion)
        self.prompt_tokens += p
        self.completion_tokens += c
        self.invocations += 1
        self.per_role[role] = self.per_role.get(role, 0) + p + c

    def merge(self, other: "TokenMeter") -> None:
        """Fold another meter's counts into this one."""
        self.prompt_tokens += other.prompt_tokens
        self.completion_tokens += other.completion_tokens
        self.invocations += other.invocations
        for role, n in other.per_role.items():
            self.per_role[role] = self.per_role.get(role, 0) + n

    def snapshot(self) -> dict[str, int]:
        """Return a plain-dict view suitable for provenance records."""
        return {
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "total_tokens": self.total,
            "invocations": self.invocations,
        }
