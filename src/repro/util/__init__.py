"""Shared low-level utilities: tokenization, RNG streams, timing, logging."""

from repro.util.tokens import count_tokens, tokenize, TokenMeter
from repro.util.rngs import SeedSequenceFactory, derive_seed
from repro.util.timing import Timer, WallClock, SimulatedClock
from repro.util.text import normalize_ws, snake_words, levenshtein

__all__ = [
    "count_tokens",
    "tokenize",
    "TokenMeter",
    "SeedSequenceFactory",
    "derive_seed",
    "Timer",
    "WallClock",
    "SimulatedClock",
    "normalize_ws",
    "snake_words",
    "levenshtein",
]
