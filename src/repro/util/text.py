"""Small text helpers shared by the RAG layer and the mock LLM."""

from __future__ import annotations

import re

_WS_RE = re.compile(r"\s+")


def normalize_ws(text: str) -> str:
    """Collapse runs of whitespace to single spaces and strip the ends."""
    return _WS_RE.sub(" ", text).strip()


def snake_words(identifier: str) -> list[str]:
    """Split a snake_case or camelCase identifier into lowercase words.

    HACC column labels like ``sod_halo_MGas500c`` become
    ``['sod', 'halo', 'm', 'gas500c']`` — the unit the embedder and the
    error-injection typo model operate on.
    """
    parts: list[str] = []
    for chunk in identifier.split("_"):
        if not chunk:
            continue
        for sub in re.findall(r"[A-Z]+(?![a-z])|[A-Z]?[a-z0-9]+|[0-9]+", chunk):
            parts.append(sub.lower())
    return parts


def levenshtein(a: str, b: str) -> int:
    """Edit distance; used to score near-miss column names in QA repair."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        cur = [i]
        for j, cb in enumerate(b, start=1):
            cur.append(min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + (ca != cb)))
        prev = cur
    return prev[-1]


def best_match(needle: str, haystack: list[str]) -> tuple[str | None, int]:
    """Return the closest string in ``haystack`` and its edit distance."""
    best: str | None = None
    best_d = 1 << 30
    for cand in haystack:
        d = levenshtein(needle, cand)
        if d < best_d:
            best, best_d = cand, d
    return best, best_d
