"""Mergeable integer-counter dataclasses.

Both shared caches (the retrieval-artifact cache in :mod:`repro.rag.cache`
and the query-result cache in :mod:`repro.db.cache`) count their tiered
hits/misses in process-local dataclasses that the evaluation harness
snapshots around each grid cell and merges across worker processes.  The
arithmetic is identical for any all-integer-field dataclass, so it lives
here once: subclass :class:`MergeableCounters` with plain ``int`` fields
and ``merge``/``delta``/``copy``/``as_dict`` come for free.
"""

from __future__ import annotations

from dataclasses import fields


class MergeableCounters:
    """Field-wise arithmetic over an all-int-field dataclass."""

    def merge(self, other):
        """Fold ``other`` into ``self`` (field-wise addition)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def delta(self, earlier):
        """What happened between two snapshots of the same counters."""
        return type(self)(
            **{f.name: getattr(self, f.name) - getattr(earlier, f.name) for f in fields(self)}
        )

    def copy(self):
        return type(self)(**{f.name: getattr(self, f.name) for f in fields(self)})

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
