"""Deterministic RNG stream derivation.

Every stochastic component (simulator, error injection, MMR tie-breaking)
draws from an independently derived stream so results are reproducible and
uncorrelated between subsystems — changing how often one component draws
must not perturb another.  This is the standard counter-based substream
pattern for ensemble simulation codes.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(*parts: object) -> int:
    """Hash arbitrary labels into a stable 63-bit seed.

    Uses BLAKE2b so that e.g. ``derive_seed("run", 3, "fof")`` is stable
    across Python processes (unlike ``hash``).
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little") & (2**63 - 1)


class SeedSequenceFactory:
    """Factory handing out named, independent ``numpy.random.Generator`` streams.

    >>> f = SeedSequenceFactory(42)
    >>> g1 = f.stream("sim", 0)
    >>> g2 = f.stream("sim", 1)   # independent of g1
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def seed_for(self, *labels: object) -> int:
        """Return the derived integer seed for a labelled stream."""
        return derive_seed(self.root_seed, *labels)

    def stream(self, *labels: object) -> np.random.Generator:
        """Return a fresh Generator for the labelled stream."""
        return np.random.default_rng(self.seed_for(*labels))
