"""Wall-clock and simulated clocks plus a scoped timer.

The evaluation harness reports per-query runtime (Table 2 "Time" column).
Real runs use :class:`WallClock`; tests use :class:`SimulatedClock` so that
timing-sensitive assertions are deterministic.  Components take a clock
dependency rather than calling ``time.perf_counter`` directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class WallClock:
    """Monotonic wall clock."""

    def now(self) -> float:
        return time.perf_counter()

    def advance(self, seconds: float) -> None:  # pragma: no cover - no-op
        """No-op for interface parity with SimulatedClock."""


class SimulatedClock:
    """Manually advanced clock for deterministic tests and cost models.

    The mock LLM also charges simulated latency here so that reported
    runtimes carry the paper's structure (LLM latency << execution time)
    without depending on host speed.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds


@dataclass
class Timer:
    """Accumulating named-section timer.

    >>> t = Timer()
    >>> with t.section("load"):
    ...     pass
    >>> "load" in t.totals
    True
    """

    clock: WallClock | SimulatedClock = field(default_factory=WallClock)
    totals: dict[str, float] = field(default_factory=dict)

    def section(self, name: str) -> "_Section":
        return _Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.totals.values())


class _Section:
    def __init__(self, timer: Timer, name: str):
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = self._timer.clock.now()
        return self

    def __exit__(self, *exc: object) -> None:
        self._timer.add(self._name, self._timer.clock.now() - self._start)
