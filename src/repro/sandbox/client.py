"""Clients for the sandbox gateway.

:class:`SandboxClient` speaks HTTP to a running :class:`SandboxServer`;
:class:`InProcessClient` calls the executor directly with the same
interface, which is what the evaluation harness uses (one process, no
socket overhead, identical semantics since the executor already copies
all inputs).
"""

from __future__ import annotations

import json
import urllib.request
from typing import Any

from repro.frame import Frame
from repro.sandbox.executor import ExecutionResult, SandboxExecutor
from repro.sandbox.serialize import frame_from_json, frame_to_json


class InProcessClient:
    """Direct executor invocation behind the client interface."""

    def __init__(self, executor: SandboxExecutor | None = None):
        self.executor = executor or SandboxExecutor()

    def execute(self, code: str, tables: dict[str, Frame]) -> ExecutionResult:
        return self.executor.execute(code, tables)


class SandboxClient:
    """HTTP client for a SandboxServer."""

    def __init__(self, url: str, timeout_s: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    def health(self) -> bool:
        try:
            with urllib.request.urlopen(f"{self.url}/health", timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode())["status"] == "ok"
        except Exception:
            return False

    def execute(self, code: str, tables: dict[str, Frame]) -> ExecutionResult:
        payload = {
            "code": code,
            "tables": {name: frame_to_json(f) for name, f in tables.items()},
        }
        req = urllib.request.Request(
            f"{self.url}/execute",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
            doc: dict[str, Any] = json.loads(resp.read().decode("utf-8"))
        result = ExecutionResult(
            ok=bool(doc.get("ok")),
            error_type=doc.get("error_type", ""),
            error_message=doc.get("error_message", ""),
        )
        if "result" in doc:
            result.result = frame_from_json(doc["result"])
        result.tables = {
            name: frame_from_json(t) for name, t in doc.get("tables", {}).items()
        }
        if doc.get("figure_svg"):
            result.meta["figure_svg"] = doc["figure_svg"]
        return result
