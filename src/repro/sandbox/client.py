"""Clients for the sandbox gateway.

:class:`SandboxClient` speaks HTTP to a running :class:`SandboxServer`;
:class:`InProcessClient` calls the executor directly with the same
interface, which is what the evaluation harness uses (one process, no
socket overhead, identical semantics since the executor already copies
all inputs).

The HTTP client carries the resilience ladder (:mod:`repro.resilience`):

1. transient transport failures — connection reset, timeout, 5xx,
   garbage JSON — are retried with deterministic jittered backoff under
   an overall :class:`Deadline`;
2. consecutive failures trip a :class:`CircuitBreaker`; while it is open
   the client *degrades* onto its in-process fallback executor instead of
   hammering a dead gateway (the span records ``degraded="in-process"``);
3. after ``reset_timeout_s`` the breaker half-opens and the cheap
   :meth:`health` probe — which distinguishes connection-refused from
   timeout — decides whether real traffic resumes.

Without a fallback the ladder ends in a *classified*
:class:`SandboxUnavailable`, never a raw transport traceback.  Faults
injected by the ambient :class:`repro.faults.FaultInjector` enter at the
transport layer, so the whole ladder is exercised by the chaos suite.

Transport is **persistent**: executions reuse pooled keep-alive
``http.client.HTTPConnection`` sockets (``sandbox.conn.dials`` /
``sandbox.conn.reuses`` counters), cutting per-exec TCP setup.  A stale
pooled socket — the server restarted, or reaped the idle connection —
surfaces as a :class:`TransientSandboxError`, so the normal retry dials
fresh; staleness is indistinguishable from (and handled exactly like) a
transient network failure.
"""

from __future__ import annotations

import http.client
import io
import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass
from typing import Any

from repro import faults
from repro.frame import Frame
from repro.obs.logsetup import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.resilience import (
    HALF_OPEN,
    CircuitBreaker,
    Deadline,
    ResilienceError,
    RetriesExhausted,
    RetryPolicy,
    call_with_retries,
    classify,
)
from repro.sandbox.executor import ExecutionResult, SandboxExecutor
from repro.sandbox.serialize import frame_from_json, frame_to_json
from repro.util.rngs import derive_seed
from repro.util.timing import SimulatedClock, WallClock

import numpy as np

log = get_logger("sandbox")


class InProcessClient:
    """Direct executor invocation behind the client interface."""

    def __init__(self, executor: SandboxExecutor | None = None):
        self.executor = executor or SandboxExecutor()

    def execute(self, code: str, tables: dict[str, Frame]) -> ExecutionResult:
        return self.executor.execute(code, tables)


class SandboxUnavailable(ResilienceError):
    """The gateway is down and no fallback executor was configured."""

    classification = "sandbox-unavailable"


class TransientSandboxError(ConnectionError):
    """A retryable transport-level failure (reset/timeout/5xx/garbage)."""


@dataclass(frozen=True)
class HealthStatus:
    """Classified gateway liveness: truthy iff healthy, ``detail`` says
    *how* it is unhealthy (``refused`` vs ``timeout`` vs ``http-<code>``
    vs ``bad-response``), which is what the breaker's half-open probe and
    the status log line need."""

    ok: bool
    detail: str

    def __bool__(self) -> bool:
        return self.ok


class SandboxClient:
    """HTTP client for a SandboxServer, with retries/breaker/fallback."""

    def __init__(
        self,
        url: str,
        timeout_s: float = 30.0,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        fallback: InProcessClient | None = None,
        clock: WallClock | SimulatedClock | None = None,
        total_timeout_s: float | None = None,
        seed: int = 0,
    ):
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s
        self.clock = clock or WallClock()
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay_s=0.02, max_delay_s=0.5
        )
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=3, reset_timeout_s=2.0, clock=self.clock, name="sandbox"
        )
        self.fallback = fallback
        # overall per-execute budget shared across retries and backoff
        self.total_timeout_s = (
            total_timeout_s
            if total_timeout_s is not None
            else timeout_s * self.retry_policy.max_attempts
        )
        self._retry_rng = np.random.default_rng(derive_seed(seed, "sandbox.retry", url))
        # persistent-connection pool: keep-alive sockets to the gateway,
        # reused across executions (the server speaks HTTP/1.1).  Guarded
        # by a lock because the serving layer shares one client across
        # worker threads.  A stale pooled socket (server restarted or
        # reaped the idle connection) surfaces as a transport error that
        # is classified retryable — the retry dials a fresh connection.
        parts = urllib.parse.urlsplit(self.url)
        self._conn_host = parts.hostname or "127.0.0.1"
        self._conn_port = parts.port or 80
        self._conn_path = parts.path.rstrip("/")
        self._conn_lock = threading.Lock()
        self._idle_conns: list[http.client.HTTPConnection] = []
        self._pool_max = 8

    # -- persistent connections ----------------------------------------
    def _acquire_conn(self, timeout_s: float) -> http.client.HTTPConnection:
        with self._conn_lock:
            conn = self._idle_conns.pop() if self._idle_conns else None
        if conn is not None:
            get_registry().counter("sandbox.conn.reuses").inc()
            if conn.sock is not None:
                conn.sock.settimeout(timeout_s)
            conn.timeout = timeout_s
            return conn
        get_registry().counter("sandbox.conn.dials").inc()
        return http.client.HTTPConnection(
            self._conn_host, self._conn_port, timeout=timeout_s
        )

    def _release_conn(self, conn: http.client.HTTPConnection, reusable: bool) -> None:
        if reusable:
            with self._conn_lock:
                if len(self._idle_conns) < self._pool_max:
                    self._idle_conns.append(conn)
                    return
        conn.close()

    def close(self) -> None:
        """Drop every pooled connection (idempotent)."""
        with self._conn_lock:
            conns, self._idle_conns = self._idle_conns, []
        for conn in conns:
            conn.close()

    # ------------------------------------------------------------------
    def health(self, timeout_s: float | None = None) -> HealthStatus:
        """Probe ``GET /health``, classifying *why* it failed if it did."""
        try:
            with urllib.request.urlopen(
                f"{self.url}/health", timeout=timeout_s or self.timeout_s
            ) as resp:
                doc = json.loads(resp.read().decode())
            ok = doc.get("status") == "ok"
            status = HealthStatus(ok, "ok" if ok else "bad-response")
        except urllib.error.HTTPError as exc:
            status = HealthStatus(False, f"http-{exc.code}")
        except urllib.error.URLError as exc:
            reason = exc.reason
            if isinstance(reason, ConnectionRefusedError):
                status = HealthStatus(False, "refused")
            elif isinstance(reason, TimeoutError):
                status = HealthStatus(False, "timeout")
            else:
                status = HealthStatus(
                    False, type(reason).__name__ if reason is not None else "unreachable"
                )
        except TimeoutError:
            status = HealthStatus(False, "timeout")
        except (ValueError, KeyError):
            status = HealthStatus(False, "bad-response")
        if not status.ok:
            log.debug("sandbox %s unhealthy: %s", self.url, status.detail)
        return status

    # ------------------------------------------------------------------
    def execute(self, code: str, tables: dict[str, Frame]) -> ExecutionResult:
        tracer = get_tracer()
        with tracer.span(
            "sandbox.request", code_lines=code.count("\n") + 1, n_tables=len(tables)
        ) as sp:
            if not self.breaker.allow():
                return self._degrade(sp, code, tables, reason="circuit-open")
            if self.breaker.state == HALF_OPEN:
                # reuse the classified health probe before risking traffic
                probe = self.health(timeout_s=min(self.timeout_s, 2.0))
                sp.set(probe=probe.detail)
                if not probe.ok:
                    self.breaker.record_failure()
                    return self._degrade(sp, code, tables, reason=f"probe-{probe.detail}")
            deadline = Deadline(self.total_timeout_s, clock=self.clock)
            attempts = 0

            def post() -> dict[str, Any]:
                nonlocal attempts
                attempts += 1
                return self._post_execute(code, tables, deadline)

            try:
                doc = call_with_retries(
                    post,
                    policy=self.retry_policy,
                    retryable=(TransientSandboxError,),
                    rng=self._retry_rng,
                    clock=self.clock,
                    deadline=deadline,
                    on_retry=lambda n, delay, exc: self.breaker.record_failure(),
                    op="sandbox.execute",
                )
            except (RetriesExhausted, ResilienceError) as exc:
                self.breaker.record_failure()
                sp.set(attempts=attempts, retries=max(attempts - 1, 0))
                return self._degrade(
                    sp, code, tables, reason=classify(exc), error=exc
                )
            self.breaker.record_success()
            sp.set(attempts=attempts, retries=max(attempts - 1, 0))
            return _decode_result(doc)

    # ------------------------------------------------------------------
    def _degrade(
        self,
        sp: Any,
        code: str,
        tables: dict[str, Frame],
        reason: str,
        error: BaseException | None = None,
    ) -> ExecutionResult:
        if self.fallback is None:
            sp.set(degraded_reason=reason)
            raise SandboxUnavailable(
                f"sandbox gateway {self.url} unavailable ({reason}) and no "
                f"fallback executor is configured"
            ) from error
        get_registry().counter("resilience.fallbacks").inc()
        get_registry().counter("resilience.fallbacks.sandbox").inc()
        sp.set(degraded="in-process", degraded_reason=reason)
        log.warning("sandbox %s degraded to in-process executor (%s)", self.url, reason)
        return self.fallback.execute(code, tables)

    # ------------------------------------------------------------------
    def _post_execute(
        self, code: str, tables: dict[str, Frame], deadline: Deadline
    ) -> dict[str, Any]:
        """One transport attempt; raises :class:`TransientSandboxError`
        for anything a retry could fix."""
        injector = faults.get_injector()
        if injector.fire(faults.SANDBOX_DROP):
            raise TransientSandboxError("injected: connection reset by peer")
        if injector.fire(faults.SANDBOX_HANG):
            raise TransientSandboxError("injected: request deadline exceeded")
        payload = {
            "code": code,
            "tables": {name: frame_to_json(f) for name, f in tables.items()},
        }
        data = json.dumps(payload).encode("utf-8")
        conn = self._acquire_conn(deadline.clamp(self.timeout_s))
        reusable = False
        try:
            conn.request(
                "POST",
                f"{self._conn_path}/execute",
                body=data,
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            body = resp.read()  # drain fully so the socket can be reused
            status = resp.status
            reusable = not resp.will_close
        except TimeoutError as exc:
            raise TransientSandboxError("transport: timeout") from exc
        except (http.client.HTTPException, ConnectionError, OSError) as exc:
            # includes RemoteDisconnected from a stale keep-alive socket:
            # the retry path dials a fresh connection
            raise TransientSandboxError(
                f"transport: {type(exc).__name__}: {exc}"
            ) from exc
        finally:
            self._release_conn(conn, reusable)
        if status >= 500:
            raise TransientSandboxError(f"http-{status}")
        if status >= 400:
            # caller bug with a structured body; not transient — surface
            # the same HTTPError urllib used to raise so callers keep
            # classifying on .code / reading the body
            raise urllib.error.HTTPError(
                f"{self.url}/execute",
                status,
                resp.reason,
                resp.headers,
                io.BytesIO(body),
            )
        if injector.fire(faults.SANDBOX_5XX):
            raise TransientSandboxError("injected: http-503")
        text = body.decode("utf-8")
        if injector.fire(faults.SANDBOX_GARBAGE):
            text = "{garbage//" + text[:24]
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise TransientSandboxError("garbage-json response") from exc


def _decode_result(doc: dict[str, Any]) -> ExecutionResult:
    result = ExecutionResult(
        ok=bool(doc.get("ok")),
        error_type=doc.get("error_type", ""),
        error_message=doc.get("error_message", ""),
    )
    if "result" in doc:
        result.result = frame_from_json(doc["result"])
    result.tables = {
        name: frame_from_json(t) for name, t in doc.get("tables", {}).items()
    }
    if doc.get("figure_svg"):
        result.meta["figure_svg"] = doc["figure_svg"]
    return result
