"""Warm sandbox fleet: pooled code-execution workers behind one client.

After the serving layer landed, the single HTTP sandbox gateway was the
last serial resource in an otherwise parallel stack — every concurrent
session funnels its generated-code executions through one process.  The
fleet multiplies that resource: N warm :class:`SandboxServer` workers
(threads in-process, or separate ``python -m repro.sandbox.server``
processes), each fronted by its own :class:`SandboxClient` with its own
:class:`CircuitBreaker`, behind one fleet façade that speaks the same
``execute(code, tables)`` interface as a plain client.

**Routing** is least-loaded: the member with the fewest in-flight
requests wins, ties broken by the lower service-time EWMA, then the
lower index.  Routing picks *where* a request runs, never *what* it
computes — executions are pure functions of ``(code, tables)`` over
copied inputs — so concurrent fleet answers stay byte-identical to
sequential single-worker runs by construction.

**Degradation** is tier-by-tier:

1. *fleet* — the full pool is healthy and requests spread least-loaded;
2. *degraded* — a member whose classified execute fails (its breaker
   trips via the normal client ladder) is skipped, the request re-routes
   to surviving members; an open breaker half-opens after its reset
   timeout and the member's next routed request runs the classified
   ``health()`` probe before real traffic resumes; a member that stays
   unavailable for ``respawn_after`` consecutive routed attempts is
   reaped and respawned when the fleet owns a spawner;
3. *fallback* — with every member unavailable the request runs on the
   in-process fallback executor (identical semantics), or raises a
   classified :class:`SandboxUnavailable` when none is configured.

Every route/trip/respawn/fallback lands in ``repro.obs`` counters
(``sandbox.fleet.*``) and additive span attributes (``fleet_*``,
excluded from the canonical trace tree), surfacing in ``repro trace
summary``, ``repro sandbox stats``, and the serve ``/stats`` endpoint.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.frame import Frame
from repro.obs.logsetup import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.resilience import CircuitBreaker
from repro.sandbox.client import InProcessClient, SandboxClient, SandboxUnavailable
from repro.sandbox.executor import ExecutionResult, SandboxExecutor
from repro.sandbox.server import LatencyExecutor, SandboxServer
from repro.util.timing import SimulatedClock, WallClock

log = get_logger("sandbox.fleet")

FLEET_WORKERS_ENV = "REPRO_SANDBOX_WORKERS"

# per-worker breaker defaults: one failed execute walks the client's own
# retry ladder first, so the threshold counts *exhausted* ladders
DEFAULT_FAILURE_THRESHOLD = 3
DEFAULT_RESET_TIMEOUT_S = 2.0
DEFAULT_RESPAWN_AFTER = 2


def resolve_sandbox_workers(explicit: int | None = None) -> int | None:
    """Fleet size: explicit knob > ``REPRO_SANDBOX_WORKERS`` > disabled.

    ``None`` (or an unset/invalid env var) disables the fleet entirely;
    ``0`` means one worker per core; a positive value is taken as-is
    (workers are latency-bound, not CPU-bound, so no core clamp).
    Negative values disable, like ``None``.
    """
    if explicit is None:
        env = os.environ.get(FLEET_WORKERS_ENV, "").strip()
        if not env:
            return None
        try:
            explicit = int(env)
        except ValueError:
            return None
    if explicit < 0:
        return None
    if explicit == 0:
        return max(1, os.cpu_count() or 1)
    return int(explicit)


class ServiceEWMA:
    """Exponentially weighted service time; 0.0 until the first sample
    so untried members sort ahead of proven-slow ones."""

    def __init__(self, alpha: float = 0.2):
        self.alpha = float(alpha)
        self.value = 0.0
        self.samples = 0

    def observe(self, seconds: float) -> None:
        self.samples += 1
        if self.samples == 1:
            self.value = float(seconds)
        else:
            self.value = self.alpha * float(seconds) + (1.0 - self.alpha) * self.value

    def reset(self) -> None:
        self.value = 0.0
        self.samples = 0


# ----------------------------------------------------------------------
# spawners: how the fleet materializes a worker
# ----------------------------------------------------------------------
@dataclass
class WorkerHandle:
    """One spawned worker the fleet can address and kill."""

    url: str
    _kill: Callable[[], None]

    def kill(self) -> None:
        try:
            self._kill()
        except Exception:  # reaping must never take the fleet down
            log.debug("worker %s kill raised", self.url, exc_info=True)


class ThreadSpawner:
    """In-process workers: one :class:`SandboxServer` (daemon threads)
    per member.  Cheap to spawn — the spawner of the chaos suite and the
    fleet benchmark — while still crossing a real HTTP socket boundary.
    """

    mode = "thread"

    def __init__(
        self,
        executor_factory: Callable[[], Any] | None = None,
        exec_latency_s: float = 0.0,
        max_concurrent: int = 1,
        read_timeout_s: float = 30.0,
    ):
        self._executor_factory = executor_factory
        self.exec_latency_s = float(exec_latency_s)
        self.max_concurrent = int(max_concurrent)
        self.read_timeout_s = float(read_timeout_s)

    def _build_executor(self) -> Any:
        if self._executor_factory is not None:
            executor = self._executor_factory()
        else:
            # deferred: agents.tools pulls in the full agent stack
            from repro.agents.tools import default_toolset

            executor = SandboxExecutor(tools=default_toolset())
        if self.exec_latency_s > 0:
            executor = LatencyExecutor(executor, latency_s=self.exec_latency_s)
        return executor

    def spawn(self, index: int) -> WorkerHandle:
        server = SandboxServer(
            executor=self._build_executor(),
            read_timeout_s=self.read_timeout_s,
            max_concurrent=self.max_concurrent,
        )
        server.start()
        return WorkerHandle(url=server.url, _kill=server.stop)


class ProcessSpawner:
    """Separate-process workers via ``python -m repro.sandbox.server``.

    The child prints ``SANDBOX_URL=<url>`` when its ephemeral port is
    bound; kill is terminate-then-wait.  This is the production shape —
    a crashed worker cannot take the host down — at the cost of a
    per-spawn interpreter boot.
    """

    mode = "process"

    def __init__(
        self,
        exec_latency_s: float = 0.0,
        max_concurrent: int = 1,
        spawn_timeout_s: float = 60.0,
    ):
        self.exec_latency_s = float(exec_latency_s)
        self.max_concurrent = int(max_concurrent)
        self.spawn_timeout_s = float(spawn_timeout_s)

    def spawn(self, index: int) -> WorkerHandle:
        import repro

        cmd = [sys.executable, "-m", "repro.sandbox.server", "--port", "0"]
        if self.exec_latency_s > 0:
            cmd += ["--exec-latency", str(self.exec_latency_s)]
        if self.max_concurrent != 1:
            cmd += ["--max-concurrent", str(self.max_concurrent)]
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = (
            src_root + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src_root
        )
        proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        line = proc.stdout.readline() if proc.stdout else ""
        if not line.startswith("SANDBOX_URL="):
            rc = proc.poll()
            proc.kill()
            raise RuntimeError(
                f"sandbox worker {index} failed to start (rc={rc}, got {line!r})"
            )
        url = line.split("=", 1)[1].strip()

        def kill() -> None:
            proc.terminate()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)

        return WorkerHandle(url=url, _kill=kill)


# ----------------------------------------------------------------------
# the fleet
# ----------------------------------------------------------------------
@dataclass
class FleetMember:
    """One worker slot: client + breaker + load/health accounting."""

    index: int
    client: Any
    handle: WorkerHandle | None = None
    in_flight: int = 0
    ewma: ServiceEWMA = field(default_factory=ServiceEWMA)
    routes: int = 0
    trips: int = 0
    respawns: int = 0
    consecutive_unavailable: int = 0

    @property
    def url(self) -> str:
        return getattr(self.client, "url", "<in-process>")

    def as_dict(self) -> dict[str, Any]:
        breaker = getattr(self.client, "breaker", None)
        return {
            "index": self.index,
            "url": self.url,
            "in_flight": self.in_flight,
            "ewma_s": round(self.ewma.value, 6),
            "breaker": breaker.state if breaker is not None else "none",
            "routes": self.routes,
            "trips": self.trips,
            "respawns": self.respawns,
            "consecutive_unavailable": self.consecutive_unavailable,
        }


class SandboxFleet:
    """N warm sandbox workers behind the single-client interface."""

    def __init__(
        self,
        clients: list[Any] | None = None,
        spawner: Any | None = None,
        workers: int | None = None,
        client_factory: Callable[[int, str], Any] | None = None,
        fallback: InProcessClient | None = None,
        clock: WallClock | SimulatedClock | None = None,
        seed: int = 0,
        timeout_s: float = 30.0,
        respawn_after: int = DEFAULT_RESPAWN_AFTER,
        stats_path: str | Path | None = None,
        checkpoint_every: int = 32,
    ):
        self.clock = clock or WallClock()
        self.seed = int(seed)
        self.timeout_s = float(timeout_s)
        self.spawner = spawner
        self.respawn_after = max(1, int(respawn_after))
        self.fallback = fallback
        self.stats_path = Path(stats_path) if stats_path else None
        self.checkpoint_every = max(1, int(checkpoint_every))
        self._client_factory = client_factory or self._make_client
        self._lock = threading.Lock()
        self._closed = False
        # lifetime accounting (member counters roll up independently)
        self.routes_total = 0
        self.trips_total = 0
        self.respawns_total = 0
        self.fallbacks_total = 0

        self.members: list[FleetMember] = []
        if clients is not None:
            for i, client in enumerate(clients):
                self.members.append(FleetMember(index=i, client=client))
        elif spawner is not None:
            for i in range(max(1, int(workers or 1))):
                handle = spawner.spawn(i)
                self.members.append(
                    FleetMember(
                        index=i,
                        client=self._client_factory(i, handle.url),
                        handle=handle,
                    )
                )
        else:
            raise ValueError("SandboxFleet needs either clients or a spawner")

    # -- construction ---------------------------------------------------
    @classmethod
    def spawn_local(
        cls,
        workers: int,
        mode: str = "thread",
        fallback: InProcessClient | None = None,
        executor_factory: Callable[[], Any] | None = None,
        exec_latency_s: float = 0.0,
        max_concurrent: int = 1,
        stats_path: str | Path | None = None,
        clock: WallClock | SimulatedClock | None = None,
        seed: int = 0,
        timeout_s: float = 30.0,
        respawn_after: int = DEFAULT_RESPAWN_AFTER,
    ) -> "SandboxFleet":
        """Spawn ``workers`` members locally (``thread`` or ``process``)."""
        if mode == "process":
            spawner: Any = ProcessSpawner(
                exec_latency_s=exec_latency_s, max_concurrent=max_concurrent
            )
        elif mode == "thread":
            spawner = ThreadSpawner(
                executor_factory=executor_factory,
                exec_latency_s=exec_latency_s,
                max_concurrent=max_concurrent,
            )
        else:
            raise ValueError(f"unknown fleet spawn mode {mode!r}")
        return cls(
            spawner=spawner,
            workers=workers,
            fallback=fallback,
            clock=clock,
            seed=seed,
            timeout_s=timeout_s,
            respawn_after=respawn_after,
            stats_path=stats_path,
        )

    @property
    def mode(self) -> str:
        return getattr(self.spawner, "mode", "external")

    def _make_client(self, index: int, url: str) -> SandboxClient:
        # no per-member fallback: degradation is the *fleet's* decision,
        # so a dead member surfaces as classified SandboxUnavailable here
        return SandboxClient(
            url,
            timeout_s=self.timeout_s,
            clock=self.clock,
            seed=self.seed,
            breaker=CircuitBreaker(
                failure_threshold=DEFAULT_FAILURE_THRESHOLD,
                reset_timeout_s=DEFAULT_RESET_TIMEOUT_S,
                clock=self.clock,
                name=f"sandbox-w{index}",
            ),
        )

    # -- boot probe ------------------------------------------------------
    def warm(self) -> dict[str, Any]:
        """Health-probe every member (the serve warm-up report line)."""
        probes = []
        for member in self.members:
            health = getattr(member.client, "health", None)
            if health is None:
                probes.append({"index": member.index, "url": member.url,
                               "ok": True, "detail": "no-probe"})
                continue
            status = health(timeout_s=min(self.timeout_s, 5.0))
            probes.append(
                {
                    "index": member.index,
                    "url": member.url,
                    "ok": bool(status),
                    "detail": status.detail,
                }
            )
        healthy = sum(1 for p in probes if p["ok"])
        self._checkpoint()
        return {
            "workers": len(self.members),
            "healthy": healthy,
            "mode": self.mode,
            "probes": probes,
        }

    # -- routing ---------------------------------------------------------
    def _route(self, exclude: set[int]) -> FleetMember | None:
        """Pick the least-loaded allowed member and charge it (atomic).

        Least in-flight wins; ties break on lower service-time EWMA,
        then lower index — fully deterministic for a given load state.
        An OPEN breaker past its reset timeout transitions to HALF_OPEN
        inside ``allow()``, so the pick *is* the half-open probe grant.
        """
        with self._lock:
            best: FleetMember | None = None
            best_key: tuple[float, float, int] | None = None
            for member in self.members:
                if member.index in exclude:
                    continue
                breaker = getattr(member.client, "breaker", None)
                if breaker is not None and not breaker.allow():
                    continue
                key = (float(member.in_flight), member.ewma.value, member.index)
                if best_key is None or key < best_key:
                    best, best_key = member, key
            if best is not None:
                best.in_flight += 1
            return best

    # -- the client interface -------------------------------------------
    def execute(self, code: str, tables: dict[str, Frame]) -> ExecutionResult:
        """Route one execution; skip tripped members; degrade tier-by-tier."""
        tried: set[int] = set()
        while True:
            member = self._route(tried)
            if member is None:
                break
            t0 = self.clock.now()
            try:
                result = member.client.execute(code, tables)
            except SandboxUnavailable as exc:
                self._note_unavailable(member, exc)
                tried.add(member.index)
                continue
            finally:
                with self._lock:
                    member.in_flight = max(0, member.in_flight - 1)
            self._note_success(member, self.clock.now() - t0, degraded=bool(tried))
            return result
        return self._fallback_execute(code, tables)

    # -- outcome accounting ----------------------------------------------
    def _note_success(self, member: FleetMember, elapsed_s: float, degraded: bool) -> None:
        with self._lock:
            member.ewma.observe(elapsed_s)
            member.consecutive_unavailable = 0
            member.routes += 1
            self.routes_total += 1
            routes = self.routes_total
        get_registry().counter("sandbox.fleet.routes").inc()
        span = get_tracer().current()
        if span is not None:
            attrs = span.attributes
            attrs["fleet_routes"] = int(attrs.get("fleet_routes", 0)) + 1
            attrs["fleet_worker"] = member.index
            attrs["fleet_tier"] = "degraded" if degraded else "fleet"
        if routes % self.checkpoint_every == 0:
            self._checkpoint()

    def _note_unavailable(self, member: FleetMember, exc: BaseException) -> None:
        with self._lock:
            member.trips += 1
            member.consecutive_unavailable += 1
            self.trips_total += 1
            should_respawn = (
                self.spawner is not None
                and member.consecutive_unavailable >= self.respawn_after
            )
        get_registry().counter("sandbox.fleet.trips").inc()
        span = get_tracer().current()
        if span is not None:
            attrs = span.attributes
            attrs["fleet_trips"] = int(attrs.get("fleet_trips", 0)) + 1
        log.warning("fleet worker %d (%s) unavailable: %s", member.index, member.url, exc)
        if should_respawn:
            self._respawn(member)
        self._checkpoint()

    def _respawn(self, member: FleetMember) -> None:
        """Reap a repeatedly-failing member and put a fresh worker in its
        slot (new server, new client, new breaker, reset EWMA)."""
        if member.handle is not None:
            member.handle.kill()
        close = getattr(member.client, "close", None)
        if callable(close):
            close()
        try:
            handle = self.spawner.spawn(member.index)
        except Exception as exc:  # spawn failure: slot stays dead until next trip
            log.warning("fleet worker %d respawn failed: %s", member.index, exc)
            return
        with self._lock:
            member.handle = handle
            member.client = self._client_factory(member.index, handle.url)
            member.ewma.reset()
            member.consecutive_unavailable = 0
            member.respawns += 1
            self.respawns_total += 1
        get_registry().counter("sandbox.fleet.respawns").inc()
        span = get_tracer().current()
        if span is not None:
            attrs = span.attributes
            attrs["fleet_respawns"] = int(attrs.get("fleet_respawns", 0)) + 1
        log.warning("fleet worker %d respawned at %s", member.index, handle.url)

    def _fallback_execute(self, code: str, tables: dict[str, Frame]) -> ExecutionResult:
        if self.fallback is None:
            raise SandboxUnavailable(
                f"all {len(self.members)} sandbox fleet workers unavailable "
                f"and no fallback executor is configured"
            )
        with self._lock:
            self.fallbacks_total += 1
        registry = get_registry()
        registry.counter("sandbox.fleet.fallbacks").inc()
        registry.counter("resilience.fallbacks").inc()
        registry.counter("resilience.fallbacks.sandbox").inc()
        span = get_tracer().current()
        if span is not None:
            attrs = span.attributes
            attrs["fleet_fallbacks"] = int(attrs.get("fleet_fallbacks", 0)) + 1
            attrs["fleet_tier"] = "fallback"
        log.warning(
            "sandbox fleet fully unavailable; degraded to in-process executor"
        )
        self._checkpoint()
        return self.fallback.execute(code, tables)

    # -- introspection ---------------------------------------------------
    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                # bump when the document shape changes: readers (the CLI,
                # dashboards) use it to stay tolerant of older snapshots
                "schema": 2,
                "workers": len(self.members),
                "mode": self.mode,
                "members": [m.as_dict() for m in self.members],
                "lifetime": {
                    "routes": self.routes_total,
                    "trips": self.trips_total,
                    "respawns": self.respawns_total,
                    "fallbacks": self.fallbacks_total,
                },
            }

    def _checkpoint(self) -> None:
        """Atomically snapshot ``stats()`` for ``repro sandbox stats``."""
        if self.stats_path is None:
            return
        doc = self.stats()
        try:
            self.stats_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.stats_path.with_suffix(".tmp")
            tmp.write_text(json.dumps(doc, indent=2, sort_keys=True))
            os.replace(tmp, self.stats_path)
        except OSError:  # telemetry write failures never break requests
            log.debug("fleet stats checkpoint failed", exc_info=True)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Kill every worker and drop pooled connections (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._checkpoint()
        for member in self.members:
            close = getattr(member.client, "close", None)
            if callable(close):
                close()
            if member.handle is not None:
                member.handle.kill()

    def __enter__(self) -> "SandboxFleet":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
