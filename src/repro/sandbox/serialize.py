"""JSON serialization of Frames for the HTTP gateway."""

from __future__ import annotations

import numpy as np

from repro.frame import Frame


def frame_to_json(frame: Frame) -> dict:
    cols = {}
    for name in frame.columns:
        arr = frame.column(name)
        cols[name] = {"dtype": arr.dtype.str, "values": np.asarray(arr).tolist()}
    return {"columns": cols}


def frame_from_json(doc: dict) -> Frame:
    cols = {}
    for name, spec in doc["columns"].items():
        dtype = np.dtype(spec["dtype"])
        if dtype == object:
            cols[name] = np.asarray(spec["values"], dtype=object)
        else:
            cols[name] = np.asarray(spec["values"], dtype=dtype)
    return Frame(cols)
