"""Sandboxed code execution (§3.2, §4.2.3).

The paper executes all generated code on *temporary data copies* inside an
isolated ASGI server, guaranteeing the ground-truth data is never modified
and returning either an error-free dataframe or a detailed error message.

This package provides the same contract:

* :mod:`repro.sandbox.safety` — an AST audit rejecting filesystem/network/
  process access, dunder traversal and unapproved imports before anything
  runs;
* :mod:`repro.sandbox.executor` — a restricted ``exec`` namespace over
  copied Frames, returning a structured :class:`ExecutionResult`;
* :mod:`repro.sandbox.server` / ``client`` — a stdlib HTTP JSON gateway
  mirroring the paper's Uvicorn/FastAPI deployment, with an in-process
  client for tests and the evaluation harness.
"""

from repro.sandbox.safety import audit_code, SafetyViolation
from repro.sandbox.executor import SandboxExecutor, ExecutionResult
from repro.sandbox.server import SandboxServer
from repro.sandbox.client import (
    HealthStatus,
    InProcessClient,
    SandboxClient,
    SandboxUnavailable,
)

__all__ = [
    "audit_code",
    "SafetyViolation",
    "SandboxExecutor",
    "ExecutionResult",
    "SandboxServer",
    "SandboxClient",
    "InProcessClient",
    "HealthStatus",
    "SandboxUnavailable",
]
