"""Sandboxed code execution (§3.2, §4.2.3).

The paper executes all generated code on *temporary data copies* inside an
isolated ASGI server, guaranteeing the ground-truth data is never modified
and returning either an error-free dataframe or a detailed error message.

This package provides the same contract:

* :mod:`repro.sandbox.safety` — an AST audit rejecting filesystem/network/
  process access, dunder traversal and unapproved imports before anything
  runs;
* :mod:`repro.sandbox.executor` — a restricted ``exec`` namespace over
  copied Frames, returning a structured :class:`ExecutionResult`;
* :mod:`repro.sandbox.server` / ``client`` — a stdlib HTTP JSON gateway
  mirroring the paper's Uvicorn/FastAPI deployment (keep-alive, bounded
  concurrent executions), with an in-process client for tests and the
  evaluation harness;
* :mod:`repro.sandbox.fleet` — N warm gateway workers behind one client
  interface: least-loaded routing, per-worker circuit breakers, reap/
  respawn, and tiered degradation down to the in-process executor.
"""

from repro.sandbox.safety import audit_code, SafetyViolation
from repro.sandbox.executor import SandboxExecutor, ExecutionResult
from repro.sandbox.server import LatencyExecutor, SandboxServer
from repro.sandbox.client import (
    HealthStatus,
    InProcessClient,
    SandboxClient,
    SandboxUnavailable,
)
from repro.sandbox.fleet import (
    FleetMember,
    ProcessSpawner,
    SandboxFleet,
    ThreadSpawner,
    resolve_sandbox_workers,
)

__all__ = [
    "audit_code",
    "SafetyViolation",
    "SandboxExecutor",
    "ExecutionResult",
    "SandboxServer",
    "LatencyExecutor",
    "SandboxClient",
    "InProcessClient",
    "HealthStatus",
    "SandboxUnavailable",
    "SandboxFleet",
    "FleetMember",
    "ThreadSpawner",
    "ProcessSpawner",
    "resolve_sandbox_workers",
]
