"""Restricted execution of generated analysis code.

The executor receives code plus named input Frames, runs the code against
*copies* (the temporary-data-copy guarantee), and returns a structured
result: the ``result`` Frame, any ``figure`` object, tables the code
published, and on failure the exception type plus a detailed message — the
payload the QA repair loop feeds back to the code-generating agents.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.frame import Frame, concat
from repro.frame.frame import ColumnMismatchError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.sandbox.safety import SafetyViolation, audit_code
from repro.viz import Figure, Scene3D

_SAFE_BUILTINS = {
    "abs": abs, "all": all, "any": any, "bool": bool, "dict": dict,
    "enumerate": enumerate, "float": float, "int": int, "len": len,
    "list": list, "max": max, "min": min, "print": lambda *a, **k: None,
    "range": range, "round": round, "set": set, "sorted": sorted,
    "str": str, "sum": sum, "tuple": tuple, "zip": zip, "map": map,
    "filter": filter, "reversed": reversed, "isinstance": isinstance,
    "object": object, "type": type, "divmod": divmod, "pow": pow,
    "repr": repr, "hash": hash, "iter": iter, "next": next, "slice": slice,
    "ValueError": ValueError, "KeyError": KeyError, "TypeError": TypeError,
    "Exception": Exception, "StopIteration": StopIteration,
    "__import__": None,  # replaced below by the restricted importer
}

_ALLOWED_MODULES = {"numpy", "math", "statistics"}


def _restricted_import(name, globals=None, locals=None, fromlist=(), level=0):
    root = name.split(".")[0]
    if root not in _ALLOWED_MODULES:
        raise SafetyViolation(f"import of {name!r} is not permitted at runtime")
    return __import__(name, globals, locals, fromlist, level)


@dataclass
class ExecutionResult:
    """Outcome of one sandboxed execution."""

    ok: bool
    result: Frame | None = None
    figure: Any = None
    tables: dict[str, Frame] = field(default_factory=dict)
    error_type: str = ""
    error_message: str = ""
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def result_rows(self) -> int:
        return self.result.num_rows if self.result is not None else 0

    def summary(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "result_rows": self.result_rows,
            "result_columns": self.result.columns if self.result is not None else [],
            "has_figure": self.figure is not None,
            "error_type": self.error_type,
            "error_message": self.error_message,
        }


class SandboxExecutor:
    """Executes audited code over copied inputs with a frozen namespace."""

    def __init__(self, tools: dict[str, Any] | None = None):
        self.tools = dict(tools or {})

    def execute(self, code: str, tables: dict[str, Frame]) -> ExecutionResult:
        """Audit + run ``code``; never mutates the caller's frames.

        Every execution is traced (span ``sandbox.execute``) and charged to
        the sandbox wall-time histogram — the dominant cost the paper's
        future-work parallelization targets.
        """
        tracer = get_tracer()
        t0 = tracer.clock.now()
        with tracer.span(
            "sandbox.execute", code_lines=code.count("\n") + 1, n_tables=len(tables)
        ) as sp:
            result = self._run(code, tables)
            sp.set(ok=result.ok, error_type=result.error_type)
        wall = tracer.clock.now() - t0
        registry = get_registry()
        registry.counter("sandbox.executions").inc()
        if not result.ok:
            registry.counter("sandbox.errors").inc()
        registry.histogram("sandbox.wall_s").observe(wall)
        return result

    def _run(self, code: str, tables: dict[str, Frame]) -> ExecutionResult:
        try:
            audit_code(code)
        except SafetyViolation as exc:
            return ExecutionResult(
                ok=False, error_type="SafetyViolation", error_message=str(exc)
            )

        # temporary data copies: the ground truth can never be modified
        working: dict[str, Frame] = {
            name: Frame({c: np.array(frame.column(c), copy=True) for c in frame.columns})
            for name, frame in tables.items()
        }
        builtins = dict(_SAFE_BUILTINS)
        builtins["__import__"] = _restricted_import
        namespace: dict[str, Any] = {
            "__builtins__": builtins,
            "np": np,
            "Frame": Frame,
            "concat": concat,
            "Figure": Figure,
            "Scene3D": Scene3D,
            "tables": working,
            "tools": dict(self.tools),
        }
        try:
            exec(compile(code, "<agent-code>", "exec"), namespace)  # noqa: S102
        except ColumnMismatchError as exc:
            return ExecutionResult(
                ok=False,
                error_type="ColumnMismatchError",
                error_message=str(exc),
                tables=working,
            )
        except Exception as exc:  # detailed message for the repair loop
            tb = traceback.format_exc(limit=3)
            return ExecutionResult(
                ok=False,
                error_type=type(exc).__name__,
                error_message=f"{exc} | traceback: {tb.splitlines()[-1]}",
                tables=working,
            )

        result = namespace.get("result")
        if result is not None and not isinstance(result, Frame):
            return ExecutionResult(
                ok=False,
                error_type="ContractViolation",
                error_message=f"'result' must be a Frame, got {type(result).__name__}",
                tables=working,
            )
        figure = namespace.get("figure")
        if figure is not None and not isinstance(figure, (Figure, Scene3D)):
            return ExecutionResult(
                ok=False,
                error_type="ContractViolation",
                error_message=f"'figure' must be a Figure or Scene3D, got {type(figure).__name__}",
                tables=working,
            )
        return ExecutionResult(ok=True, result=result, figure=figure, tables=working)
