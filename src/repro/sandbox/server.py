"""HTTP JSON execution gateway (Uvicorn/FastAPI substitute).

One endpoint, ``POST /execute``, accepting::

    {"code": "...", "tables": {"work": {<frame json>}, ...}}

and returning the execution summary plus the result frame, published
tables, and the figure serialized as SVG when one was produced.  Runs on
a stdlib ``ThreadingHTTPServer`` so the sandbox really is a separate
serving process boundary, as in the paper, without external dependencies.
A ``GET /health`` endpoint reports liveness.

Defensive posture: malformed JSON and schema violations answer **400**,
oversized bodies **413** (bounded by ``max_body_bytes``), unexpected
executor failures **500** — always with a structured
``{"error": {"type", "message"}}`` body, so clients can classify without
scraping tracebacks.  Each connection gets a socket read timeout
(``read_timeout_s``), so a client that stalls mid-request cannot pin a
server thread forever.

Connections speak **HTTP/1.1 keep-alive**: every reply carries an exact
``Content-Length``, so clients can pipeline many executions over one
socket instead of paying TCP setup per request.  An idle keep-alive
connection is closed by the same ``read_timeout_s`` socket timeout; a
client reusing a connection the server already closed sees a reset and
reconnects (classified retryable on the client side).

``max_concurrent`` bounds how many executions run at once *inside this
server* (default 1): one sandbox worker models one isolated interpreter
that runs one job at a time, which is the unit the fleet multiplies.
HTTP threads still accept/parse concurrently — only the execute step
serializes.

Run ``python -m repro.sandbox.server`` to start a standalone worker
process; it prints one ``SANDBOX_URL=<url>`` line on stdout when ready
(how :class:`~repro.sandbox.fleet.ProcessSpawner` learns the bound
port).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.sandbox.executor import ExecutionResult, SandboxExecutor
from repro.sandbox.serialize import frame_from_json, frame_to_json
from repro.frame import Frame
from repro.viz import Figure, Scene3D

DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024
DEFAULT_READ_TIMEOUT_S = 30.0


class BadRequest(ValueError):
    """Client-side payload problem → 400 with a structured body."""


class LatencyExecutor:
    """Executor wrapper adding a fixed real-time delay per execution.

    Models a heavy/remote execution cost (container round-trip, large
    simulation post-processing) so fleet benchmarks measure concurrency
    engineering honestly on any core count — overlapping N sleeps needs
    N workers regardless of how many CPUs the host has.
    """

    def __init__(self, inner: SandboxExecutor | None = None, latency_s: float = 0.02):
        self.inner = inner or SandboxExecutor()
        self.latency_s = float(latency_s)

    def execute(self, code: str, tables: dict[str, Frame]) -> ExecutionResult:
        if self.latency_s > 0:
            time.sleep(self.latency_s)
        return self.inner.execute(code, tables)


class SandboxServer:
    """Owns the HTTP server lifecycle; use as a context manager in tests."""

    def __init__(
        self,
        executor: SandboxExecutor | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
        max_concurrent: int = 1,
    ):
        self.executor = executor or SandboxExecutor()
        self.max_body_bytes = int(max_body_bytes)
        self.read_timeout_s = float(read_timeout_s)
        # one worker = one isolated interpreter: executions serialize here
        # (HTTP accept/parse stays concurrent); raise to co-host workloads
        self.max_concurrent = max(1, int(max_concurrent))
        self._exec_gate = threading.BoundedSemaphore(self.max_concurrent)
        self._httpd = ThreadingHTTPServer((host, port), self._make_handler())
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]  # type: ignore[return-value]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _make_handler(self):
        executor = self.executor
        max_body = self.max_body_bytes
        read_timeout = self.read_timeout_s
        exec_gate = self._exec_gate

        class Handler(BaseHTTPRequestHandler):
            # keep-alive: persistent clients reuse one socket across many
            # executions (every _reply carries an exact Content-Length)
            protocol_version = "HTTP/1.1"
            # socket read timeout (applied in StreamRequestHandler.setup):
            # a stalled client raises socket.timeout in rfile.read /
            # request parsing instead of pinning the thread forever; the
            # same timeout reaps idle keep-alive connections
            timeout = read_timeout

            def log_message(self, *args: Any) -> None:  # silence request logs
                pass

            def do_GET(self) -> None:
                if self.path == "/health":
                    self._reply(200, {"status": "ok"})
                else:
                    self._error(404, "NotFound", f"no route {self.path!r}")

            def do_POST(self) -> None:
                if self.path != "/execute":
                    self._error(404, "NotFound", f"no route {self.path!r}")
                    return
                try:
                    payload = self._read_payload()
                    tables = {
                        name: frame_from_json(doc)
                        for name, doc in payload.get("tables", {}).items()
                    }
                    with exec_gate:
                        result = executor.execute(payload["code"], tables)
                    doc: dict[str, Any] = result.summary()
                    if result.result is not None:
                        doc["result"] = frame_to_json(result.result)
                    doc["tables"] = {
                        name: frame_to_json(frame) for name, frame in result.tables.items()
                    }
                    if isinstance(result.figure, (Figure, Scene3D)):
                        doc["figure_svg"] = result.figure.to_svg()
                    self._reply(200, doc)
                except _PayloadTooLarge as exc:
                    self._error(413, "PayloadTooLarge", str(exc))
                except BadRequest as exc:
                    self._error(400, "BadRequest", str(exc))
                except socket.timeout:
                    # stalled client: close without a reply; the connection
                    # is already unusable
                    self.close_connection = True
                except Exception as exc:  # defensive: gateway must not die
                    self._error(500, type(exc).__name__, str(exc))

            def _read_payload(self) -> dict[str, Any]:
                try:
                    length = int(self.headers.get("Content-Length", ""))
                except ValueError:
                    raise BadRequest("missing or non-integer Content-Length") from None
                if length < 0:
                    raise BadRequest("negative Content-Length")
                if length > max_body:
                    raise _PayloadTooLarge(
                        f"body of {length} bytes exceeds the {max_body}-byte limit"
                    )
                body = self.rfile.read(length)
                try:
                    payload = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise BadRequest(f"body is not valid JSON: {exc}") from None
                if not isinstance(payload, dict):
                    raise BadRequest("payload must be a JSON object")
                if not isinstance(payload.get("code"), str):
                    raise BadRequest("payload must carry a string 'code' field")
                if not isinstance(payload.get("tables", {}), dict):
                    raise BadRequest("'tables' must be an object")
                return payload

            def _error(self, status: int, err_type: str, message: str) -> None:
                # on errors the request body may be partially unread (e.g.
                # 413 refuses before reading); a keep-alive reuse would
                # misparse the leftover bytes as a new request — close instead
                self.close_connection = True
                self._reply(status, {"error": {"type": err_type, "message": message}})

            def _reply(self, status: int, doc: dict) -> None:
                body = json.dumps(doc).encode("utf-8")
                try:
                    self.send_response(status)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                except (BrokenPipeError, ConnectionResetError, socket.timeout):
                    self.close_connection = True

        return Handler

    def start(self) -> "SandboxServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "SandboxServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


class _PayloadTooLarge(BadRequest):
    """Body exceeds ``max_body_bytes`` → 413."""


def main(argv: list[str] | None = None) -> int:
    """Standalone worker entry: ``python -m repro.sandbox.server``.

    Binds (port 0 → ephemeral), prints ``SANDBOX_URL=<url>`` on stdout
    so a spawning parent (:class:`~repro.sandbox.fleet.ProcessSpawner`)
    can read the address, then serves until terminated.
    """
    import argparse

    parser = argparse.ArgumentParser(description="Run one sandbox worker process")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument(
        "--max-concurrent", type=int, default=1,
        help="executions allowed at once in this worker (default 1)",
    )
    parser.add_argument(
        "--exec-latency", type=float, default=0.0,
        help="fixed per-execution delay in seconds (benchmark workloads)",
    )
    parser.add_argument(
        "--read-timeout", type=float, default=DEFAULT_READ_TIMEOUT_S,
        help="socket read / keep-alive idle timeout in seconds",
    )
    args = parser.parse_args(argv)

    # deferred: agents.tools pulls in the agent/sim/viz stack, which this
    # module must not import at module load (fleet imports server)
    from repro.agents.tools import default_toolset

    executor: Any = SandboxExecutor(tools=default_toolset())
    if args.exec_latency > 0:
        executor = LatencyExecutor(executor, latency_s=args.exec_latency)
    server = SandboxServer(
        executor=executor,
        host=args.host,
        port=args.port,
        read_timeout_s=args.read_timeout,
        max_concurrent=args.max_concurrent,
    )
    print(f"SANDBOX_URL={server.url}", flush=True)
    try:
        server._httpd.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server._httpd.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
