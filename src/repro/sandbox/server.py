"""HTTP JSON execution gateway (Uvicorn/FastAPI substitute).

One endpoint, ``POST /execute``, accepting::

    {"code": "...", "tables": {"work": {<frame json>}, ...}}

and returning the execution summary plus the result frame, published
tables, and the figure serialized as SVG when one was produced.  Runs on
a stdlib ``ThreadingHTTPServer`` so the sandbox really is a separate
serving process boundary, as in the paper, without external dependencies.
A ``GET /health`` endpoint reports liveness.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.sandbox.executor import SandboxExecutor
from repro.sandbox.serialize import frame_from_json, frame_to_json
from repro.viz import Figure, Scene3D


class SandboxServer:
    """Owns the HTTP server lifecycle; use as a context manager in tests."""

    def __init__(self, executor: SandboxExecutor | None = None, host: str = "127.0.0.1", port: int = 0):
        self.executor = executor or SandboxExecutor()
        self._httpd = ThreadingHTTPServer((host, port), self._make_handler())
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]  # type: ignore[return-value]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _make_handler(self):
        executor = self.executor

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args: Any) -> None:  # silence request logs
                pass

            def do_GET(self) -> None:
                if self.path == "/health":
                    self._reply(200, {"status": "ok"})
                else:
                    self._reply(404, {"error": "not found"})

            def do_POST(self) -> None:
                if self.path != "/execute":
                    self._reply(404, {"error": "not found"})
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    payload = json.loads(self.rfile.read(length).decode("utf-8"))
                    tables = {
                        name: frame_from_json(doc)
                        for name, doc in payload.get("tables", {}).items()
                    }
                    result = executor.execute(payload["code"], tables)
                    doc: dict[str, Any] = result.summary()
                    if result.result is not None:
                        doc["result"] = frame_to_json(result.result)
                    doc["tables"] = {
                        name: frame_to_json(frame) for name, frame in result.tables.items()
                    }
                    if isinstance(result.figure, Figure):
                        doc["figure_svg"] = result.figure.to_svg()
                    elif isinstance(result.figure, Scene3D):
                        doc["figure_svg"] = result.figure.to_svg()
                    self._reply(200, doc)
                except Exception as exc:  # defensive: gateway must not die
                    self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

            def _reply(self, status: int, doc: dict) -> None:
                body = json.dumps(doc).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        return Handler

    def start(self) -> "SandboxServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "SandboxServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
