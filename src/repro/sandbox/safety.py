"""Static safety audit of generated code.

Checked *before* execution:

* imports restricted to an allowlist (numpy, math, statistics, and the
  repro analysis modules),
* no dunder attribute access (``__class__``-style escape routes),
* no calls to ``open``/``eval``/``exec``/``compile``/``__import__``/
  ``globals``/``input``/``breakpoint``,
* no ``global``/``nonlocal`` declarations and no deletion statements.

The audit is defense-in-depth on top of the restricted namespace — code
that passes still runs without builtins that touch the host.
"""

from __future__ import annotations

import ast

ALLOWED_IMPORTS = {
    "numpy",
    "math",
    "statistics",
}

FORBIDDEN_CALLS = {
    "open", "eval", "exec", "compile", "__import__", "globals", "locals",
    "input", "breakpoint", "exit", "quit", "vars", "delattr", "setattr",
    "getattr", "memoryview",
}


class SafetyViolation(RuntimeError):
    """Raised when generated code fails the audit."""


def audit_code(code: str) -> ast.Module:
    """Parse and audit ``code``; returns the AST if clean."""
    try:
        tree = ast.parse(code)
    except SyntaxError as exc:
        raise SafetyViolation(f"syntax error in generated code: {exc}") from exc

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root not in ALLOWED_IMPORTS:
                    raise SafetyViolation(f"import of {alias.name!r} is not permitted")
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root not in ALLOWED_IMPORTS:
                raise SafetyViolation(f"import from {node.module!r} is not permitted")
        elif isinstance(node, ast.Attribute):
            if node.attr.startswith("__") and node.attr.endswith("__"):
                raise SafetyViolation(f"dunder attribute access {node.attr!r} is not permitted")
        elif isinstance(node, ast.Name):
            if node.id.startswith("__") and node.id.endswith("__"):
                raise SafetyViolation(f"dunder name {node.id!r} is not permitted")
        elif isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in FORBIDDEN_CALLS:
                raise SafetyViolation(f"call to {fn.id!r} is not permitted")
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            raise SafetyViolation("global/nonlocal declarations are not permitted")
        elif isinstance(node, ast.Delete):
            raise SafetyViolation("del statements are not permitted")
    return tree
