"""Calibrated generation-error injection.

§4.1.1/§4.1.2 of the paper identify three failure mechanisms, reproduced
here mechanistically rather than by hard-coding outcome rates:

1. **Column-name corruption** — "using non-existent or slightly incorrect
   column names"; e.g. ``center_x`` instead of ``fof_halo_center_x``.
   Probability rises with semantic complexity; repair probability rises
   once the error message (which lists valid columns) is in context.
   Multiple simultaneous corruptions can exhaust the 5-revision budget.
2. **Tool misuse** — asking to track a *characteristic* over time but
   invoking the particle-coordinate tracking tool: valid code,
   unsatisfactory analysis output.
3. **Visualization-form misselection** — e.g. a line chart for a spatial
   task: valid code, unsatisfactory visualization.

All draws come from a dedicated RNG stream so injection is reproducible
and independent of the rest of the system.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.util.text import snake_words


@dataclass(frozen=True)
class ErrorModel:
    """Probabilities of each generation-failure mechanism."""

    # base chance a generated identifier is corrupted, before complexity scaling
    column_typo_rate: float = 0.10
    # additional per-level scaling with semantic complexity (0=easy,1=med,2=hard)
    semantic_scaling: float = 0.9
    # chance of a second simultaneous corruption when one occurs
    double_error_rate: float = 0.35
    # chance a repair attempt with the error message in context still misses
    repair_miss_rate: float = 0.30
    # chance of picking the wrong custom tool on evolution-of-characteristic tasks
    tool_misuse_rate: float = 0.30
    # chance of an inappropriate visualization form
    viz_misselection_rate: float = 0.25
    # per-code-step chance of a *conceptual* column misunderstanding, by
    # semantic level; unlike typos these resist error-guided repair
    # (the model keeps re-deriving the same wrong concept mapping)
    concept_error_rates: tuple[float, float, float] = (0.05, 0.03, 0.22)
    # chance a repair attempt under a conceptual error still emits it
    concept_persistence: float = 0.88
    # chance of silently planning over a plausible-but-wrong metric column
    # ("inappropriate analytical technique": valid code, off-target output)
    wrong_metric_rate: float = 0.12
    # wrong-metric scaling with semantic level (harder wording, more
    # contextual inference, more misresolution)
    wrong_metric_scaling: float = 0.35

    def scaled_typo_rate(self, semantic_level: int) -> float:
        return min(0.9, self.column_typo_rate * (1.0 + self.semantic_scaling * semantic_level))

    def concept_rate(self, semantic_level: int) -> float:
        level = min(max(int(semantic_level), 0), 2)
        return self.concept_error_rates[level]

    def scaled_wrong_metric_rate(self, semantic_level: int) -> float:
        return min(
            0.9, self.wrong_metric_rate * (1.0 + self.wrong_metric_scaling * semantic_level)
        )

    def with_rates(self, **kwargs: float) -> "ErrorModel":
        return replace(self, **kwargs)


NO_ERRORS = ErrorModel(
    column_typo_rate=0.0,
    double_error_rate=0.0,
    repair_miss_rate=0.0,
    tool_misuse_rate=0.0,
    viz_misselection_rate=0.0,
    concept_error_rates=(0.0, 0.0, 0.0),
    concept_persistence=0.0,
    wrong_metric_rate=0.0,
)

# plausible-but-wrong metric substitutions (same entity, related quantity)
WRONG_METRIC_MAP = {
    "fof_halo_count": "fof_halo_mass",
    "fof_halo_mass": "fof_halo_count",
    "gal_stellar_mass": "gal_gas_mass",
    "gal_gas_mass": "gal_stellar_mass",
    "fof_halo_vel_disp": "fof_halo_ke",
    "sod_halo_MGas500c": "sod_halo_Mstar500c",
}


def corrupt_column_name(name: str, rng: np.random.Generator) -> str:
    """Produce a plausible near-miss of a column name.

    Mimics the paper's example (``center_x`` for ``fof_halo_center_x``):
    drop a leading namespace word, drop an underscore word, or typo one
    character.
    """
    words = name.split("_")
    mode = rng.integers(0, 3)
    if mode == 0 and len(words) > 2:
        # drop the leading namespace ('fof', 'sod', 'gal')
        k = 1 + int(rng.integers(0, min(2, len(words) - 2)))
        return "_".join(words[k:])
    if mode == 1 and len(words) > 1:
        drop = int(rng.integers(0, len(words)))
        kept = [w for i, w in enumerate(words) if i != drop]
        return "_".join(kept)
    # single-character typo (always a *different* character)
    if len(name) > 2:
        pos = int(rng.integers(1, len(name) - 1))
        original = name[pos]
        repl = original
        while repl == original:
            repl = chr(ord("a") + int(rng.integers(0, 26)))
        return name[:pos] + repl + name[pos + 1 :]
    return name + "x"


def choose_corruptions(
    columns: list[str],
    rng: np.random.Generator,
    model: ErrorModel,
    semantic_level: int,
    already_repaired: set[str] | None = None,
) -> dict[str, str]:
    """Decide which column references to corrupt in one generation.

    ``already_repaired`` columns (those whose correct names appeared in a
    previous error message) are only re-corrupted at ``repair_miss_rate``.
    Returns a mapping real-name -> corrupted-name.
    """
    repaired = already_repaired or set()
    corruptions: dict[str, str] = {}
    rate = model.scaled_typo_rate(semantic_level)
    candidates = [c for c in columns if len(snake_words(c)) >= 2]
    if not candidates:
        return corruptions
    # first corruption
    for col in candidates:
        p = model.repair_miss_rate if col in repaired else rate
        if rng.uniform() < p:
            corruptions[col] = corrupt_column_name(col, rng)
            break
    # possible simultaneous second error (drives multi-error budget exhaustion)
    if corruptions and rng.uniform() < model.double_error_rate:
        remaining = [c for c in candidates if c not in corruptions]
        if remaining:
            col = remaining[int(rng.integers(0, len(remaining)))]
            corruptions[col] = corrupt_column_name(col, rng)
    return corruptions
