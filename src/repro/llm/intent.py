"""Structured query intent.

The planning agent's job is turning a natural-language question into a
structured analysis intent; :class:`QueryIntent` is that structure.  It is
produced by the mock LLM's interpreter (:mod:`repro.llm.interpret`) and
consumed by the planner skill that expands it into plan steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict


# analysis operation vocabulary (what the Python agent can compute)
ANALYSES = (
    "aggregate",            # grouped summary statistics
    "top_k",                # rank and select the largest/smallest entities
    "track_evolution",      # follow a metric across timesteps (per tracked halo)
    "relation_fit",         # log-log linear fit: slope / normalization / scatter
    "relation_by_param",    # relation fit repeated per sub-grid parameter value
    "correlation",          # correlation / alignment between two entity sets
    "interestingness",      # composite z-score ranking
    "compare_groups",       # characteristic differences between two groups
    "parameter_inference",  # infer direction of sub-grid parameter effects
    "neighborhood",         # spatial selection around a target
    "data_cleaning",        # NaN/validity filtering before a fit
)

VIZ_FORMS = ("line", "scatter", "hist", "umap", "paraview3d", "heatmap")


@dataclass
class RelationSpec:
    """A y(x) relation to fit in log-log space."""

    y_term: str                    # e.g. 'gas mass fraction' or a column name
    x_term: str                    # e.g. 'halo mass'
    per_step: bool = False         # fit at each timestep and compare
    per_param: str | None = None   # fit per value of a sub-grid parameter
    want_scatter: bool = False     # intrinsic scatter requested
    want_slope: bool = True
    want_normalization: bool = True


@dataclass
class QueryIntent:
    """Everything the planner needs to know about a question."""

    question: str = ""
    entities: list[str] = field(default_factory=list)      # halos/galaxies/particles
    metric_terms: list[str] = field(default_factory=list)  # NL terms to resolve to columns
    runs: list[int] | None = None        # None = all simulations
    steps: list[int] | None = None       # None = all timesteps
    top_k: int | None = None
    second_top_k: int | None = None      # e.g. "top 10 galaxies" after "2 largest halos"
    rank_metric: str | None = None       # term/column ranking is by
    group_keys: list[str] = field(default_factory=list)    # 'step', 'run', 'param:M_seed'
    analyses: list[str] = field(default_factory=list)
    viz: list[str] = field(default_factory=list)
    relation: RelationSpec | None = None
    join_galaxies_to_halos: bool = False
    radius_mpc: float | None = None
    highlight_top: int | None = None     # e.g. highlight top 20 in a UMAP
    ambiguous: bool = False
    unresolved_terms: list[str] = field(default_factory=list)
    tracking_kind: str | None = None     # 'characteristic' | 'position'

    def as_dict(self) -> dict:
        doc = asdict(self)
        return doc

    @property
    def multi_run(self) -> bool:
        return self.runs is None or len(self.runs) > 1

    @property
    def multi_step(self) -> bool:
        return self.steps is None or len(self.steps) > 1
