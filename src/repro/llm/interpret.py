"""Natural-language question interpretation (the mock LLM's comprehension).

A layered pattern matcher that extracts a :class:`QueryIntent` from the
kinds of questions the paper evaluates (Table 1): scoped entity references,
timestep/simulation filters, ranking requests, relation fits, evolution
tracking, interestingness scoring, spatial neighborhoods, parameter
inference and visualization requests.

Domain-specific *semantic* phrases ("intrinsic scatter", "SMHM", "gas-mass
fraction") are mapped through the phrase lexicon below; phrases outside
the lexicon land in ``unresolved_terms`` where the RAG layer (and the
error model) take over — that distinction is exactly the paper's semantic
complexity axis.
"""

from __future__ import annotations

import re

from repro.llm.intent import QueryIntent, RelationSpec

# NL phrase -> canonical metric term the retriever resolves to columns
PHRASE_LEXICON: dict[str, str] = {
    "halo count": "fof_halo_count",
    "fof_halo_count": "fof_halo_count",
    "halo mass": "fof_halo_mass",
    "fof_halo_mass": "fof_halo_mass",
    "halo size": "fof_halo_count",
    "size": "fof_halo_count",
    "mass": "fof_halo_mass",
    "velocity": "fof_halo_vel_disp",
    "kinetic energy": "fof_halo_ke",
    "velocity dispersion": "fof_halo_vel_disp",
    "gas mass": "gal_gas_mass",
    "gas-mass": "gal_gas_mass",
    "stellar mass": "gal_stellar_mass",
    "sod_halo_mgas500c": "sod_halo_MGas500c",
    "sod_halo_m500c": "sod_halo_M500c",
    "gal_stellar_mass": "gal_stellar_mass",
    "gal_gas_mass": "gal_gas_mass",
    "gal_ke": "gal_ke",
    "fof_halo_vel_disp": "fof_halo_vel_disp",
    "fof_halo_ke": "fof_halo_ke",
}

PARAM_ALIASES: dict[str, str] = {
    "fsn": "f_SN",
    "f_sn": "f_SN",
    "vel": "log_vSN",
    "vsn": "log_vSN",
    "v_sn": "log_vSN",
    "tagn": "log_TAGN",
    "t_agn": "log_TAGN",
    "beta_bh": "beta_BH",
    "seed mass": "M_seed",
    "m_seed": "M_seed",
}

_NUM = r"(\d+)"


def _find_all_ints(pattern: str, text: str) -> list[int]:
    return [int(m) for m in re.findall(pattern, text)]


def interpret_question(question: str) -> QueryIntent:
    """Parse ``question`` into a QueryIntent."""
    q = question.lower()
    intent = QueryIntent(question=question)

    # ------------------------------------------------------------------
    # entity scope
    # ------------------------------------------------------------------
    if re.search(r"\bgalax(y|ies)\b", q):
        intent.entities.append("galaxies")
    if re.search(r"\bhalos?\b", q) or "fof" in q or "sod" in q or "smhm" in q:
        intent.entities.append("halos")
    if re.search(r"\bparticles?\b", q) and "halo" not in q:
        intent.entities.append("particles")
    if not intent.entities:
        intent.entities.append("halos")

    # ------------------------------------------------------------------
    # run / timestep scope
    # ------------------------------------------------------------------
    runs = _find_all_ints(r"simulation\s+" + _NUM, q)
    if re.search(r"all (the )?simulations|across (all )?(the )?simulations|all \d+ simulations|each simulation|every simulation|both simulations", q):
        intent.runs = None
    elif runs:
        intent.runs = sorted(set(runs))
    elif re.search(r"the two simulations|between the simulations", q):
        intent.runs = [0, 1]
    else:
        intent.runs = [0]

    steps = _find_all_ints(r"time\s*steps?\s+" + _NUM, q)
    if re.search(r"all (the )?time\s*steps|each time\s*step|every time\s*step|over all time|for all time", q):
        intent.steps = None
    elif re.search(r"earliest time\s*step to the latest|from the earliest", q):
        intent.steps = None  # planner narrows to [first, last]
        intent.group_keys.append("step")
    elif steps:
        intent.steps = sorted(set(steps))
    else:
        intent.steps = None if re.search(r"evolv|evolution|over time", q) else ["latest"]  # type: ignore[list-item]

    if intent.steps is None and "step" not in intent.group_keys:
        if re.search(r"each time\s*step|at each|per time\s*step|all time\s*steps", q):
            intent.group_keys.append("step")

    # ------------------------------------------------------------------
    # ranking / selection
    # ------------------------------------------------------------------
    top_matches = _find_all_ints(r"(?:largest|top|biggest|most massive)\s+" + _NUM, q)
    top_matches += _find_all_ints(_NUM + r"\s+largest", q)
    if re.search(r"\btwo largest\b", q):
        top_matches.insert(0, 2)
    if top_matches:
        intent.top_k = top_matches[0]
        if len(top_matches) > 1:
            intent.second_top_k = top_matches[1]
        intent.analyses.append("top_k")
    elif re.search(r"\blargest\b|\bbiggest\b", q):
        intent.top_k = 1
        intent.analyses.append("top_k")

    if "halo count" in q or "fof_halo_count" in q:
        intent.rank_metric = "fof_halo_count"
    elif intent.top_k is not None:
        intent.rank_metric = (
            "gal_stellar_mass" if intent.entities == ["galaxies"] else "fof_halo_count"
        )

    highlight = _find_all_ints(r"highlight\w*\s+the\s+top\s+" + _NUM, q)
    if highlight:
        intent.highlight_top = highlight[0]

    # ------------------------------------------------------------------
    # metric terms (semantic layer)
    # ------------------------------------------------------------------
    for phrase, term in PHRASE_LEXICON.items():
        if re.search(rf"(?<![\w-]){re.escape(phrase)}(?![\w])", q) and term not in intent.metric_terms:
            intent.metric_terms.append(term)
    for raw in re.findall(r"[a-z_]*_[a-z_0-9]+", q):
        canonical = PHRASE_LEXICON.get(raw)
        if canonical and canonical not in intent.metric_terms:
            intent.metric_terms.append(canonical)

    for phrase in ("intrinsic scatter", "assembly efficiency", "tightest", "interestingness",
                   "normalization", "unique", "slope", "trend"):
        if phrase in q:
            intent.unresolved_terms.append(phrase)

    # ------------------------------------------------------------------
    # analyses
    # ------------------------------------------------------------------
    if re.search(r"\baverage\b|\bmean\b", q):
        intent.analyses.append("aggregate")
    if re.search(r"change in (mass|\w+)|trend in|evol(ve|ution|ves)|over (all )?time", q):
        intent.analyses.append("track_evolution")
        intent.tracking_kind = "characteristic"
        if "step" not in intent.group_keys:
            intent.group_keys.append("step")
    if re.search(r"trajectory|path of|coordinates? over time", q):
        intent.analyses.append("track_evolution")
        intent.tracking_kind = "position"

    # relation fits
    relation = _parse_relation(q)
    if relation is not None:
        intent.relation = relation
        intent.analyses.append(
            "relation_by_param" if relation.per_param else "relation_fit"
        )
        if relation.per_step and "step" not in intent.group_keys:
            intent.group_keys.append("step")
        intent.analyses.append("data_cleaning")

    if relation is not None and relation.per_param:
        # sweeping a sub-grid parameter requires the whole ensemble: each
        # run carries a single parameter value
        intent.runs = None
    if relation is not None and "track_evolution" in intent.analyses and not re.search(
        r"change in \w+", q
    ):
        # "evolve" belonged to the relation fit, not to halo tracking
        intent.analyses.remove("track_evolution")
        intent.tracking_kind = None

    if re.search(r"interesting|most unique", q):
        intent.analyses.append("interestingness")
    if re.search(r"align|correlat", q) and relation is None:
        intent.analyses.append("correlation")
    if re.search(r"differences? in (the )?[\w -]*characteristics|differences? between|compare .* (groups|galaxies|halos)", q):
        intent.analyses.append("compare_groups")
    if re.search(r"direction of .* parameters?|infer\w* .* parameters?|make an inference", q):
        intent.analyses.append("parameter_inference")
        intent.ambiguous = True
    if re.search(r"within\s+(\d+(?:\.\d+)?)\s*(mpc|megaparsec)", q):
        m = re.search(r"within\s+(\d+(?:\.\d+)?)\s*(mpc|megaparsec)", q)
        assert m is not None
        intent.radius_mpc = float(m.group(1))
        intent.analyses.append("neighborhood")

    # galaxy-halo join
    if "galaxies" in intent.entities and "halos" in intent.entities:
        intent.join_galaxies_to_halos = bool(
            re.search(r"associated|related by|fof_halo_tag|host", q)
            or "correlation" in intent.analyses
        )
    if "smhm" in q or "stellar-to-halo" in q:
        if "galaxies" not in intent.entities:
            intent.entities.append("galaxies")
        intent.join_galaxies_to_halos = True

    # ambiguity: characteristic lists with "for example", vague directions
    if re.search(r"for example|e\.g\.|characteristics\b", q) and "compare_groups" in intent.analyses:
        intent.ambiguous = intent.ambiguous or "characteristics" in q

    # ------------------------------------------------------------------
    # visualization forms
    # ------------------------------------------------------------------
    if "umap" in q:
        intent.viz.append("umap")
    if "histogram" in q:
        intent.viz.append("hist")
    if "heat map" in q or "heatmap" in q or "correlation matrix" in q:
        intent.viz.append("heatmap")
    if "paraview" in q or intent.radius_mpc is not None or re.search(r"\b3d\b", q):
        intent.viz.append("paraview3d")
    if re.search(r"\bplot|\bvisuali[sz]|\bgraph|\bchart|\bfigure", q) and not intent.viz:
        if "track_evolution" in intent.analyses or "step" in intent.group_keys:
            intent.viz.append("line")
        elif intent.relation is not None or "correlation" in intent.analyses:
            intent.viz.append("scatter")
        elif "compare_groups" in intent.analyses:
            intent.viz.append("hist")
        else:
            intent.viz.append("scatter")
    if re.search(r"two plots|both .* as metrics", q) and len(intent.viz) == 1:
        intent.viz.append(intent.viz[0])
    if re.search(r"summary of the differences|plot a summary", q):
        intent.viz.append("heatmap")

    # aggregate-only questions with no explicit analysis
    if not intent.analyses:
        intent.analyses.append("aggregate")

    # dedupe preserving order
    intent.analyses = list(dict.fromkeys(intent.analyses))
    intent.viz = list(dict.fromkeys(intent.viz)) if not _wants_duplicate_viz(q) else intent.viz
    return intent


def _wants_duplicate_viz(q: str) -> bool:
    return bool(re.search(r"two plots|both .* as metrics", q))


def _parse_relation(q: str) -> RelationSpec | None:
    """Detect relation-fit requests (slope/normalization/scatter of y vs x)."""
    wants_slope = "slope" in q
    wants_norm = "normalization" in q or "normalisation" in q
    wants_scatter = "intrinsic scatter" in q or "scatter of" in q
    per_param = None
    for alias, name in PARAM_ALIASES.items():
        if re.search(rf"function of {alias}|per {alias}|vary as a function of {alias}|vs\.? {alias}|by {alias}", q):
            per_param = name
    if "seed mass" in q and ("smhm" in q or "stellar-to-halo" in q):
        per_param = "M_seed"

    if "gas-mass fraction" in q or "gas mass fraction" in q or "mgas500c" in q:
        return RelationSpec(
            y_term="gas mass fraction",
            x_term="sod_halo_M500c",
            per_step="evolve" in q or "evolution" in q or "earliest" in q,
            per_param=per_param,
            want_scatter=wants_scatter,
            want_slope=wants_slope or True,
            want_normalization=wants_norm or True,
        )
    if "smhm" in q or "stellar-to-halo" in q or "stellar-to-halo mass" in q:
        return RelationSpec(
            y_term="gal_stellar_mass",
            x_term="fof_halo_mass",
            per_step=False,
            per_param=per_param,
            want_scatter=wants_scatter or "tightest" in q,
            want_slope=True,
            want_normalization=wants_norm,
        )
    if wants_slope and wants_norm:
        return RelationSpec(y_term="fof_halo_mass", x_term="fof_halo_count")
    return None
