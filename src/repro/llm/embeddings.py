"""Hashed character-n-gram embeddings (text-embedding-3-small substitute).

The feature-hashing trick: each word and character trigram hashes to a
bucket of a fixed-dimension vector; vectors are L2-normalized so cosine
similarity reduces to a dot product.  Lexically and morphologically
similar texts (e.g. "halo mass" vs "fof_halo_mass description ...") land
close together — the property the column-retrieval layer relies on.
Deterministic across processes (BLAKE2-based bucket hashing).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.util.text import snake_words


def _bucket(token: str, dim: int, salt: str) -> tuple[int, float]:
    digest = hashlib.blake2b(f"{salt}:{token}".encode(), digest_size=8).digest()
    value = int.from_bytes(digest, "little")
    sign = 1.0 if value & 1 else -1.0
    return (value >> 1) % dim, sign


class HashedEmbedder:
    """Deterministic text embedder with a cosine-friendly geometry."""

    # bump when tokenization/bucketing changes so persisted embedding
    # matrices keyed on cache_key() are rebuilt instead of reused
    ALGORITHM_VERSION = 1

    def __init__(self, dim: int = 384):
        if dim < 16:
            raise ValueError("dim must be >= 16")
        self.dim = dim

    def cache_key(self) -> str:
        """Stable identity of this embedder's geometry (for artifact caches)."""
        return f"hashed-ngram-v{self.ALGORITHM_VERSION}:dim={self.dim}"

    def _tokens(self, text: str) -> list[str]:
        words: list[str] = []
        for raw in text.lower().split():
            cleaned = "".join(c for c in raw if c.isalnum() or c == "_")
            if not cleaned:
                continue
            words.extend(snake_words(cleaned) or [cleaned])
        tokens = list(words)
        joined = " ".join(words)
        tokens.extend(joined[i : i + 3] for i in range(len(joined) - 2))
        return tokens

    def embed(self, text: str) -> np.ndarray:
        """Embed one text into a unit vector (zeros for empty input)."""
        vec = np.zeros(self.dim)
        for token in self._tokens(text):
            # words weighted above trigrams so exact-term overlap dominates
            weight = 2.0 if len(token) > 3 or "_" in token else 1.0
            idx, sign = _bucket(token, self.dim, "emb")
            vec[idx] += sign * weight
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        if not texts:
            return np.zeros((0, self.dim))
        return np.vstack([self.embed(t) for t in texts])

    @staticmethod
    def similarity(a: np.ndarray, b: np.ndarray) -> float:
        return float(np.dot(a, b))
