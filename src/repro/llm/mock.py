"""The deterministic mock LLM (GPT-4o substitute).

Dispatch protocol: the final user message carries a role directive and a
JSON payload::

    [[ROLE:sql]]
    ... natural-language context (retrieved docs, task text) ...
    [[PAYLOAD]]
    {"step_key": "...", "attempt": 0, "params": {...}}

Skills implemented: ``planner`` (question -> intent + plan JSON), ``sql``
(step params -> SQL), ``python`` / ``viz`` (step params -> code), ``qa``
(execution summary -> 1-100 score + feedback), ``doc`` (summary prose).

Generation errors are injected by :mod:`repro.llm.errors` per step and
attempt; the mock remembers which identifiers the previous error message
exposed (the repair loop), so error-guided retries converge exactly the
way the paper describes — usually quickly, occasionally exhausting the
revision budget when multiple corruptions pile up on semantically hard
questions.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

import numpy as np

from repro.llm import codegen
from repro.llm.base import ChatMessage, ChatResponse, prompt_tokens_of
from repro.llm.errors import ErrorModel, choose_corruptions
from repro.llm.interpret import interpret_question
from repro.llm.plan import expand_intent, semantic_level
from repro.obs.cost import DEFAULT_MODEL, record_llm_call
from repro.obs.names import LLM_CHAT_SPAN
from repro.obs.tracer import get_tracer
from repro.util.rngs import SeedSequenceFactory
from repro.util.tokens import count_tokens

_ROLE_RE = re.compile(r"\[\[ROLE:([a-z_]+)\]\]")
_PAYLOAD_RE = re.compile(r"\[\[PAYLOAD\]\]\s*(\{.*)\s*\Z", re.DOTALL)

# forms the viz-misselection mechanism swaps to (valid but inappropriate)
_MISSELECTION = {
    "paraview3d": "scatter",
    "umap": "scatter",
    "line": "hist",
    "scatter": "line",
    "hist": "line",
    "heatmap": "line",
}


@dataclass
class _StepMemory:
    last_corruptions: dict[str, str] = field(default_factory=dict)
    repaired: set[str] = field(default_factory=set)
    misuse_decided: bool = False
    misuse: bool = False
    viz_form: str | None = None
    concept_decided: bool = False
    concept_error: bool = False


class MockLLM:
    """Seeded rule/template chat model."""

    def __init__(
        self,
        seed: int = 0,
        error_model: ErrorModel | None = None,
        latency_per_call_s: float = 1.2,
        context_window: int = 128_000,
    ):
        self.seeds = SeedSequenceFactory(seed)
        self.error_model = error_model or ErrorModel()
        self.latency_per_call_s = latency_per_call_s
        self.context_window = context_window
        self.truncated_calls = 0
        self._memory: dict[str, _StepMemory] = {}
        self._calls = 0
        # priced model identity for the cost ledger (obs.cost.PRICE_TABLE)
        self.model = DEFAULT_MODEL

    # ------------------------------------------------------------------
    def chat(self, messages: list[ChatMessage], role: str = "agent") -> ChatResponse:
        self._calls += 1
        # finite context: over-long conversations lose their oldest prefix,
        # exactly like a hosted model with a fixed window; the payload tail
        # (which carries the structured directive) always survives
        if prompt_tokens_of(messages) > self.context_window:
            self.truncated_calls += 1
            kept: list[ChatMessage] = [messages[-1]]
            budget = self.context_window - prompt_tokens_of(kept)
            for message in reversed(messages[:-1]):
                cost = prompt_tokens_of([message])
                if cost > budget:
                    break
                kept.insert(0, message)
                budget -= cost
            messages = kept
        last = messages[-1].content
        m = _ROLE_RE.search(last)
        skill = m.group(1) if m else role
        payload: dict = {}
        pm = _PAYLOAD_RE.search(last)
        if pm:
            payload = json.loads(pm.group(1))
        with get_tracer().span(LLM_CHAT_SPAN, skill=skill) as sp:
            handler = getattr(self, f"_skill_{skill}", None)
            if handler is None:
                completion = self._skill_doc(payload, last)
            else:
                completion = handler(payload, last)
            response = ChatResponse(
                content=completion,
                prompt_tokens=prompt_tokens_of(messages),
                completion_tokens=count_tokens(completion),
                latency_s=self.latency_per_call_s,
            )
            sp.set(
                prompt_tokens=response.prompt_tokens,
                completion_tokens=response.completion_tokens,
                latency_s=response.latency_s,
            )
            cost_usd = record_llm_call(
                response.prompt_tokens,
                response.completion_tokens,
                model=self.model,
                agent=skill,
            )
            if cost_usd is not None:
                # COST_ATTRS: present only on metered runs, excluded from
                # canonical trees so metered ≡ unmetered
                sp.set(cost_usd=cost_usd, model=self.model)
        return response

    # ------------------------------------------------------------------
    # skills
    # ------------------------------------------------------------------
    def _skill_planner(self, payload: dict, prompt: str) -> str:
        question = payload["question"]
        intent = interpret_question(question)
        steps = expand_intent(intent)
        self._maybe_misresolve_metric(question, steps, semantic_level(intent))
        doc = {
            "reasoning": self._chain_of_thought(intent),
            "semantic_level": semantic_level(intent),
            "intent": intent.as_dict(),
            "steps": [
                {
                    "index": s.index,
                    "kind": s.kind,
                    "description": s.description,
                    "params": s.params,
                }
                for s in steps
            ],
        }
        return (
            "Here is my step-by-step analysis plan.\n```json\n"
            + json.dumps(doc, indent=1)
            + "\n```"
        )

    def _maybe_misresolve_metric(self, question: str, steps, level: int) -> None:
        """Inappropriate-analysis mechanism: the plan consistently resolves
        the question onto a plausible-but-wrong metric column (valid code,
        off-target output — §4.1.2)."""
        from repro.llm.errors import WRONG_METRIC_MAP

        rng = self.seeds.stream("wrongmetric", question)
        if rng.uniform() >= self.error_model.scaled_wrong_metric_rate(level):
            return
        # find the dominant metric across analysis steps and swap it
        target = None
        for s in steps:
            metric = s.params.get("metric")
            if s.kind == "python" and metric in WRONG_METRIC_MAP:
                target = metric
                break
        if target is None:
            return
        wrong = WRONG_METRIC_MAP[target]
        for s in steps:
            params = s.params
            if params.get("metric") == target:
                params["metric"] = wrong
            if params.get("rank_metric") == target:
                params["rank_metric"] = wrong
            source = params.get("source")
            if isinstance(source, str) and target in source:
                params["source"] = source.replace(target, wrong)
            cols = params.get("columns")
            if isinstance(cols, list) and target in cols and wrong not in cols:
                cols.append(wrong)
            if isinstance(cols, dict):
                for col_list in cols.values():
                    if target in col_list and wrong not in col_list:
                        col_list.append(wrong)

    def _chain_of_thought(self, intent) -> str:
        parts = [f"The question targets {', '.join(intent.entities)}."]
        if intent.runs is None:
            parts.append("It spans all simulations in the ensemble.")
        else:
            parts.append(f"It is scoped to simulation(s) {intent.runs}.")
        if intent.steps is None:
            parts.append("All timesteps are involved.")
        if intent.analyses:
            parts.append(f"Required analyses: {', '.join(intent.analyses)}.")
        if intent.viz:
            parts.append(f"Requested visualizations: {', '.join(intent.viz)}.")
        if intent.ambiguous:
            parts.append(
                "The question is ambiguous; multiple analytical strategies are valid."
            )
        return " ".join(parts)

    # ------------------------------------------------------------------
    def _mem(self, payload: dict) -> _StepMemory:
        key = payload.get("step_key", "anon")
        return self._memory.setdefault(key, _StepMemory())

    def _corruptions(
        self, payload: dict, columns: list[str], allow_concept: bool = True
    ) -> dict[str, str]:
        mem = self._mem(payload)
        attempt = int(payload.get("attempt", 0))
        level = int(payload.get("semantic_level", 0))
        if attempt > 0 and mem.last_corruptions:
            # the agent has fed the error message back: identifiers exposed
            # by the error are now 'repaired' context
            mem.repaired.update(mem.last_corruptions)
            mem.last_corruptions = {}
        rng = self.seeds.stream("corrupt", payload.get("step_key", ""), attempt)
        corruptions = choose_corruptions(
            columns, rng, self.error_model, level, already_repaired=mem.repaired
        )
        # conceptual misunderstanding: a repair-resistant wrong column
        # mapping (semantically hard questions re-derive the same mistake);
        # only analysis code is affected — SQL filtering is concept-free
        if allow_concept and not mem.concept_decided:
            mem.concept_decided = True
            crng = self.seeds.stream("concept", payload.get("step_key", ""))
            mem.concept_error = bool(crng.uniform() < self.error_model.concept_rate(level))
        if mem.concept_error and columns:
            prng = self.seeds.stream("persist", payload.get("step_key", ""), attempt)
            if attempt == 0 or prng.uniform() < self.error_model.concept_persistence:
                from repro.llm.errors import corrupt_column_name

                target = columns[0]
                corruptions[target] = corrupt_column_name(
                    target, self.seeds.stream("conceptname", payload.get("step_key", ""))
                )
        mem.last_corruptions = dict(corruptions)
        return corruptions

    def _skill_sql(self, payload: dict, prompt: str) -> str:
        params = payload["params"]
        corruptions = self._corruptions(
            payload, list(params.get("columns", [])), allow_concept=False
        )
        sql = codegen.generate_sql(params, corruptions)
        return f"```sql\n{sql}\n```"

    def _skill_python(self, payload: dict, prompt: str) -> str:
        params = dict(payload["params"])
        mem = self._mem(payload)
        # tool-misuse mechanism: decided once per step, never self-corrected
        if (
            params.get("op") == "track_evolution"
            and params.get("tracking_kind", "characteristic") == "characteristic"
            and not mem.misuse_decided
        ):
            rng = self.seeds.stream("misuse", payload.get("step_key", ""))
            mem.misuse_decided = True
            mem.misuse = bool(rng.uniform() < self.error_model.tool_misuse_rate)
        if mem.misuse:
            params["misuse_position_tool"] = True
        columns = _referenced_columns(params)
        corruptions = self._corruptions(payload, columns)
        code = codegen.generate_python(params, corruptions)
        return f"```python\n{code}\n```"

    def _skill_viz(self, payload: dict, prompt: str) -> str:
        params = dict(payload["params"])
        mem = self._mem(payload)
        if mem.viz_form is None:
            rng = self.seeds.stream("vizform", payload.get("step_key", ""))
            form = params.get("form", "line")
            if rng.uniform() < self.error_model.viz_misselection_rate:
                form = _MISSELECTION.get(form, form)
            mem.viz_form = form
        params["form"] = mem.viz_form
        columns = _referenced_columns(params)
        corruptions = self._corruptions(payload, columns)
        code = codegen.generate_viz(params, corruptions)
        header = json.dumps({"form": mem.viz_form})
        return f"{header}\n```python\n{code}\n```"

    def _skill_qa(self, payload: dict, prompt: str) -> str:
        """Nuanced 1-100 quality score (binary mode for the ablation)."""
        rng = self.seeds.stream("qa", payload.get("step_key", ""), payload.get("attempt", 0))
        has_error = bool(payload.get("error"))
        rows = int(payload.get("result_rows", 0))
        mode = payload.get("mode", "score")
        if has_error:
            score = int(rng.integers(5, 25))
            feedback = _repair_feedback(payload.get("error", ""))
        elif rows == 0 and payload.get("expects_rows", True):
            score = int(rng.integers(20, 45))
            feedback = "The result is empty; revisit the filtering conditions."
        else:
            # the paper: nuanced scoring lowers false negatives vs binary
            score = int(np.clip(rng.normal(82, 9), 35, 100))
            feedback = "Output satisfies the delegated task."
        if mode == "binary":
            # rigid correct/incorrect judgment: prone to false negatives
            correct = (not has_error) and rows > 0 and rng.uniform() > 0.22
            return json.dumps({"correct": bool(correct), "feedback": feedback})
        return json.dumps({"score": score, "feedback": feedback})

    def _skill_doc(self, payload: dict, prompt: str) -> str:
        steps = payload.get("completed_steps", [])
        lines = ["Workflow summary:"]
        for s in steps:
            lines.append(f"- Step {s.get('index')}: {s.get('description')} -> {s.get('status')}")
        lines.append(
            f"{sum(1 for s in steps if s.get('status') == 'ok')} of {len(steps)} steps succeeded."
        )
        return "\n".join(lines)

    def _skill_supervisor(self, payload: dict, prompt: str) -> str:
        """Route decision: which agent handles the next plan step."""
        kind = payload.get("next_kind", "python")
        agent = {
            "load": "data_loader",
            "sql": "sql_programmer",
            "python": "python_programmer",
            "viz": "visualization",
        }.get(kind, "python_programmer")
        return json.dumps({"delegate_to": agent, "reason": f"step kind is {kind}"})


def _referenced_columns(params: dict) -> list[str]:
    """Column names a code template will interpolate (corruption targets)."""
    cols: list[str] = []
    for key in ("metric", "x", "y", "x_column", "y_column", "rank_metric"):
        v = params.get(key)
        if isinstance(v, str) and "_" in v:
            cols.append(v)
    for v in params.get("columns", []) or []:
        if isinstance(v, str):
            cols.append(v)
    return list(dict.fromkeys(cols))


def _repair_feedback(error: str) -> str:
    return (
        "Execution failed. Use the exact column names listed in the error "
        f"message when regenerating the code. Error was: {error[:400]}"
    )
