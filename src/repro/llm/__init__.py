"""Language-model substrate: chat interface, mock LLM, embeddings.

The paper runs on GPT-4o + text-embedding-3-small.  Offline, this package
provides the same *interfaces* with deterministic implementations:

* :class:`MockLLM` — a seeded rule/template model with per-role skills
  (planning, SQL generation, Python generation, visualization code,
  quality scoring).  Its outputs are plain text/JSON completions, token
  usage is metered on real prompt/completion text, and a calibrated
  error model injects exactly the failure taxonomy the paper reports
  (near-miss column names, tool misuse, inappropriate chart forms).
* :class:`HashedEmbedder` — character-n-gram hashed embeddings whose
  cosine geometry ranks column descriptions against query terms, the
  only property the RAG layer needs.
"""

from repro.llm.base import ChatMessage, ChatResponse, ChatModel
from repro.llm.embeddings import HashedEmbedder
from repro.llm.errors import ErrorModel, NO_ERRORS
from repro.llm.mock import MockLLM

__all__ = [
    "ChatMessage",
    "ChatResponse",
    "ChatModel",
    "HashedEmbedder",
    "ErrorModel",
    "NO_ERRORS",
    "MockLLM",
]
