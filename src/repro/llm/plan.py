"""Plan expansion: QueryIntent -> ordered plan steps.

This is the planning agent's core skill.  Step kinds mirror the paper's
seven-agent pipeline: one ``load`` step (data-loading agent), one ``sql``
step (SQL programming agent), one or more ``python`` steps (Python
programming agent) and zero or more ``viz`` steps (visualization agent).
QA and documentation are orchestration-level, not plan steps, matching the
paper's definition of "analysis steps" for the difficulty thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.intent import QueryIntent

# terms the paper calls out as *normalized wording* (medium semantic)
MEDIUM_TERMS = {"slope", "normalization", "interestingness", "unique", "trend"}
# *domain-specific terminology* absent from the metadata (hard semantic)
HARD_TERMS = {"intrinsic scatter", "assembly efficiency", "tightest"}


@dataclass
class PlanStep:
    index: int
    kind: str          # 'load' | 'sql' | 'python' | 'viz'
    description: str
    params: dict = field(default_factory=dict)


def semantic_level(intent: QueryIntent) -> int:
    """0 = easy, 1 = medium, 2 = hard (the paper's semantic-complexity axis).

    Easy questions use terms directly defined in the metadata; medium use
    normalized wording; hard use domain terminology absent from the
    metadata or requiring contextual inference (ambiguous characteristic
    lists, parameter-direction inference).
    """
    terms = set(intent.unresolved_terms)
    if terms & HARD_TERMS or intent.ambiguous or "compare_groups" in intent.analyses:
        return 2
    if terms & MEDIUM_TERMS:
        return 1
    return 0


def analysis_level_from_steps(n_steps: float) -> int:
    """0/1/2 from the paper's thresholds: <4.5 easy, 4.5-5.5 medium, >5.5 hard."""
    if n_steps < 4.5:
        return 0
    if n_steps <= 5.5:
        return 1
    return 2


def _columns_for_entity(intent: QueryIntent, entity: str) -> list[str]:
    """Columns the loader must fetch for one entity kind."""
    halo_cols = {
        "fof_halo_count", "fof_halo_mass", "fof_halo_vel_disp", "fof_halo_ke",
        "sod_halo_M500c", "sod_halo_MGas500c", "sod_halo_R500c", "sod_halo_Mstar500c",
        "fof_halo_center_x", "fof_halo_center_y", "fof_halo_center_z",
        "fof_halo_mean_vx", "fof_halo_mean_vy", "fof_halo_mean_vz",
    }
    gal_cols = {
        "gal_stellar_mass", "gal_gas_mass", "gal_count", "gal_ke", "gal_sfr",
        "gal_x", "gal_y", "gal_z", "gal_vx", "gal_vy", "gal_vz",
    }
    cols: list[str] = []

    def add(name: str) -> None:
        if name not in cols:
            cols.append(name)

    if entity == "halos":
        add("fof_halo_tag")
        if intent.rank_metric and intent.rank_metric in halo_cols | {"fof_halo_count"}:
            add(intent.rank_metric)
        for term in intent.metric_terms:
            if term in halo_cols:
                add(term)
        if intent.relation:
            for t in (intent.relation.x_term, intent.relation.y_term):
                if t in halo_cols:
                    add(t)
            if intent.relation.y_term == "gas mass fraction":
                add("sod_halo_MGas500c")
                add("sod_halo_M500c")
        if "neighborhood" in intent.analyses or "paraview3d" in intent.viz:
            for axis in "xyz":
                add(f"fof_halo_center_{axis}")
            add("fof_halo_count")
        if "interestingness" in intent.analyses:
            add("fof_halo_vel_disp")
            add("fof_halo_mass")
            add("fof_halo_ke")
        if "parameter_inference" in intent.analyses or "aggregate" in intent.analyses:
            if not any(col in cols for col in ("fof_halo_count", "fof_halo_mass")):
                add("fof_halo_count")
        if len(cols) == 1:  # only the tag so far: take the default size metric
            add("fof_halo_count")
    elif entity == "galaxies":
        add("gal_tag")
        add("fof_halo_tag")
        for term in intent.metric_terms:
            if term in gal_cols:
                add(term)
        if intent.relation and intent.relation.y_term in gal_cols:
            add(intent.relation.y_term)
        if "compare_groups" in intent.analyses or "interestingness" in intent.analyses:
            for col in ("gal_gas_mass", "gal_stellar_mass", "gal_ke"):
                add(col)
        if "correlation" in intent.analyses or "paraview3d" in intent.viz:
            for axis in "xyz":
                add(f"gal_{axis}")
        if intent.rank_metric == "gal_stellar_mass" or (
            intent.top_k and "galaxies" in intent.entities
        ):
            add("gal_stellar_mass")
        if len(cols) == 2:
            add("gal_stellar_mass")
    elif entity == "particles":
        cols = ["id", "x", "y", "z", "mass", "fof_halo_tag"]
    return cols


def _needs_params(intent: QueryIntent) -> list[str]:
    names: list[str] = []
    if intent.relation and intent.relation.per_param:
        names.append(intent.relation.per_param)
    if "parameter_inference" in intent.analyses:
        names.extend(["f_SN", "log_vSN"])
    return list(dict.fromkeys(names))


def expand_intent(intent: QueryIntent) -> list[PlanStep]:
    """Expand an intent into the executable plan."""
    steps: list[PlanStep] = []

    def emit(kind: str, description: str, **params) -> None:
        steps.append(PlanStep(len(steps), kind, description, params))

    primary = "halos" if "halos" in intent.entities else intent.entities[0]
    columns = {e: _columns_for_entity(intent, e) for e in intent.entities}
    param_cols = _needs_params(intent)

    emit(
        "load",
        f"Load {', '.join(intent.entities)} data for the requested runs and timesteps",
        entities=list(intent.entities),
        columns=columns,
        runs=intent.runs,
        steps=intent.steps,
        param_columns=param_cols,
    )

    per_cell_rank = bool(intent.top_k) and (intent.multi_run or intent.multi_step)
    rank_metric = intent.rank_metric if intent.top_k else None
    emit(
        "sql",
        "Filter the database down to the rows and columns needed",
        table=primary,
        columns=columns[primary][:],
        runs=intent.runs,
        steps=intent.steps,
        top_k=intent.top_k,
        rank_metric=rank_metric,
        per_cell_rank=per_cell_rank,
        secondary=[e for e in intent.entities if e != primary],
        secondary_columns={e: columns[e] for e in intent.entities if e != primary},
        param_columns=param_cols,
        join_galaxies=bool(
            intent.join_galaxies_to_halos
            and intent.relation is not None
            and "galaxies" in intent.entities
        ),
        galaxy_columns=columns.get("galaxies", []),
    )

    metric = _primary_metric(intent, primary)
    interest_cols = (
        ["gal_gas_mass", "gal_stellar_mass", "gal_ke"]
        if primary == "galaxies"
        else ["fof_halo_vel_disp", "fof_halo_mass", "fof_halo_ke"]
    )

    other_analyses = [a for a in intent.analyses if a not in ("top_k", "data_cleaning")]
    if per_cell_rank:
        emit(
            "python",
            f"Select the top {intent.top_k} rows by {metric} within each run/timestep",
            op="top_k_per_cell",
            metric=metric,
            top_k=intent.top_k,
        )
    elif intent.top_k and not other_analyses:
        # a pure extraction question still gets one Python verification step
        emit("python", f"Extract and verify the top {intent.top_k} rows by {metric}",
             op="top_k_per_cell", metric=metric, top_k=intent.top_k)

    # second-entity selection (e.g. "top 10 galaxies associated to those halos")
    if (
        "galaxies" in intent.entities
        and primary == "halos"
        and (intent.second_top_k or (intent.top_k and "correlation" in intent.analyses))
    ):
        emit("python",
             f"Select the top {intent.second_top_k or intent.top_k} galaxies for the selected halos",
             op="select_group_members",
             top_k=intent.second_top_k or intent.top_k,
             per_halo=bool(intent.second_top_k))

    auto_viz: list[dict] = []
    for op in intent.analyses:
        if op in ("top_k",):
            continue  # handled by SQL (or the per-cell Python step)
        if op == "data_cleaning":
            rel = intent.relation
            clean_cols = []
            if rel:
                clean_cols = [c for c in columns[primary]
                              if c.startswith(("sod_", "gal_")) or c == "fof_halo_mass"]
            if not clean_cols:
                clean_cols = [metric]
            emit("python", "Clean the data (drop invalid and non-positive rows)",
                 op="data_cleaning", columns=clean_cols)
        elif op == "aggregate":
            emit("python", f"Compute the mean {metric} grouped by {intent.group_keys or ['step']}",
                 op="aggregate", metric=metric, group_keys=intent.group_keys or ["step"])
        elif op == "track_evolution":
            track_metrics = _entity_metrics(intent, primary) or [metric]
            for tm in track_metrics:
                emit("python", f"Track the evolution of {tm} for the top halos across timesteps",
                     op="track_evolution", metric=tm, top_k=intent.top_k or 1,
                     tracking_kind=intent.tracking_kind or "characteristic")
        elif op == "relation_fit":
            rel = intent.relation
            assert rel is not None
            y_col, x_col, is_frac = _relation_columns(rel)
            emit("python", "Fit the relation (slope, normalization, scatter) in log-log space",
                 op="relation_fit", y_column=y_col, x_column=x_col,
                 y_is_fraction=is_frac, per_step=rel.per_step)
            if rel.per_step:
                emit("python", "Compare the fitted slope and normalization between the "
                               "earliest and latest timestep",
                     op="relation_evolution_compare")
            auto_viz.append({"form": "scatter", "source": "work",
                             "x": x_col, "y": y_col, "y_is_fraction": is_frac,
                             "title": _viz_title(intent, "scatter", 0)})
        elif op == "relation_by_param":
            rel = intent.relation
            assert rel is not None
            y_col, x_col, is_frac = _relation_columns(rel)
            emit("python", "Compute the relation slope and normalization for each "
                           f"{rel.per_param} value",
                 op="relation_by_param", y_column=y_col, x_column=x_col, param=rel.per_param)
            auto_viz.append({"form": "scatter", "source": "work",
                             "x": x_col, "y": y_col,
                             "title": _viz_title(intent, "scatter", 0)})
            emit("python", f"Calculate the intrinsic scatter of the relation per {rel.per_param}",
                 op="scatter_by_param", y_column=y_col, x_column=x_col, param=rel.per_param)
            auto_viz.append({"form": "line", "source": "fit_by_param",
                             "metric": "scatter", "x": rel.per_param,
                             "title": f"intrinsic scatter vs {rel.per_param}"})
            emit("python", f"Identify the {rel.per_param} value with the tightest relation",
                 op="find_best_param", param=rel.per_param)
        elif op == "correlation":
            if intent.join_galaxies_to_halos:
                emit("python", "Measure galaxy-halo alignment via shared halo tags",
                     op="alignment")
            else:
                corr_cols = [c for c in columns[primary] if c != "fof_halo_tag"][:4]
                emit("python", "Compute the correlation matrix of the characteristics",
                     op="correlation", columns=corr_cols)
        elif op == "interestingness":
            emit("python", f"Compute the interestingness score and rank {primary}",
                 op="interestingness",
                 columns=interest_cols,
                 top_k=intent.top_k or 1000)
        elif op == "compare_groups":
            group_key = "fof_halo_tag"
            if intent.multi_run and "galaxies" not in intent.entities:
                group_key = "run"  # compare simulations rather than halo hosts
            emit("python", "Compute summary statistics of each group's characteristics",
                 op="compare_groups",
                 group_key=group_key,
                 columns=[c for c in (columns.get("galaxies") or columns[primary])
                          if c not in ("gal_tag", "fof_halo_tag", "gal_x", "gal_y", "gal_z",
                                       "gal_vx", "gal_vy", "gal_vz")][:4] or [metric])
            auto_viz.append({"form": "hist", "source": "comparison", "metric": "mean",
                             "title": "group characteristic differences"})
        elif op == "parameter_inference":
            emit("python", "Infer the direction of the sub-grid parameters' effect",
                 op="parameter_inference", metric=metric, params_of_interest=param_cols)
        elif op == "neighborhood":
            emit("python", f"Select all halos within {intent.radius_mpc} Mpc of the target",
                 op="neighborhood", radius_mpc=intent.radius_mpc, metric=metric)

    # umap needs an embedding computation step before its plot
    if "umap" in intent.viz:
        emit("python", f"Compute the 2-D embedding of the scored {primary}",
             op="umap_embed",
             columns=interest_cols,
             source="scored" if "interestingness" in intent.analyses else "work")

    # visualization steps: explicitly requested forms, then planner diagnostics
    viz_sources = _viz_sources(intent)
    track_metrics = _entity_metrics(intent, primary) or [metric]
    for vi, form in enumerate(intent.viz):
        params: dict = {"form": form, "source": viz_sources.get(form, "work"),
                        "title": _viz_title(intent, form, vi)}
        if form == "line":
            params["metric"] = track_metrics[vi % len(track_metrics)] if "track_evolution" in intent.analyses else metric
            if "track_evolution" in intent.analyses:
                params["source"] = f"track_{params['metric']}"
        elif form == "scatter":
            if intent.relation is not None:
                y_col, x_col, _ = _relation_columns(intent.relation)
                params["x"], params["y"] = x_col, y_col
                params["source"] = "work"
            else:
                params["x"], params["y"] = "step", metric
        elif form == "umap":
            params["columns"] = ["fof_halo_vel_disp", "fof_halo_mass", "fof_halo_ke"]
            params["highlight_top"] = intent.highlight_top or 20
            params["source"] = "scored" if "interestingness" in intent.analyses else "work"
        elif form == "hist":
            params["metric"] = metric
            params["source"] = "comparison" if "compare_groups" in intent.analyses else "work"
        elif form == "paraview3d":
            params["source"] = "neighborhood" if "neighborhood" in intent.analyses else "work"
        elif form == "heatmap":
            params["source"] = "work"
        emit("viz", f"Create a {form} visualization of the results", **params)

    requested_forms = {s.params.get("form") for s in steps if s.kind == "viz"}
    for params in auto_viz:
        if params["form"] in requested_forms:
            continue  # the user already asked for this form explicitly
        emit("viz", f"Create a {params['form']} visualization of the results", **params)

    return steps


def _entity_metrics(intent: QueryIntent, primary: str) -> list[str]:
    """Metric terms compatible with the primary entity's column namespace."""
    prefixes = ("gal_",) if primary == "galaxies" else ("fof_", "sod_")
    return [t for t in intent.metric_terms if t.startswith(prefixes)]


def _primary_metric(intent: QueryIntent, primary: str) -> str:
    candidates = []
    if intent.rank_metric:
        candidates.append(intent.rank_metric)
    candidates.extend(intent.metric_terms)
    prefixes = ("gal_",) if primary == "galaxies" else ("fof_", "sod_")
    for cand in candidates:
        if cand.startswith(prefixes):
            return cand
    if primary == "galaxies":
        return "gal_stellar_mass"
    return intent.rank_metric or "fof_halo_count"


def _relation_columns(rel) -> tuple[str, str, bool]:
    """(y_column, x_column, y_is_fraction) for a RelationSpec."""
    if rel.y_term == "gas mass fraction":
        return "sod_halo_MGas500c", "sod_halo_M500c", True
    x_col = rel.x_term if rel.x_term.startswith(("fof_", "sod_", "gal_")) else "fof_halo_mass"
    y_col = rel.y_term if rel.y_term.startswith(("fof_", "sod_", "gal_")) else "gal_stellar_mass"
    return y_col, x_col, False


def _viz_sources(intent: QueryIntent) -> dict[str, str]:
    sources: dict[str, str] = {}
    if "aggregate" in intent.analyses:
        sources["line"] = "aggregated"
        sources["scatter"] = "aggregated"
    if "relation_by_param" in intent.analyses:
        sources["scatter"] = "work"
        sources["line"] = "fit_by_param"
    elif "relation_fit" in intent.analyses:
        sources["line"] = "fit"
        sources["scatter"] = "work"
    if "interestingness" in intent.analyses:
        sources["umap"] = "scored"
    if "neighborhood" in intent.analyses:
        sources["paraview3d"] = "neighborhood"
    if "compare_groups" in intent.analyses:
        sources["hist"] = "comparison"
    if "correlation" in intent.analyses and not intent.join_galaxies_to_halos:
        sources["heatmap"] = "correlation"
    return sources


def _viz_title(intent: QueryIntent, form: str, index: int) -> str:
    base = intent.question.strip().rstrip("?")
    words = base.split()
    short = " ".join(words[:8]) + ("..." if len(words) > 8 else "")
    return f"{short} [{form}]" if len(intent.viz) > 1 else short
