"""Code-generation skills of the mock LLM.

Each function renders executable code for one plan-step kind from the
step's structured parameters.  A ``name`` mapping routes every column
reference through the error model's corruption map, so generated code can
carry exactly the near-miss identifiers the paper reports; the code is
otherwise correct, which matches the paper's observation that failures
are dominated by identifier errors rather than logic errors.

Generated Python runs in the sandbox namespace: ``tables`` (dict of
Frames), ``Frame``, ``np``, ``tools`` (custom domain tools) and must set
``result`` (a Frame); visualization code must set ``figure``.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping


def _namer(corruptions: Mapping[str, str]) -> Callable[[str], str]:
    return lambda col: corruptions.get(col, col)


# ----------------------------------------------------------------------
# SQL generation
# ----------------------------------------------------------------------
def generate_sql(params: dict, corruptions: Mapping[str, str]) -> str:
    """SQL for the filtering step.

    ``params`` carries: table, columns, runs, steps, top_k, rank_metric,
    order ('desc'), target_table.
    """
    c = _namer(corruptions)
    cols = [c(col) for col in params["columns"]]
    param_cols = [f"param_{name}" for name in params.get("param_columns", [])]
    if params.get("join_galaxies"):
        gal_cols = [
            c(col)
            for col in params.get("galaxy_columns", [])
            if col not in ("gal_tag", "fof_halo_tag")
        ]
        select = ", ".join(dict.fromkeys(["run", "step", *gal_cols, *cols, *param_cols]))
        clauses = _sql_where_clauses(params)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return (
            f"SELECT {select} FROM galaxies JOIN {params['table']} "
            f"ON run = run AND step = step AND fof_halo_tag = fof_halo_tag{where}"
        )
    select = ", ".join(dict.fromkeys(["run", "step", *cols, *param_cols]))
    clauses = _sql_where_clauses(params)
    where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
    order = ""
    limit = ""
    if params.get("top_k") and params.get("rank_metric"):
        order = f" ORDER BY {c(params['rank_metric'])} DESC"
        # ranking must apply per (run, step) cell when several are in scope;
        # that refinement happens in Python, so SQL keeps all rows then.
        if params.get("per_cell_rank"):
            order = ""
        else:
            limit = f" LIMIT {params['top_k']}"
    return f"SELECT {select} FROM {params['table']}{where}{order}{limit}"


def _sql_where_clauses(params: dict) -> list[str]:
    clauses = []
    runs = params.get("runs")
    if runs is not None:
        clauses.append(
            f"run = {runs[0]}" if len(runs) == 1 else f"run IN ({', '.join(map(str, runs))})"
        )
    steps = params.get("steps")
    if steps is not None:
        clauses.append(
            f"step = {steps[0]}" if len(steps) == 1 else f"step IN ({', '.join(map(str, steps))})"
        )
    return clauses


# ----------------------------------------------------------------------
# Python analysis generation
# ----------------------------------------------------------------------
def generate_python(params: dict, corruptions: Mapping[str, str]) -> str:
    op = params["op"]
    generator = _PY_GENERATORS.get(op)
    if generator is None:
        raise ValueError(f"no code generator for analysis op {op!r}")
    return generator(params, _namer(corruptions))


def _py_aggregate(params: dict, c) -> str:
    metric = c(params["metric"])
    keys = params.get("group_keys") or ["step"]
    keys_py = ", ".join(repr(k) for k in keys)
    return f"""\
work = tables['work']
result = work.groupby([{keys_py}]).agg({{'{metric}': 'mean'}})
result = result.sort_values([{keys_py}])
"""


def _py_top_k_per_cell(params: dict, c) -> str:
    metric = c(params["metric"])
    k = params["top_k"]
    return f"""\
import numpy as np
work = tables['work']
pieces = []
for run in np.unique(work['run']):
    for step in np.unique(work['step']):
        cell = work.filter((work['run'] == run) & (work['step'] == step))
        if cell.num_rows:
            pieces.append(cell.nlargest({k}, '{metric}'))
result = concat(pieces)
"""


def _py_track(params: dict, c) -> str:
    metric = c(params["metric"])
    k = params.get("top_k") or 1
    if params.get("misuse_position_tool"):
        # tool misuse: tracks coordinates instead of the characteristic
        return f"""\
work = tables['work']
result = tools['track_halo_positions'](work, top_k={k})
"""
    return f"""\
work = tables['work']
result = tools['track_halo_characteristic'](work, metric='{metric}', top_k={k})
"""


def _py_clean(params: dict, c) -> str:
    cols = [c(col) for col in params["columns"]]
    checks = " & ".join(f"(work['{col}'] > 0)" for col in cols)
    drop = ", ".join(repr(col) for col in cols)
    return f"""\
work = tables['work'].dropna([{drop}])
mask = {checks}
result = work.filter(mask)
tables['work'] = result
"""


def _py_relation_fit(params: dict, c) -> str:
    y = c(params["y_column"])
    x = c(params["x_column"])
    ratio = params.get("y_is_fraction", False)
    per_step = params.get("per_step", False)
    y_expr = f"np.log10(work['{y}'] / work['{x}'])" if ratio else f"np.log10(work['{y}'])"
    group = "np.unique(work['step'])" if per_step else "[-1]"
    filter_line = (
        "sel = work.filter(work['step'] == step) if step >= 0 else work"
    )
    return f"""\
import numpy as np
work = tables['work']
rows = {{'step': [], 'slope': [], 'normalization': [], 'scatter': []}}
for step in {group}:
    {filter_line}
    if sel.num_rows < 3:
        continue
    lx = np.log10(sel['{x}'])
    ly = {y_expr.replace("work[", "sel[")}
    ok = np.isfinite(lx) & np.isfinite(ly)
    lx, ly = lx[ok], ly[ok]
    if len(lx) < 3:
        continue
    slope, intercept = np.polyfit(lx, ly, 1)
    residual = ly - (slope * lx + intercept)
    rows['step'].append(int(step))
    rows['slope'].append(float(slope))
    rows['normalization'].append(float(intercept))
    rows['scatter'].append(float(np.std(residual)))
result = Frame({{k: np.asarray(v) for k, v in rows.items()}})
tables['fit'] = result
"""


def _py_relation_by_param(params: dict, c) -> str:
    y = c(params["y_column"])
    x = c(params["x_column"])
    param = params["param"]
    return f"""\
import numpy as np
work = tables['work']
rows = {{'{param}': [], 'slope': [], 'normalization': [], 'scatter': [], 'n': []}}
for value in np.unique(work['param_{param}']):
    sel = work.filter(work['param_{param}'] == value)
    lx = np.log10(sel['{x}'])
    ly = np.log10(sel['{y}'])
    ok = np.isfinite(lx) & np.isfinite(ly)
    lx, ly = lx[ok], ly[ok]
    if len(lx) < 3:
        continue
    slope, intercept = np.polyfit(lx, ly, 1)
    residual = ly - (slope * lx + intercept)
    rows['{param}'].append(float(value))
    rows['slope'].append(float(slope))
    rows['normalization'].append(float(intercept))
    rows['scatter'].append(float(np.std(residual)))
    rows['n'].append(int(len(lx)))
result = Frame({{k: np.asarray(v) for k, v in rows.items()}})
tables['fit_by_param'] = result
"""


def _py_find_best_param(params: dict, c) -> str:
    param = params["param"]
    return f"""\
import numpy as np
fit = tables['fit_by_param']
best_idx = int(np.argmin(fit['scatter']))
threshold = float(fit['{param}'][best_idx])
result = Frame({{
    '{param}': np.asarray([threshold]),
    'scatter': np.asarray([float(fit['scatter'][best_idx])]),
    'slope': np.asarray([float(fit['slope'][best_idx])]),
}})
tables['best_param'] = result
"""


def _py_select_group_members(params: dict, c) -> str:
    """Top-k galaxies of the previously selected halos (join by halo tag)."""
    k = params.get("top_k") or 10
    per_halo = params.get("per_halo", True)
    stellar = c("gal_stellar_mass")
    if per_halo:
        return f"""\
import numpy as np
halos = tables['work']
galaxies = tables['work_galaxies']
pieces = []
for tag in np.unique(halos['fof_halo_tag']):
    members = galaxies.filter(galaxies['fof_halo_tag'] == tag)
    if members.num_rows:
        pieces.append(members.nlargest(min({k}, members.num_rows), '{stellar}'))
result = concat(pieces) if pieces else galaxies.head(0)
tables['work_galaxies'] = result
"""
    return f"""\
import numpy as np
halos = tables['work']
galaxies = tables['work_galaxies']
members = galaxies.filter(np.isin(galaxies['fof_halo_tag'], halos['fof_halo_tag']))
result = members.nlargest(min({k}, members.num_rows), '{stellar}')
tables['work_galaxies'] = result
"""


def _py_umap_embed(params: dict, c) -> str:
    cols = [c(col) for col in params["columns"]]
    cols_py = ", ".join(repr(col) for col in cols)
    source = params.get("source", "work")
    return f"""\
import numpy as np
data = tables['{source}'] if '{source}' in tables else tables['work']
names = [n for n in [{cols_py}] if n in data]
if not names:
    names = [c0 for c0 in data.columns if c0 not in ('run', 'step')][:3]
features = np.vstack([np.asarray(data[n], dtype=np.float64) for n in names]).T
emb = tools['umap_embed'](features)
result = data.assign(umap_x=emb[:, 0], umap_y=emb[:, 1])
tables['{source}'] = result
"""


def _py_relation_evolution_compare(params: dict, c) -> str:
    return """\
import numpy as np
fit = tables['fit']
if fit.num_rows < 2:
    result = fit
else:
    first = fit.row(0)
    last = fit.row(fit.num_rows - 1)
    result = Frame({
        'quantity': np.asarray(['slope', 'normalization', 'scatter'], dtype=object),
        'earliest': np.asarray([first['slope'], first['normalization'], first['scatter']]),
        'latest': np.asarray([last['slope'], last['normalization'], last['scatter']]),
        'change': np.asarray([last['slope'] - first['slope'],
                              last['normalization'] - first['normalization'],
                              last['scatter'] - first['scatter']]),
    })
tables['evolution'] = result
"""


def _py_scatter_by_param(params: dict, c) -> str:
    y = c(params["y_column"])
    x = c(params["x_column"])
    param = params["param"]
    return f"""\
import numpy as np
work = tables['work']
rows = {{'{param}': [], 'scatter': []}}
for value in np.unique(work['param_{param}']):
    sel = work.filter(work['param_{param}'] == value)
    lx = np.log10(sel['{x}'])
    ly = np.log10(sel['{y}'])
    ok = np.isfinite(lx) & np.isfinite(ly)
    lx, ly = lx[ok], ly[ok]
    if len(lx) < 3:
        continue
    slope, intercept = np.polyfit(lx, ly, 1)
    residual = ly - (slope * lx + intercept)
    rows['{param}'].append(float(value))
    rows['scatter'].append(float(np.std(residual)))
result = Frame({{k: np.asarray(v) for k, v in rows.items()}})
if 'fit_by_param' in tables:
    prior = tables['fit_by_param']
    if prior.num_rows == result.num_rows:
        merged = prior.drop('scatter') if 'scatter' in prior else prior
        result = merged.assign(scatter=result['scatter'])
tables['fit_by_param'] = result
"""


def _py_correlation(params: dict, c) -> str:
    cols = [c(col) for col in params["columns"]]
    cols_py = ", ".join(repr(col) for col in cols)
    return f"""\
import numpy as np
work = tables['work']
names = [{cols_py}]
matrix = np.vstack([np.asarray(work[n], dtype=np.float64) for n in names])
corr = np.corrcoef(matrix)
rows = {{'column': np.asarray(names, dtype=object)}}
for j, n in enumerate(names):
    rows['corr_' + n] = corr[:, j]
result = Frame(rows)
tables['correlation'] = result
"""


def _py_alignment(params: dict, c) -> str:
    """Spatial alignment between ranked galaxies and halos (shared tags)."""
    return """\
import numpy as np
halos = tables['work']
galaxies = tables['work_galaxies']
joined = galaxies.merge(halos, on='fof_halo_tag', how='inner')
if joined.num_rows:
    dx = joined['gal_x'] - joined['fof_halo_center_x']
    dy = joined['gal_y'] - joined['fof_halo_center_y']
    dz = joined['gal_z'] - joined['fof_halo_center_z']
    offset = np.sqrt(dx**2 + dy**2 + dz**2)
    result = joined.assign(alignment_offset=offset)
else:
    result = joined
tables['alignment'] = result
"""


def _py_interestingness(params: dict, c) -> str:
    cols = [c(col) for col in params["columns"]]
    cols_py = ", ".join(repr(col) for col in cols)
    k = params.get("top_k") or 1000
    return f"""\
import numpy as np
work = tables['work']
names = [{cols_py}]
score = np.zeros(work.num_rows)
for n in names:
    v = np.asarray(work[n], dtype=np.float64)
    sd = v.std() or 1.0
    score = score + np.abs(v - v.mean()) / sd
scored = work.assign(interestingness=score)
result = scored.nlargest(min({k}, scored.num_rows), 'interestingness')
tables['scored'] = result
"""


def _py_compare_groups(params: dict, c) -> str:
    cols = [c(col) for col in params["columns"]]
    cols_py = ", ".join(repr(col) for col in cols)
    group_key = params.get("group_key", "fof_halo_tag")
    limit = "[:2]" if group_key == "fof_halo_tag" else ""
    return f"""\
import numpy as np
groups = tables['work_galaxies'] if 'work_galaxies' in tables else tables['work']
keys = np.unique(groups['{group_key}']){limit}
names = [n for n in [{cols_py}] if n in groups]
rows = {{'group': [], 'column': [], 'mean': [], 'std': []}}
for key in keys:
    sel = groups.filter(groups['{group_key}'] == key)
    for n in names:
        v = np.asarray(sel[n], dtype=np.float64)
        rows['group'].append(int(key))
        rows['column'].append(n)
        rows['mean'].append(float(v.mean()) if len(v) else float('nan'))
        rows['std'].append(float(v.std()) if len(v) else 0.0)
result = Frame({{
    'group': np.asarray(rows['group'], dtype=np.int64),
    'column': np.asarray(rows['column'], dtype=object),
    'mean': np.asarray(rows['mean']),
    'std': np.asarray(rows['std']),
}})
tables['comparison'] = result
"""


def _py_parameter_inference(params: dict, c) -> str:
    metric = c(params.get("metric") or "fof_halo_count")
    names = params.get("params_of_interest") or ["f_SN", "log_vSN"]
    names_py = ", ".join(repr(n) for n in names)
    return f"""\
import numpy as np
work = tables['work']
rows = {{'parameter': [], 'correlation': [], 'direction': []}}
for pname in [{names_py}]:
    pv = np.asarray(work['param_' + pname], dtype=np.float64)
    mv = np.asarray(work['{metric}'], dtype=np.float64)
    if len(np.unique(pv)) < 2:
        continue
    r = float(np.corrcoef(pv, mv)[0, 1])
    rows['parameter'].append(pname)
    rows['correlation'].append(r)
    rows['direction'].append('increase' if r > 0 else 'decrease')
result = Frame({{k: np.asarray(v, dtype=object) if k != 'correlation' else np.asarray(v) for k, v in rows.items()}})
tables['inference'] = result
"""


def _py_neighborhood(params: dict, c) -> str:
    radius = params.get("radius_mpc") or 20.0
    cx, cy, cz = (c(f"fof_halo_center_{a}") for a in "xyz")
    metric = c(params.get("metric") or "fof_halo_count")
    return f"""\
import numpy as np
work = tables['work']
target_idx = int(np.argmax(work['{metric}']))
tx, ty, tz = (float(work['{cx}'][target_idx]),
              float(work['{cy}'][target_idx]),
              float(work['{cz}'][target_idx]))
d = np.sqrt((work['{cx}'] - tx)**2 + (work['{cy}'] - ty)**2 + (work['{cz}'] - tz)**2)
selected = work.filter(d <= {radius})
is_target = np.asarray(selected['{cx}'] == tx) & np.asarray(selected['{cy}'] == ty)
result = selected.assign(is_target=is_target, distance=d[d <= {radius}])
tables['neighborhood'] = result
"""


_PY_GENERATORS = {
    "aggregate": _py_aggregate,
    "top_k_per_cell": _py_top_k_per_cell,
    "track_evolution": _py_track,
    "data_cleaning": _py_clean,
    "relation_fit": _py_relation_fit,
    "relation_by_param": _py_relation_by_param,
    "find_best_param": _py_find_best_param,
    "correlation": _py_correlation,
    "alignment": _py_alignment,
    "interestingness": _py_interestingness,
    "compare_groups": _py_compare_groups,
    "parameter_inference": _py_parameter_inference,
    "neighborhood": _py_neighborhood,
    "select_group_members": _py_select_group_members,
    "umap_embed": _py_umap_embed,
    "relation_evolution_compare": _py_relation_evolution_compare,
    "scatter_by_param": _py_scatter_by_param,
}


# ----------------------------------------------------------------------
# Visualization generation
# ----------------------------------------------------------------------
def generate_viz(params: dict, corruptions: Mapping[str, str]) -> str:
    c = _namer(corruptions)
    form = params["form"]
    source = params.get("source", "work")
    title = params.get("title", "")
    if form == "line":
        metric = c(params.get("metric") or "value")
        return f"""\
import numpy as np
data = tables['{source}']
figure = Figure(width=700, height=430)
ax = figure.axes(0)
ax.title = {title!r}
series_key = 'run' if 'run' in data and len(np.unique(data['run'])) > 1 else None
xcol = 'step' if 'step' in data else data.columns[0]
ycol = '{metric}' if '{metric}' in data else [c0 for c0 in data.columns if c0 not in ('run', 'step')][0]
if series_key:
    for i, run in enumerate(np.unique(data[series_key])):
        sel = data.filter(data[series_key] == run).sort_values(xcol)
        ax.plot(sel[xcol], sel[ycol], label=f'sim {{int(run)}}')
else:
    sel = data.sort_values(xcol)
    ax.plot(sel[xcol], sel[ycol])
ax.set_xlabel(xcol)
ax.set_ylabel(ycol)
result = data
"""
    if form == "scatter":
        x = c(params.get("x") or "step")
        y = c(params.get("y") or "value")
        return f"""\
import numpy as np
data = tables['{source}']
figure = Figure(width=640, height=460)
ax = figure.axes(0)
ax.title = {title!r}
xcol = '{x}' if '{x}' in data else data.columns[0]
ycol = '{y}' if '{y}' in data else data.columns[-1]
xv = np.asarray(data[xcol], dtype=np.float64)
yv = np.asarray(data[ycol], dtype=np.float64)
if xv.max() / max(xv[xv > 0].min() if (xv > 0).any() else 1.0, 1e-12) > 1e3:
    ax.set_xscale('log')
if (yv > 0).all() and yv.max() / max(yv.min(), 1e-12) > 1e3:
    ax.set_yscale('log')
ax.scatter(xv, yv)
ax.set_xlabel(xcol)
ax.set_ylabel(ycol)
result = data
"""
    if form == "hist":
        metric = c(params.get("metric") or "value")
        return f"""\
import numpy as np
data = tables['{source}']
figure = Figure(width=640, height=420)
ax = figure.axes(0)
ax.title = {title!r}
col = '{metric}' if '{metric}' in data else [c0 for c0 in data.columns if c0 not in ('run', 'step')][-1]
ax.hist(np.asarray(data[col], dtype=np.float64), bins=24)
ax.set_xlabel(col)
ax.set_ylabel('count')
result = data
"""
    if form == "umap":
        cols = [c(col) for col in params.get("columns", [])]
        cols_py = ", ".join(repr(col) for col in cols)
        highlight = params.get("highlight_top") or 20
        return f"""\
import numpy as np
data = tables['{source}']
if 'umap_x' in data and 'umap_y' in data:
    emb = np.vstack([np.asarray(data['umap_x']), np.asarray(data['umap_y'])]).T
else:
    names = [n for n in [{cols_py}] if n in data] or [c0 for c0 in data.columns if c0 not in ('run', 'step')][:3]
    features = np.vstack([np.asarray(data[n], dtype=np.float64) for n in names]).T
    emb = tools['umap_embed'](features)
figure = Figure(width=640, height=560)
ax = figure.axes(0)
ax.title = {title!r}
score = np.asarray(data['interestingness']) if 'interestingness' in data else features[:, 0]
order = np.argsort(score)[::-1]
top = order[:{highlight}]
rest = order[{highlight}:]
ax.scatter(emb[rest, 0], emb[rest, 1], label='others', size=2.5)
ax.scatter(emb[top, 0], emb[top, 1], color='#e34948', label='top {highlight}', size=5.0)
ax.set_xlabel('umap-1')
ax.set_ylabel('umap-2')
result = data.assign(umap_x=emb[:, 0], umap_y=emb[:, 1])
"""
    if form == "paraview3d":
        return f"""\
import numpy as np
data = tables['{source}']
figure = tools['paraview_scene'](data, title={title!r})
result = data
"""
    if form == "heatmap":
        return f"""\
import numpy as np
data = tables['{source}']
numeric = [c0 for c0 in data.columns if np.issubdtype(np.asarray(data[c0]).dtype, np.number)]
numeric = [n for n in numeric if np.asarray(data[n], dtype=np.float64).std() > 0] or numeric[:1]
matrix = np.vstack([np.asarray(data[n], dtype=np.float64) for n in numeric])
corr = np.corrcoef(matrix) if matrix.shape[1] > 1 else np.ones((len(numeric), len(numeric)))
figure = Figure(width=560, height=520)
ax = figure.axes(0)
ax.title = {title!r}
ax.heatmap(corr)
result = data
"""
    raise ValueError(f"no viz generator for form {form!r}")
