"""Chat-model interface shared by the mock model and the agents.

Kept deliberately close to hosted chat APIs (list-of-messages in,
completion + usage out) so the agent layer would work unchanged against a
real endpoint.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Protocol

from repro.util.tokens import TokenMeter, count_tokens


@dataclass(frozen=True)
class ChatMessage:
    role: str      # 'system' | 'user' | 'assistant'
    content: str


@dataclass
class ChatResponse:
    content: str
    prompt_tokens: int
    completion_tokens: int
    latency_s: float = 0.0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def json(self) -> dict:
        """Parse the completion as JSON (tolerating a fenced block)."""
        return extract_json(self.content)


class ChatModel(Protocol):
    """Anything that can complete a chat conversation."""

    def chat(self, messages: list[ChatMessage], role: str = "agent") -> ChatResponse:
        """Complete the conversation; ``role`` labels usage accounting."""
        ...


@dataclass
class MeteredModel:
    """Decorator adding shared token accounting to any ChatModel."""

    inner: ChatModel
    meter: TokenMeter = field(default_factory=TokenMeter)

    def chat(self, messages: list[ChatMessage], role: str = "agent") -> ChatResponse:
        response = self.inner.chat(messages, role)
        prompt_text = "\n".join(m.content for m in messages)
        self.meter.record(prompt_text, response.content, role)
        return response


_JSON_FENCE_RE = re.compile(r"```(?:json)?\s*(.*?)```", re.DOTALL)


def extract_json(text: str) -> dict:
    """Pull the first JSON object out of a completion.

    Handles bare JSON, fenced blocks, and leading prose — the same
    tolerant parsing real agent frameworks need.
    """
    candidates = [text]
    fence = _JSON_FENCE_RE.search(text)
    if fence:
        candidates.insert(0, fence.group(1))
    brace = text.find("{")
    if brace >= 0:
        candidates.append(text[brace:])
    for cand in candidates:
        try:
            doc = json.loads(cand)
            if isinstance(doc, dict):
                return doc
        except json.JSONDecodeError:
            continue
    raise ValueError(f"no JSON object found in completion: {text[:200]!r}")


def prompt_tokens_of(messages: list[ChatMessage]) -> int:
    return sum(count_tokens(m.content) for m in messages)
