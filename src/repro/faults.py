"""Deterministic infrastructure fault injection.

:mod:`repro.llm.errors` injects *generation* faults — the model writing
``center_x`` for ``fof_halo_center_x`` — from a dedicated RNG stream so
the paper's QA-loop dynamics reproduce bit-for-bit.  This module extends
the same philosophy to *infrastructure* faults: the HTTP sandbox gateway
dropping a request, a query-cache ``.npy`` entry coming back with a
flipped bit, a checkpoint blob corrupted on disk.  Each named fault point
draws from its own derived RNG stream (:func:`repro.util.rngs.derive_seed`),
so changing how often one component is exercised never perturbs another,
and the same seed + profile yields the identical fault schedule in every
process.

A :class:`FaultProfile` is **off by default**; with every rate at zero,
:meth:`FaultInjector.fire` returns before touching any RNG, and the
ambient lookup (:func:`get_injector`) is one contextvar read — the same
zero-overhead posture as :func:`repro.obs.tracer.get_tracer`.

Every fired fault is counted (``faults.injected`` plus a per-point
counter in :mod:`repro.obs.metrics`) and stamped onto the innermost open
span (``faults`` / ``fault.<point>`` attributes), which is what
``repro trace summary`` and the chaos benchmarks report.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, fields, replace
from typing import Iterator

import numpy as np

from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.util.rngs import derive_seed

# ----------------------------------------------------------------------
# named fault points
# ----------------------------------------------------------------------
SANDBOX_DROP = "sandbox.request.drop"          # connection reset before a reply
SANDBOX_HANG = "sandbox.request.hang"          # request exceeds its deadline
SANDBOX_5XX = "sandbox.response.5xx"           # gateway answers 503
SANDBOX_GARBAGE = "sandbox.response.garbage"   # reply body is not valid JSON
STORAGE_TORN_WRITE = "storage.torn_write"      # publish truncated mid-write
STORAGE_BIT_FLIP = "storage.bit_flip"          # one bit flips on a disk read
CHECKPOINT_CORRUPT = "checkpoint.corrupt"      # checkpoint blob corrupted on disk

# Ingest-path kill faults.  These simulate the *ingester process dying* at
# a precise point of the WAL commit protocol (see repro.db.wal), so unlike
# the fault points above they abort the operation in flight rather than
# degrade it.  They only ever fire inside an armed scope
# (:func:`arm_ingest_kills`) — the query path's data-loading appends share
# the same code but must never host a simulated kill.
WAL_TORN_TAIL = "ingest.wal.torn_tail"             # die mid-WAL-append: torn tail
INGEST_KILL_APPLY = "ingest.kill.apply"            # die before staging row groups
INGEST_PARTIAL_ROW_GROUP = "ingest.partial_row_group"  # die mid-segment: torn .npy
INGEST_KILL_PUBLISH = "ingest.kill.publish"        # die between meta and catalog publish

FAULT_POINTS = (
    SANDBOX_DROP,
    SANDBOX_HANG,
    SANDBOX_5XX,
    SANDBOX_GARBAGE,
    STORAGE_TORN_WRITE,
    STORAGE_BIT_FLIP,
    CHECKPOINT_CORRUPT,
    WAL_TORN_TAIL,
    INGEST_KILL_APPLY,
    INGEST_PARTIAL_ROW_GROUP,
    INGEST_KILL_PUBLISH,
)

INGEST_KILL_POINTS = (
    WAL_TORN_TAIL,
    INGEST_KILL_APPLY,
    INGEST_PARTIAL_ROW_GROUP,
    INGEST_KILL_PUBLISH,
)

ENV_VAR = "REPRO_FAULT_PROFILE"


@dataclass(frozen=True)
class FaultProfile:
    """Per-fault-point firing probabilities (all zero = injection off)."""

    seed: int = 0
    sandbox_drop: float = 0.0
    sandbox_hang: float = 0.0
    sandbox_5xx: float = 0.0
    sandbox_garbage: float = 0.0
    storage_torn_write: float = 0.0
    storage_bit_flip: float = 0.0
    checkpoint_corrupt: float = 0.0
    wal_torn_tail: float = 0.0
    ingest_kill_apply: float = 0.0
    ingest_partial_row_group: float = 0.0
    ingest_kill_publish: float = 0.0

    _FIELD_BY_POINT = {
        SANDBOX_DROP: "sandbox_drop",
        SANDBOX_HANG: "sandbox_hang",
        SANDBOX_5XX: "sandbox_5xx",
        SANDBOX_GARBAGE: "sandbox_garbage",
        STORAGE_TORN_WRITE: "storage_torn_write",
        STORAGE_BIT_FLIP: "storage_bit_flip",
        CHECKPOINT_CORRUPT: "checkpoint_corrupt",
        WAL_TORN_TAIL: "wal_torn_tail",
        INGEST_KILL_APPLY: "ingest_kill_apply",
        INGEST_PARTIAL_ROW_GROUP: "ingest_partial_row_group",
        INGEST_KILL_PUBLISH: "ingest_kill_publish",
    }

    def rate(self, point: str) -> float:
        field = self._FIELD_BY_POINT.get(point)
        if field is None:
            raise KeyError(f"unknown fault point {point!r} (known: {FAULT_POINTS})")
        return float(getattr(self, field))

    @property
    def enabled(self) -> bool:
        return any(self.rate(p) > 0.0 for p in FAULT_POINTS)

    def with_rates(self, **kwargs: float) -> "FaultProfile":
        return replace(self, **kwargs)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    # -- construction ---------------------------------------------------
    @classmethod
    def named(cls, name: str, seed: int = 0) -> "FaultProfile":
        """The ``off`` / ``light`` / ``heavy`` presets of ``--chaos``."""
        name = (name or "off").strip().lower()
        if name in ("off", "none", ""):
            return cls(seed=seed)
        if name == "light":
            return cls(
                seed=seed,
                sandbox_drop=0.05,
                sandbox_5xx=0.05,
                sandbox_garbage=0.03,
                storage_torn_write=0.05,
                storage_bit_flip=0.05,
                checkpoint_corrupt=0.05,
                wal_torn_tail=0.05,
                ingest_kill_apply=0.05,
                ingest_partial_row_group=0.05,
                ingest_kill_publish=0.05,
            )
        if name == "heavy":
            return cls(
                seed=seed,
                sandbox_drop=0.25,
                sandbox_hang=0.10,
                sandbox_5xx=0.25,
                sandbox_garbage=0.15,
                storage_torn_write=0.30,
                storage_bit_flip=0.30,
                checkpoint_corrupt=0.30,
                wal_torn_tail=0.25,
                ingest_kill_apply=0.20,
                ingest_partial_row_group=0.20,
                ingest_kill_publish=0.25,
            )
        raise ValueError(f"unknown fault profile {name!r} (off/light/heavy)")

    @classmethod
    def from_env(cls, environ=None, seed: int = 0) -> "FaultProfile":
        """Resolve ``REPRO_FAULT_PROFILE``: a preset name or a JSON rate map.

        Unset or unparseable values degrade to the off profile — the env
        hook must never be able to break a production run.
        """
        value = (environ if environ is not None else os.environ).get(ENV_VAR, "")
        value = value.strip()
        if not value:
            return cls(seed=seed)
        if value.startswith("{"):
            try:
                rates = {
                    k: float(v)
                    for k, v in json.loads(value).items()
                    if k in {f.name for f in fields(cls)}
                }
            except (json.JSONDecodeError, TypeError, ValueError):
                return cls(seed=seed)
            return cls(seed=seed).with_rates(**rates)
        try:
            return cls.named(value, seed=seed)
        except ValueError:
            return cls(seed=seed)


NO_FAULTS = FaultProfile()
LIGHT_CHAOS = FaultProfile.named("light")
HEAVY_CHAOS = FaultProfile.named("heavy")


# ----------------------------------------------------------------------
# the injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Seeded decision engine over a profile's fault points.

    One lazily created ``numpy`` Generator per fault point, derived from
    ``(profile.seed, "fault", point)`` — the counter-based substream
    pattern the simulator and :class:`repro.llm.errors.ErrorModel` use —
    so two injectors with the same profile fire identically, and the
    schedule at one point is independent of traffic at every other.
    """

    def __init__(self, profile: FaultProfile | None = None):
        self.profile = profile or NO_FAULTS
        self._streams: dict[str, np.random.Generator] = {}
        self.injected: dict[str, int] = {}

    def _stream(self, point: str) -> np.random.Generator:
        stream = self._streams.get(point)
        if stream is None:
            stream = self._streams[point] = np.random.default_rng(
                derive_seed(self.profile.seed, "fault", point)
            )
        return stream

    @property
    def enabled(self) -> bool:
        return self.profile.enabled

    def fire(self, point: str) -> bool:
        """Should this fault point fire now?  Counts and stamps if so."""
        rate = self.profile.rate(point)
        if rate <= 0.0:
            return False
        if not (rate >= 1.0 or self._stream(point).uniform() < rate):
            return False
        self.injected[point] = self.injected.get(point, 0) + 1
        registry = get_registry()
        registry.counter("faults.injected").inc()
        registry.counter(f"faults.{point}").inc()
        span = get_tracer().current()
        if span is not None:
            attrs = span.attributes
            attrs["faults"] = int(attrs.get("faults", 0)) + 1
            attrs[f"fault.{point}"] = int(attrs.get(f"fault.{point}", 0)) + 1
        return True

    # -- payload corruption helpers ------------------------------------
    def flip_bit(self, point: str, data: bytes) -> bytes:
        """Deterministically flip one bit of ``data`` (non-empty input)."""
        if not data:
            return data
        stream = self._stream(point)
        pos = int(stream.integers(0, len(data)))
        bit = int(stream.integers(0, 8))
        out = bytearray(data)
        out[pos] ^= 1 << bit
        return bytes(out)

    def truncate(self, point: str, data: bytes) -> bytes:
        """Deterministically truncate ``data`` (a torn write's surviving
        prefix: at least one byte shorter, possibly empty)."""
        if not data:
            return data
        keep = int(self._stream(point).integers(0, len(data)))
        return data[:keep]

    def schedule(self) -> dict[str, int]:
        """Copy of the per-point injection counts so far."""
        return dict(self.injected)


# ----------------------------------------------------------------------
# the ambient injector, mirroring repro.obs.tracer's ambient tracer
# ----------------------------------------------------------------------
NULL_INJECTOR = FaultInjector(NO_FAULTS)

_ACTIVE: ContextVar[FaultInjector | None] = ContextVar("repro_fault_injector", default=None)


def get_injector() -> FaultInjector:
    """The active injector of the calling context, or the inert default."""
    return _ACTIVE.get() or NULL_INJECTOR


@contextmanager
def use_faults(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Activate ``injector`` for the dynamic extent of the block."""
    token = _ACTIVE.set(injector)
    try:
        yield injector
    finally:
        _ACTIVE.reset(token)


# ----------------------------------------------------------------------
# ingest kill-fault arming
# ----------------------------------------------------------------------
# The WAL commit protocol (repro.db.wal / repro.db.database) is shared by
# every append in the system, including the query path's data-loading
# appends.  Kill-style ingest faults must only strike the *live ingester*
# — a query session dying because the chaos profile shot the loader would
# prove nothing and fail everything — so the commit protocol consults
# :func:`ingest_kills_armed` before firing any INGEST_KILL_POINTS, and
# only :class:`repro.db.ingest.StreamingIngester` (and targeted tests)
# arm the scope.
_INGEST_ARMED: ContextVar[bool] = ContextVar("repro_ingest_kills_armed", default=False)


def ingest_kills_armed() -> bool:
    """Whether simulated ingester kills may fire in the calling context."""
    return _INGEST_ARMED.get()


@contextmanager
def arm_ingest_kills() -> Iterator[None]:
    """Allow INGEST_KILL_POINTS to fire for the dynamic extent of the block."""
    token = _INGEST_ARMED.set(True)
    try:
        yield
    finally:
        _INGEST_ARMED.reset(token)


def fire_ingest_kill(point: str) -> bool:
    """Fire an ingest kill point iff the scope is armed (else always False)."""
    if not _INGEST_ARMED.get():
        return False
    return get_injector().fire(point)
