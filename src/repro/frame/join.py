"""Hash-free vectorized joins for Frame.

Implemented with sort-merge over dense key codes (``np.unique`` on the
concatenated key columns), the cache-friendly pattern the HPC guide
recommends over per-row dict probing.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.frame.frame import Frame


def _key_codes(left: Frame, right: Frame, on: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Densely encode the join keys of both frames in a shared code space."""
    lcodes = np.zeros(left.num_rows, dtype=np.int64)
    rcodes = np.zeros(right.num_rows, dtype=np.int64)
    multiplier = 1
    for name in on:
        lcol = left.column(name)
        rcol = right.column(name)
        combined = np.concatenate((lcol, rcol))
        _, inverse = np.unique(combined, return_inverse=True)
        linv, rinv = inverse[: left.num_rows], inverse[left.num_rows :]
        lcodes = lcodes + linv * multiplier
        rcodes = rcodes + rinv * multiplier
        multiplier *= int(inverse.max(initial=0)) + 1
    return lcodes, rcodes


def merge(left: Frame, right: Frame, on: str | Sequence[str], how: str = "inner") -> Frame:
    """Join two frames on equal key columns.

    Supports ``inner`` and ``left`` joins, which covers the agent workloads
    (galaxy↔halo association via ``fof_halo_tag`` etc.).  Non-key columns
    duplicated across inputs get a ``_right`` suffix on the right side.
    """
    keys = [on] if isinstance(on, str) else list(on)
    if how not in ("inner", "left"):
        raise ValueError(f"unsupported join type {how!r}")
    for k in keys:
        left.column(k)
        right.column(k)

    lcodes, rcodes = _key_codes(left, right, keys)

    r_order = np.argsort(rcodes, kind="stable")
    r_sorted = rcodes[r_order]
    # positions of each left key inside the sorted right codes
    lo = np.searchsorted(r_sorted, lcodes, side="left")
    hi = np.searchsorted(r_sorted, lcodes, side="right")
    match_counts = hi - lo

    matched = match_counts > 0
    if how == "inner":
        keep = matched
    else:
        keep = np.ones(left.num_rows, dtype=bool)

    out_counts = np.where(matched, match_counts, 1 if how == "left" else 0)[keep]
    left_idx = np.repeat(np.flatnonzero(keep), out_counts)

    # right row index per output row; -1 marks a left-join miss
    right_idx = np.full(int(out_counts.sum()), -1, dtype=np.int64)
    write = 0
    kept_rows = np.flatnonzero(keep)
    for row, count in zip(kept_rows, out_counts):
        if match_counts[row] > 0:
            right_idx[write : write + count] = r_order[lo[row] : hi[row]]
        write += count

    cols: dict[str, np.ndarray] = {}
    for name in left.columns:
        cols[name] = left.column(name)[left_idx]
    for name in right.columns:
        if name in keys:
            continue
        out_name = name if name not in cols else f"{name}_right"
        rcol = right.column(name)
        if how == "left" and (right_idx < 0).any():
            taken = rcol[np.maximum(right_idx, 0)].astype(np.float64, copy=True)
            taken[right_idx < 0] = np.nan
            cols[out_name] = taken
        else:
            cols[out_name] = rcol[right_idx]
    return Frame(cols)
