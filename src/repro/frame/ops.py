"""Frame-level utilities: concatenation and summary statistics."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.frame.frame import Frame


def concat(frames: Sequence[Frame]) -> Frame:
    """Row-wise concatenation of frames sharing the same column set.

    Column order follows the first frame; extra/missing columns raise, as
    silent NaN-filling would hide agent bugs the QA loop needs to see.
    """
    frames = [f for f in frames if f.num_columns > 0]
    if not frames:
        return Frame()
    names = frames[0].columns
    for f in frames[1:]:
        if set(f.columns) != set(names):
            raise ValueError(
                f"cannot concat frames with differing columns: {names} vs {f.columns}"
            )
    return Frame({n: np.concatenate([f.column(n) for f in frames]) for n in names})


def describe(frame: Frame) -> Frame:
    """Per-numeric-column summary (count/mean/std/min/max) as a Frame."""
    stats: dict[str, list] = {"column": [], "count": [], "mean": [], "std": [], "min": [], "max": []}
    for name in frame.columns:
        col = frame.column(name)
        if not np.issubdtype(col.dtype, np.number):
            continue
        stats["column"].append(name)
        stats["count"].append(len(col))
        stats["mean"].append(float(np.mean(col)) if len(col) else float("nan"))
        stats["std"].append(float(np.std(col, ddof=1)) if len(col) > 1 else 0.0)
        stats["min"].append(float(np.min(col)) if len(col) else float("nan"))
        stats["max"].append(float(np.max(col)) if len(col) else float("nan"))
    return Frame({k: np.asarray(v) for k, v in stats.items()})
