"""Core columnar Frame.

A :class:`Frame` is an ordered mapping of column name to equal-length 1-D
NumPy array.  All operations return new Frames over views or copies of the
column arrays; the source arrays are never mutated in place, which is what
lets the sandbox hand agents "temporary data copies" cheaply (views) while
still guaranteeing ground-truth integrity.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Callable

import numpy as np


class ColumnMismatchError(KeyError):
    """Raised when code references a column that does not exist.

    Carries the known column names so the sandbox can return the paper's
    "detailed error message" and the QA loop can propose the nearest valid
    name.
    """

    def __init__(self, missing: str, known: Sequence[str]):
        super().__init__(missing)
        self.missing = missing
        self.known = list(known)

    def __str__(self) -> str:
        return (
            f"column {self.missing!r} does not exist; "
            f"known columns: {', '.join(self.known)}"
        )


def _as_column(values: Any, length: int | None = None) -> np.ndarray:
    """Coerce ``values`` into a 1-D column array (broadcasting scalars)."""
    if isinstance(values, np.ndarray):
        arr = values
    elif np.isscalar(values) or values is None:
        if length is None:
            raise ValueError("cannot infer length for a scalar column")
        arr = np.full(length, values)
    else:
        arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"columns must be 1-D, got shape {arr.shape}")
    if length is not None and len(arr) != length:
        raise ValueError(f"column length {len(arr)} != frame length {length}")
    return arr


class Frame:
    """An immutable-by-convention columnar table.

    >>> f = Frame({"a": [1, 2, 3], "b": [10.0, 20.0, 30.0]})
    >>> f[f["a"] > 1].num_rows
    2
    """

    def __init__(self, columns: Mapping[str, Any] | None = None):
        self._cols: dict[str, np.ndarray] = {}
        if columns:
            length: int | None = None
            for name in columns:
                vals = columns[name]
                if length is None and not np.isscalar(vals) and vals is not None:
                    vals = _as_column(vals)
                    length = len(vals)
                self._cols[str(name)] = _as_column(vals, length)
                if length is None:
                    length = len(self._cols[str(name)])

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        return list(self._cols)

    @property
    def num_rows(self) -> int:
        if not self._cols:
            return 0
        return len(next(iter(self._cols.values())))

    @property
    def num_columns(self) -> int:
        return len(self._cols)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_columns)

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def __iter__(self) -> Iterable[str]:
        return iter(self._cols)

    def nbytes(self) -> int:
        """Total bytes held by the column arrays (storage accounting)."""
        return int(sum(col.nbytes for col in self._cols.values()))

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        try:
            return self._cols[name]
        except KeyError:
            raise ColumnMismatchError(name, self.columns) from None

    def __getitem__(self, key: Any) -> Any:
        if isinstance(key, str):
            return self.column(key)
        if isinstance(key, list) and all(isinstance(k, str) for k in key):
            return self.select(key)
        if isinstance(key, np.ndarray):
            if key.dtype == bool:
                return self.filter(key)
            return self.take(key)
        if isinstance(key, slice):
            return Frame({n: c[key] for n, c in self._cols.items()})
        raise TypeError(f"unsupported Frame index: {type(key).__name__}")

    def select(self, names: Sequence[str]) -> "Frame":
        """Project the named columns, preserving the given order."""
        return Frame({n: self.column(n) for n in names})

    def row(self, i: int) -> dict[str, Any]:
        """Materialize one row as a plain dict (debug/provenance use)."""
        return {n: c[i].item() if hasattr(c[i], "item") else c[i] for n, c in self._cols.items()}

    def to_dict(self) -> dict[str, list]:
        """Convert to plain Python lists (for JSON provenance records)."""
        return {n: c.tolist() for n, c in self._cols.items()}

    # ------------------------------------------------------------------
    # construction / mutation-by-copy
    # ------------------------------------------------------------------
    def assign(self, **new_columns: Any) -> "Frame":
        """Return a new Frame with columns added or replaced."""
        cols = dict(self._cols)
        n = self.num_rows if cols else None
        for name, vals in new_columns.items():
            cols[name] = _as_column(vals, n)
            if n is None:
                n = len(cols[name])
        return Frame(cols)

    def drop(self, names: str | Sequence[str]) -> "Frame":
        if isinstance(names, str):
            names = [names]
        missing = [n for n in names if n not in self._cols]
        if missing:
            raise ColumnMismatchError(missing[0], self.columns)
        return Frame({n: c for n, c in self._cols.items() if n not in set(names)})

    def rename(self, mapping: Mapping[str, str]) -> "Frame":
        return Frame({mapping.get(n, n): c for n, c in self._cols.items()})

    # ------------------------------------------------------------------
    # row operations (all vectorized)
    # ------------------------------------------------------------------
    def filter(self, mask: np.ndarray) -> "Frame":
        mask = np.asarray(mask)
        if mask.dtype != bool:
            raise TypeError("filter mask must be boolean")
        if len(mask) != self.num_rows:
            raise ValueError("mask length does not match frame length")
        return Frame({n: c[mask] for n, c in self._cols.items()})

    def take(self, indices: np.ndarray) -> "Frame":
        indices = np.asarray(indices)
        return Frame({n: c[indices] for n, c in self._cols.items()})

    def head(self, n: int = 5) -> "Frame":
        return self[: max(0, n)]

    def sort_values(self, by: str | Sequence[str], ascending: bool | Sequence[bool] = True) -> "Frame":
        """Stable multi-key sort."""
        keys = [by] if isinstance(by, str) else list(by)
        orders = [ascending] * len(keys) if isinstance(ascending, bool) else list(ascending)
        if len(orders) != len(keys):
            raise ValueError("ascending list must match sort keys")
        idx = np.arange(self.num_rows)
        # apply keys last-to-first with a stable sort => lexicographic order
        for key, asc in list(zip(keys, orders))[::-1]:
            col = self.column(key)[idx]
            order = np.argsort(col, kind="stable")
            if not asc:
                order = order[::-1]
                # keep stability for equal keys under descending order
                col_sorted = col[order]
                # reverse ties back to original relative order
                boundaries = np.flatnonzero(col_sorted[1:] != col_sorted[:-1]) + 1
                segments = np.split(order, boundaries)
                order = np.concatenate([seg[::-1] for seg in segments]) if segments else order
            idx = idx[order]
        return self.take(idx)

    def nlargest(self, n: int, column: str) -> "Frame":
        """Top-n rows by ``column`` (descending)."""
        col = self.column(column)
        if n >= len(col):
            return self.sort_values(column, ascending=False)
        part = np.argpartition(col, len(col) - n)[len(col) - n :]
        part = part[np.argsort(col[part], kind="stable")[::-1]]
        return self.take(part)

    def nsmallest(self, n: int, column: str) -> "Frame":
        col = self.column(column)
        if n >= len(col):
            return self.sort_values(column, ascending=True)
        part = np.argpartition(col, n)[:n]
        part = part[np.argsort(col[part], kind="stable")]
        return self.take(part)

    def unique(self, column: str) -> np.ndarray:
        return np.unique(self.column(column))

    def value_counts(self, column: str) -> "Frame":
        """Distinct values of ``column`` with their frequencies, most
        frequent first (ties broken by value order)."""
        values, counts = np.unique(self.column(column), return_counts=True)
        order = np.argsort(counts, kind="stable")[::-1]
        return Frame({column: values[order], "count": counts[order]})

    def quantile(self, column: str, q: float | Sequence[float]) -> float | np.ndarray:
        """Quantile(s) of a numeric column (linear interpolation)."""
        col = self.column(column)
        if not np.issubdtype(col.dtype, np.number):
            raise TypeError(f"quantile requires a numeric column, got {col.dtype}")
        result = np.quantile(col.astype(np.float64), q)
        return float(result) if np.isscalar(q) else np.asarray(result)

    def drop_duplicates(self, subset: str | Sequence[str] | None = None) -> "Frame":
        names = [subset] if isinstance(subset, str) else list(subset or self.columns)
        if not names:
            return self
        key = _row_group_codes(self, names)
        _, first = np.unique(key, return_index=True)
        return self.take(np.sort(first))

    def dropna(self, subset: Sequence[str] | None = None) -> "Frame":
        """Drop rows with NaN in any of the (float) subset columns."""
        names = list(subset or self.columns)
        mask = np.ones(self.num_rows, dtype=bool)
        for n in names:
            col = self.column(n)
            if np.issubdtype(col.dtype, np.floating):
                mask &= ~np.isnan(col)
        return self.filter(mask)

    # ------------------------------------------------------------------
    # reductions and grouping
    # ------------------------------------------------------------------
    def groupby(self, by: str | Sequence[str]) -> "GroupBy":
        from repro.frame.groupby import GroupBy

        keys = [by] if isinstance(by, str) else list(by)
        for k in keys:
            self.column(k)  # validate early with a good error
        return GroupBy(self, keys)

    def agg(self, spec: Mapping[str, str | Callable]) -> dict[str, Any]:
        """Whole-frame aggregation: ``{"mass": "mean"}`` -> scalar dict."""
        from repro.frame.groupby import apply_agg

        return {c: apply_agg(self.column(c), how) for c, how in spec.items()}

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def merge(self, other: "Frame", on: str | Sequence[str], how: str = "inner") -> "Frame":
        from repro.frame.join import merge as _merge

        return _merge(self, other, on=on, how=how)

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        header = f"Frame[{self.num_rows} rows x {self.num_columns} cols]"
        if not self._cols or self.num_rows == 0:
            return header + " (empty)"
        preview_rows = min(5, self.num_rows)
        lines = [header, "  " + " | ".join(self.columns)]
        for i in range(preview_rows):
            lines.append("  " + " | ".join(str(c[i]) for c in self._cols.values()))
        if self.num_rows > preview_rows:
            lines.append(f"  ... ({self.num_rows - preview_rows} more rows)")
        return "\n".join(lines)

    def equals(self, other: "Frame") -> bool:
        if self.columns != other.columns or self.num_rows != other.num_rows:
            return False
        for n in self.columns:
            a, b = self._cols[n], other._cols[n]
            if np.issubdtype(a.dtype, np.floating) and np.issubdtype(b.dtype, np.floating):
                if not np.allclose(a, b, equal_nan=True):
                    return False
            elif not np.array_equal(a, b):
                return False
        return True


def _row_group_codes(frame: Frame, names: Sequence[str]) -> np.ndarray:
    """Encode rows by the named key columns into dense integer group codes."""
    codes = np.zeros(frame.num_rows, dtype=np.int64)
    multiplier = 1
    for name in names:
        col = frame.column(name)
        _, inverse = np.unique(col, return_inverse=True)
        codes = codes + inverse * multiplier
        multiplier *= int(inverse.max(initial=0)) + 1
    return codes
