"""Vectorized groupby-aggregate for Frame.

Group codes are built with ``np.unique(return_inverse=True)`` and every
aggregate is computed with ``np.bincount``/sorted-segment reductions — no
per-group Python loops, per the HPC guide's vectorization idiom.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any, Callable

import numpy as np

from repro.frame.frame import Frame

_SEGMENT_AGGS = {"min", "max", "first", "last", "median", "std", "var"}


def apply_agg(values: np.ndarray, how: str | Callable) -> Any:
    """Apply a whole-column aggregate by name or callable."""
    if callable(how):
        return how(values)
    name = how.lower()
    if name == "mean":
        return float(np.mean(values))
    if name == "sum":
        return values.sum()
    if name == "min":
        return values.min()
    if name == "max":
        return values.max()
    if name == "count":
        return int(len(values))
    if name == "median":
        return float(np.median(values))
    if name == "std":
        return float(np.std(values, ddof=1)) if len(values) > 1 else 0.0
    if name == "var":
        return float(np.var(values, ddof=1)) if len(values) > 1 else 0.0
    if name == "first":
        return values[0]
    if name == "last":
        return values[-1]
    raise ValueError(f"unknown aggregate {how!r}")


class GroupBy:
    """Lazy groupby handle: ``frame.groupby("run").agg({"mass": "mean"})``."""

    def __init__(self, frame: Frame, keys: Sequence[str]):
        self._frame = frame
        self._keys = list(keys)
        self._codes, self._key_rows = self._build_codes()

    def _build_codes(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (group code per row, representative row index per group)."""
        n = self._frame.num_rows
        if n == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        # mixed-radix encode the key tuple, then re-densify
        codes = np.zeros(n, dtype=np.int64)
        multiplier = 1
        for name in self._keys:
            _, inverse = np.unique(self._frame.column(name), return_inverse=True)
            codes = codes + inverse * multiplier
            multiplier *= int(inverse.max(initial=0)) + 1
        uniq, first_rows, dense = np.unique(codes, return_index=True, return_inverse=True)
        del uniq
        return dense.astype(np.int64), first_rows

    @property
    def num_groups(self) -> int:
        return len(self._key_rows)

    def size(self) -> Frame:
        """Group sizes as a Frame with the key columns plus ``size``."""
        counts = np.bincount(self._codes, minlength=self.num_groups)
        return self._with_keys({"size": counts})

    def agg(self, spec: Mapping[str, str | Callable] | str) -> Frame:
        """Aggregate value columns per group.

        ``spec`` maps column name to aggregate name (or callable applied to
        each group's values).  A bare string aggregates every non-key
        numeric column that way.
        """
        if isinstance(spec, str):
            spec = {
                c: spec
                for c in self._frame.columns
                if c not in self._keys
                and np.issubdtype(self._frame.column(c).dtype, np.number)
            }
        out: dict[str, np.ndarray] = {}
        for col_name, how in spec.items():
            values = self._frame.column(col_name)
            out_name = col_name if not isinstance(how, str) else f"{col_name}_{how}"
            out[out_name] = self._aggregate_column(values, how)
        return self._with_keys(out)

    def apply(self, fn: Callable[[Frame], Mapping[str, Any]]) -> Frame:
        """Apply an arbitrary Frame -> scalars function per group.

        The escape hatch for aggregates with no vectorized form (e.g. the
        per-seed-mass SMHM regression in the hard evaluation question).
        """
        order = np.argsort(self._codes, kind="stable")
        sorted_codes = self._codes[order]
        boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
        rows_per_group = np.split(order, boundaries)
        records: dict[str, list] = {}
        for rows in rows_per_group:
            result = fn(self._frame.take(rows))
            for k, v in result.items():
                records.setdefault(k, []).append(v)
        out = {k: np.asarray(v) for k, v in records.items()}
        return self._with_keys(out)

    def _aggregate_column(self, values: np.ndarray, how: str | Callable) -> np.ndarray:
        ng = self.num_groups
        counts = np.bincount(self._codes, minlength=ng)
        if callable(how):
            return self._segment_apply(values, how)
        name = how.lower()
        if name == "count":
            return counts
        if name == "sum":
            return np.bincount(self._codes, weights=values.astype(np.float64), minlength=ng)
        if name == "mean":
            sums = np.bincount(self._codes, weights=values.astype(np.float64), minlength=ng)
            return sums / np.maximum(counts, 1)
        if name in _SEGMENT_AGGS:
            return self._segment_reduce(values, name)
        raise ValueError(f"unknown aggregate {how!r}")

    def _sorted_segments(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        order = np.argsort(self._codes, kind="stable")
        sorted_vals = values[order]
        sorted_codes = self._codes[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_codes[1:] != sorted_codes[:-1]))
        )
        return sorted_vals, starts

    def _segment_reduce(self, values: np.ndarray, name: str) -> np.ndarray:
        sorted_vals, starts = self._sorted_segments(values)
        ends = np.concatenate((starts[1:], [len(sorted_vals)]))
        if name == "min":
            return np.minimum.reduceat(sorted_vals, starts)
        if name == "max":
            return np.maximum.reduceat(sorted_vals, starts)
        if name == "first":
            return sorted_vals[starts]
        if name == "last":
            return sorted_vals[ends - 1]
        # median/std/var need per-segment slices; still O(n log n) overall
        segs = np.split(sorted_vals, starts[1:])
        if name == "median":
            return np.asarray([float(np.median(s)) for s in segs])
        if name == "std":
            return np.asarray([float(np.std(s, ddof=1)) if len(s) > 1 else 0.0 for s in segs])
        if name == "var":
            return np.asarray([float(np.var(s, ddof=1)) if len(s) > 1 else 0.0 for s in segs])
        raise ValueError(f"unknown segment aggregate {name!r}")

    def _segment_apply(self, values: np.ndarray, fn: Callable) -> np.ndarray:
        sorted_vals, starts = self._sorted_segments(values)
        segs = np.split(sorted_vals, starts[1:])
        return np.asarray([fn(s) for s in segs])

    def _with_keys(self, data: dict[str, np.ndarray]) -> Frame:
        cols: dict[str, np.ndarray] = {
            k: self._frame.column(k)[self._key_rows] for k in self._keys
        }
        cols.update(data)
        return Frame(cols)
