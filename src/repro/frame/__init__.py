"""A columnar DataFrame substrate (pandas substitute).

Agent-generated analysis code runs against :class:`Frame`, which mirrors the
pandas subset the paper's Python agent uses: boolean filtering, column
expressions, groupby-aggregate, sort, merge, head/nlargest, and CSV I/O.
Columns are 1-D NumPy arrays, operations are vectorized, and row-wise
Python loops are never required.
"""

from repro.frame.frame import Frame, ColumnMismatchError
from repro.frame.groupby import GroupBy
from repro.frame.join import merge
from repro.frame.io import read_csv, write_csv
from repro.frame.ops import concat, describe

__all__ = [
    "Frame",
    "ColumnMismatchError",
    "GroupBy",
    "merge",
    "read_csv",
    "write_csv",
    "concat",
    "describe",
]
