"""CSV serialization for Frame.

The provenance tracker records every intermediate result as CSV exactly as
the paper describes ("systematically recording all intermediate CSV
files"), so round-tripping through this module must be lossless for the
dtypes the pipeline produces (ints, floats, strings).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import numpy as np

from repro.frame.frame import Frame


def write_csv(frame: Frame, path: str | Path) -> int:
    """Write ``frame`` to ``path``; returns the byte size written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(frame.columns)
    cols = [frame.column(n) for n in frame.columns]
    for i in range(frame.num_rows):
        writer.writerow([_render(col[i]) for col in cols])
    data = buf.getvalue().encode("utf-8")
    path.write_bytes(data)
    return len(data)


def _render(value) -> str:
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    if isinstance(value, (np.integer, int)):
        return str(int(value))
    if isinstance(value, (np.bool_, bool)):
        return "true" if value else "false"
    return str(value)


def read_csv(path: str | Path) -> Frame:
    """Read a CSV written by :func:`write_csv`, inferring column dtypes."""
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            return Frame()
        rows = list(reader)
    columns: dict[str, np.ndarray] = {}
    for j, name in enumerate(header):
        raw = [row[j] for row in rows]
        columns[name] = _infer_column(raw)
    return Frame(columns)


def _infer_column(raw: list[str]) -> np.ndarray:
    if not raw:
        return np.asarray([], dtype=np.float64)
    if all(v in ("true", "false") for v in raw):
        return np.asarray([v == "true" for v in raw])
    try:
        return np.asarray([int(v) for v in raw], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.asarray([float(v) for v in raw], dtype=np.float64)
    except ValueError:
        pass
    return np.asarray(raw, dtype=object)
