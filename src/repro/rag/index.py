"""In-memory vector index over documents."""

from __future__ import annotations

import numpy as np

from repro.llm.embeddings import HashedEmbedder
from repro.rag.cache import QUERY_MEMO_MAX, memoized_query_embedding  # noqa: F401
from repro.rag.documents import ColumnDocument


class VectorIndex:
    """Embeds documents once; answers cosine-similarity queries.

    ``matrix`` lets callers inject a precomputed (possibly memory-mapped)
    embedding matrix — see :mod:`repro.rag.cache` — instead of paying the
    per-instance ``embed_batch`` over the whole corpus.  Query embeddings
    are memoized per index, so repeated prompts within one run embed once.
    """

    def __init__(
        self,
        documents: list[ColumnDocument],
        embedder: HashedEmbedder | None = None,
        matrix: np.ndarray | None = None,
    ):
        self.documents = list(documents)
        self.embedder = embedder or HashedEmbedder()
        if matrix is not None:
            if matrix.shape != (len(self.documents), self.embedder.dim):
                raise ValueError(
                    f"matrix shape {matrix.shape} does not match "
                    f"({len(self.documents)}, {self.embedder.dim})"
                )
            self._matrix = matrix
        else:
            self._matrix = self.embedder.embed_batch([d.text for d in self.documents])
    def __len__(self) -> int:
        return len(self.documents)

    def embed_query(self, query: str) -> np.ndarray:
        """Memoized query embedding (shared bounded LRU, see repro.rag.cache)."""
        return memoized_query_embedding(self.embedder, query)

    def similarities(self, query: str) -> np.ndarray:
        """Cosine similarity of every document to ``query``."""
        if not self.documents:
            return np.zeros(0)
        q = self.embed_query(query)
        return self._matrix @ q

    def search(self, query: str, k: int = 20) -> list[tuple[ColumnDocument, float]]:
        """Plain top-k by similarity (no diversity re-ranking)."""
        sims = self.similarities(query)
        order = np.argsort(sims)[::-1][:k]
        return [(self.documents[i], float(sims[i])) for i in order]

    def embedding_matrix(self) -> np.ndarray:
        return self._matrix
