"""In-memory vector index over documents."""

from __future__ import annotations

import numpy as np

from repro.llm.embeddings import HashedEmbedder
from repro.rag.documents import ColumnDocument


class VectorIndex:
    """Embeds documents once; answers cosine-similarity queries."""

    def __init__(self, documents: list[ColumnDocument], embedder: HashedEmbedder | None = None):
        self.documents = list(documents)
        self.embedder = embedder or HashedEmbedder()
        self._matrix = self.embedder.embed_batch([d.text for d in self.documents])

    def __len__(self) -> int:
        return len(self.documents)

    def similarities(self, query: str) -> np.ndarray:
        """Cosine similarity of every document to ``query``."""
        if not self.documents:
            return np.zeros(0)
        q = self.embedder.embed(query)
        return self._matrix @ q

    def search(self, query: str, k: int = 20) -> list[tuple[ColumnDocument, float]]:
        """Plain top-k by similarity (no diversity re-ranking)."""
        sims = self.similarities(query)
        order = np.argsort(sims)[::-1][:k]
        return [(self.documents[i], float(sims[i])) for i in order]

    def embedding_matrix(self) -> np.ndarray:
        return self._matrix
