"""Retrieval-augmented metadata context (§3.1 of the paper).

Two LLM-generatable, expert-refined dictionaries — ensemble file structure
and column-label descriptions — are chunked into fine-grained documents of
at most 80 tokens each (one per column label, never merged), embedded, and
retrieved with maximum marginal relevance.  Retrieval fans out over four
prompts (user query, assigned task, full plan, and an "[IMPORTANT]"
prompt boosting expert-tagged columns), top 20 each, up to 80 documents.
"""

from repro.rag.cache import CacheStats, RetrievalArtifactCache, corpus_key
from repro.rag.documents import ColumnDocument, build_documents, chunk_text
from repro.rag.index import VectorIndex
from repro.rag.mmr import mmr_select
from repro.rag.retriever import ColumnRetriever, RetrievalResult

__all__ = [
    "CacheStats",
    "ColumnDocument",
    "RetrievalArtifactCache",
    "build_documents",
    "chunk_text",
    "corpus_key",
    "VectorIndex",
    "mmr_select",
    "ColumnRetriever",
    "RetrievalResult",
]
