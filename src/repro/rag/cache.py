"""Shared retrieval-artifact cache.

The column-description corpus is fixed per ensemble manifest and the
:class:`~repro.llm.embeddings.HashedEmbedder` is deterministic, so the
``VectorIndex`` embedding matrix is a pure function of (corpus text,
embedder geometry).  Re-embedding it for every query — as every
evaluation run used to do — is redundant work on the hottest end-to-end
path in the repo.

This module builds the matrix once per (corpus-content-hash, embedder
key), persists it as ``<key>.npy`` plus a JSON sidecar under a cache
directory, and serves it back memory-mapped so that concurrent harness
worker processes share one on-disk copy instead of each materializing
hundreds of column embeddings.  Three tiers:

1. in-process memo (dict, exact same object back);
2. on-disk ``.npy`` opened with ``mmap_mode='r'`` (validated against the
   sidecar's fingerprint and shape);
3. cold build via ``embedder.embed_batch`` followed by an atomic
   write-then-rename publish, so racing processes never observe a
   half-written artifact.

All tiers are counted in process-local :class:`CacheStats`; the
evaluation harness snapshots them around each run and merges the deltas
into its result, which is how the hit/miss counters in
``HarnessResult.perf`` are produced.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, fields
from pathlib import Path

import numpy as np

from repro.llm.embeddings import HashedEmbedder

SIDECAR_SUFFIX = ".json"
MATRIX_SUFFIX = ".npy"


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Process-local counters for every cache tier (mergeable)."""

    memory_hits: int = 0
    disk_hits: int = 0
    builds: int = 0                  # cold misses: full corpus re-embeds
    query_memo_hits: int = 0
    query_memo_misses: int = 0

    @property
    def matrix_hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def matrix_requests(self) -> int:
        return self.memory_hits + self.disk_hits + self.builds

    def merge(self, other: "CacheStats") -> "CacheStats":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            **{f.name: getattr(self, f.name) - getattr(earlier, f.name) for f in fields(self)}
        )

    def copy(self) -> "CacheStats":
        return CacheStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


GLOBAL_STATS = CacheStats()

# in-process matrix memo: key -> ndarray (tier 1)
_MATRIX_MEMO: dict[str, np.ndarray] = {}


def stats_snapshot() -> CacheStats:
    """Copy of the process-wide counters (subtract later with ``delta``)."""
    return GLOBAL_STATS.copy()


def clear_memory_cache() -> None:
    """Drop the in-process matrix memo (tests use this to force disk reads)."""
    _MATRIX_MEMO.clear()


def record_query_memo(hit: bool) -> None:
    """Called by ``VectorIndex`` for every query-embedding lookup."""
    if hit:
        GLOBAL_STATS.query_memo_hits += 1
    else:
        GLOBAL_STATS.query_memo_misses += 1


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
def corpus_key(texts: list[str], embedder_key: str) -> str:
    """Content hash of the ordered corpus texts under one embedder geometry.

    Equivalent to hashing the manifest's metadata dictionaries (the corpus
    is built deterministically from them) but robust to any upstream
    change in document construction.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(embedder_key.encode())
    for text in texts:
        h.update(b"\x00")
        h.update(text.encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------
class RetrievalArtifactCache:
    """Builds/loads the corpus embedding matrix once per content key.

    ``matrix_for`` returns a read-only array: either the in-process memo,
    a memory-mapped view of the persisted ``.npy`` (shared across worker
    processes), or a freshly built matrix that is then published for
    everyone else.
    """

    def __init__(self, cache_dir: str | Path):
        self.cache_dir = Path(cache_dir)

    # -- paths ---------------------------------------------------------
    def matrix_path(self, key: str) -> Path:
        return self.cache_dir / f"retrieval_{key}{MATRIX_SUFFIX}"

    def sidecar_path(self, key: str) -> Path:
        return self.cache_dir / f"retrieval_{key}{SIDECAR_SUFFIX}"

    # -- api -----------------------------------------------------------
    def matrix_for(self, texts: list[str], embedder: HashedEmbedder) -> np.ndarray:
        key = corpus_key(texts, embedder.cache_key())

        cached = _MATRIX_MEMO.get(key)
        if cached is not None:
            GLOBAL_STATS.memory_hits += 1
            return cached

        loaded = self._load(key, n_documents=len(texts), dim=embedder.dim)
        if loaded is not None:
            GLOBAL_STATS.disk_hits += 1
            _MATRIX_MEMO[key] = loaded
            return loaded

        GLOBAL_STATS.builds += 1
        matrix = embedder.embed_batch(texts)
        self._publish(key, matrix, embedder)
        _MATRIX_MEMO[key] = matrix
        return matrix

    # -- disk tier -----------------------------------------------------
    def _load(self, key: str, n_documents: int, dim: int) -> np.ndarray | None:
        matrix_path = self.matrix_path(key)
        sidecar_path = self.sidecar_path(key)
        if not (matrix_path.exists() and sidecar_path.exists()):
            return None
        try:
            meta = json.loads(sidecar_path.read_text())
            if meta.get("key") != key:
                return None
            matrix = np.load(matrix_path, mmap_mode="r")
        except (OSError, ValueError, json.JSONDecodeError):
            return None
        if matrix.shape != (n_documents, dim):
            return None
        return matrix

    def _publish(self, key: str, matrix: np.ndarray, embedder: HashedEmbedder) -> None:
        """Atomic write-then-rename so concurrent builders never clash."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        sidecar = {
            "key": key,
            "embedder": embedder.cache_key(),
            "n_documents": int(matrix.shape[0]),
            "dim": int(matrix.shape[1]),
            "dtype": str(matrix.dtype),
        }
        try:
            fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir, suffix=MATRIX_SUFFIX)
            with os.fdopen(fd, "wb") as fh:
                np.save(fh, matrix)
            os.replace(tmp_name, self.matrix_path(key))
            fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir, suffix=SIDECAR_SUFFIX)
            with os.fdopen(fd, "w") as fh:
                json.dump(sidecar, fh, indent=1)
            os.replace(tmp_name, self.sidecar_path(key))
        except OSError:
            # a read-only workdir degrades to in-process caching only
            pass
