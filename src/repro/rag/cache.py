"""Shared retrieval-artifact cache.

The column-description corpus is fixed per ensemble manifest and the
:class:`~repro.llm.embeddings.HashedEmbedder` is deterministic, so the
``VectorIndex`` embedding matrix is a pure function of (corpus text,
embedder geometry).  Re-embedding it for every query — as every
evaluation run used to do — is redundant work on the hottest end-to-end
path in the repo.

This module builds the matrix once per (corpus-content-hash, embedder
key), persists it as ``<key>.npy`` plus a JSON sidecar under a cache
directory, and serves it back memory-mapped so that concurrent harness
worker processes share one on-disk copy instead of each materializing
hundreds of column embeddings.  Three tiers:

1. in-process memo (dict, exact same object back);
2. on-disk ``.npy`` opened with ``mmap_mode='r'`` (validated against the
   sidecar's fingerprint and shape; matrices up to
   ``MATERIALIZE_MAX_BYTES`` are then copied into memory, because MMR's
   per-row indexed dot products are ~4x slower over a memmap);
3. cold build via ``embedder.embed_batch`` followed by an atomic
   write-then-rename publish, so racing processes never observe a
   half-written artifact.

All tiers are counted in process-local :class:`CacheStats`; the
evaluation harness snapshots them around each run and merges the deltas
into its result, which is how the hit/miss counters in
``HarnessResult.perf`` are produced.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.llm.embeddings import HashedEmbedder
from repro.util.stats import MergeableCounters

SIDECAR_SUFFIX = ".json"
MATRIX_SUFFIX = ".npy"
QUERY_MEMO_MAX = 1024
# below this size a disk-loaded matrix is copied into memory: MMR does
# thousands of per-row indexed dot products per retrieval, which run
# ~4x slower over a memmap subclass than over a plain ndarray.  Large
# corpora stay memory-mapped so workers still share one on-disk copy.
MATERIALIZE_MAX_BYTES = int(os.environ.get("REPRO_RAG_MMAP_THRESHOLD", 32 << 20))


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
@dataclass
class CacheStats(MergeableCounters):
    """Process-local counters for every cache tier (mergeable)."""

    memory_hits: int = 0
    disk_hits: int = 0
    builds: int = 0                  # cold misses: full corpus re-embeds
    query_memo_hits: int = 0
    query_memo_misses: int = 0
    query_memo_evictions: int = 0

    @property
    def matrix_hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def matrix_requests(self) -> int:
        return self.memory_hits + self.disk_hits + self.builds


GLOBAL_STATS = CacheStats()

# in-process matrix memo: key -> ndarray (tier 1)
_MATRIX_MEMO: dict[str, np.ndarray] = {}

# shared query-embedding memo: (embedder key, query text) -> vector.
# Bounded LRU shared by every VectorIndex in the process — the agents
# re-embed the same handful of prompts across retrieve calls, redo
# attempts, and harness runs, so one memo beats one per index instance.
_QUERY_MEMO: OrderedDict[tuple[str, str], np.ndarray] = OrderedDict()
_QUERY_MEMO_CAPACITY = int(os.environ.get("REPRO_QUERY_MEMO_ENTRIES", QUERY_MEMO_MAX))


def stats_snapshot() -> CacheStats:
    """Copy of the process-wide counters (subtract later with ``delta``)."""
    return GLOBAL_STATS.copy()


def clear_memory_cache() -> None:
    """Drop the in-process memos (tests use this to force disk reads)."""
    _MATRIX_MEMO.clear()
    _QUERY_MEMO.clear()


def query_memo_capacity() -> int:
    return _QUERY_MEMO_CAPACITY


def set_query_memo_capacity(entries: int) -> None:
    """Resize the shared query-embedding LRU (evicting down if needed)."""
    global _QUERY_MEMO_CAPACITY
    _QUERY_MEMO_CAPACITY = max(0, int(entries))
    while len(_QUERY_MEMO) > _QUERY_MEMO_CAPACITY:
        _QUERY_MEMO.popitem(last=False)
        GLOBAL_STATS.query_memo_evictions += 1


def query_memo_size() -> int:
    return len(_QUERY_MEMO)


def memoized_query_embedding(embedder: HashedEmbedder, query: str) -> np.ndarray:
    """Embed ``query``, served from the shared bounded LRU when possible."""
    key = (embedder.cache_key(), query)
    vec = _QUERY_MEMO.get(key)
    if vec is not None:
        GLOBAL_STATS.query_memo_hits += 1
        _QUERY_MEMO.move_to_end(key)
        return vec
    GLOBAL_STATS.query_memo_misses += 1
    vec = embedder.embed(query)
    _QUERY_MEMO[key] = vec
    while len(_QUERY_MEMO) > _QUERY_MEMO_CAPACITY:
        _QUERY_MEMO.popitem(last=False)
        GLOBAL_STATS.query_memo_evictions += 1
    return vec


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
def corpus_key(texts: list[str], embedder_key: str) -> str:
    """Content hash of the ordered corpus texts under one embedder geometry.

    Equivalent to hashing the manifest's metadata dictionaries (the corpus
    is built deterministically from them) but robust to any upstream
    change in document construction.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(embedder_key.encode())
    for text in texts:
        h.update(b"\x00")
        h.update(text.encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------
class RetrievalArtifactCache:
    """Builds/loads the corpus embedding matrix once per content key.

    ``matrix_for`` returns a read-only array: either the in-process memo,
    a memory-mapped view of the persisted ``.npy`` (shared across worker
    processes), or a freshly built matrix that is then published for
    everyone else.
    """

    def __init__(self, cache_dir: str | Path):
        self.cache_dir = Path(cache_dir)

    # -- paths ---------------------------------------------------------
    def matrix_path(self, key: str) -> Path:
        return self.cache_dir / f"retrieval_{key}{MATRIX_SUFFIX}"

    def sidecar_path(self, key: str) -> Path:
        return self.cache_dir / f"retrieval_{key}{SIDECAR_SUFFIX}"

    # -- api -----------------------------------------------------------
    def matrix_for(self, texts: list[str], embedder: HashedEmbedder) -> np.ndarray:
        key = corpus_key(texts, embedder.cache_key())

        cached = _MATRIX_MEMO.get(key)
        if cached is not None:
            GLOBAL_STATS.memory_hits += 1
            return cached

        loaded = self._load(key, n_documents=len(texts), dim=embedder.dim)
        if loaded is not None:
            GLOBAL_STATS.disk_hits += 1
            _MATRIX_MEMO[key] = loaded
            return loaded

        GLOBAL_STATS.builds += 1
        matrix = embedder.embed_batch(texts)
        self._publish(key, matrix, embedder)
        _MATRIX_MEMO[key] = matrix
        return matrix

    # -- disk tier -----------------------------------------------------
    def _load(self, key: str, n_documents: int, dim: int) -> np.ndarray | None:
        matrix_path = self.matrix_path(key)
        sidecar_path = self.sidecar_path(key)
        if not (matrix_path.exists() and sidecar_path.exists()):
            return None
        try:
            meta = json.loads(sidecar_path.read_text())
            if meta.get("key") != key:
                return None
            matrix = np.load(matrix_path, mmap_mode="r")
        except (OSError, ValueError, json.JSONDecodeError):
            return None
        if matrix.shape != (n_documents, dim):
            return None
        if matrix.nbytes <= MATERIALIZE_MAX_BYTES:
            return np.ascontiguousarray(matrix)
        return matrix

    def _publish(self, key: str, matrix: np.ndarray, embedder: HashedEmbedder) -> None:
        """Atomic write-then-rename so concurrent builders never clash."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        sidecar = {
            "key": key,
            "embedder": embedder.cache_key(),
            "n_documents": int(matrix.shape[0]),
            "dim": int(matrix.shape[1]),
            "dtype": str(matrix.dtype),
        }
        try:
            fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir, suffix=MATRIX_SUFFIX)
            with os.fdopen(fd, "wb") as fh:
                np.save(fh, matrix)
            os.replace(tmp_name, self.matrix_path(key))
            fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir, suffix=SIDECAR_SUFFIX)
            with os.fdopen(fd, "w") as fh:
                json.dump(sidecar, fh, indent=1)
            os.replace(tmp_name, self.sidecar_path(key))
        except OSError:
            # a read-only workdir degrades to in-process caching only
            pass
