"""Multi-prompt column retrieval.

§3.1: "our retriever employs maximum marginal relevance to select the top
20 documents for several prompts: the original user query, the specific
task assigned by the planning agent, the complete plan, and an
'[IMPORTANT]' prompt that highlights columns tagged as important,
retrieving up to 80 total documents."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.embeddings import HashedEmbedder
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.rag.cache import RetrievalArtifactCache
from repro.rag.documents import ColumnDocument, build_documents
from repro.rag.index import VectorIndex
from repro.rag.mmr import mmr_select

PER_PROMPT_K = 20
MAX_TOTAL_DOCS = 80


@dataclass
class RetrievalResult:
    documents: list[ColumnDocument]
    per_prompt: dict[str, list[str]] = field(default_factory=dict)

    @property
    def column_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for d in self.documents:
            if d.column:
                seen.setdefault(d.column)
        return list(seen)

    def columns_for_entity(self, entity: str) -> list[str]:
        return [d.column for d in self.documents if d.entity == entity and d.column]


class ColumnRetriever:
    """Retrieves relevant column documents for a task context."""

    def __init__(
        self,
        column_descriptions: dict[str, dict[str, str]],
        structure: dict[str, str] | None = None,
        important: set[str] | None = None,
        embedder: HashedEmbedder | None = None,
        lambda_mult: float = 0.7,
        cache: RetrievalArtifactCache | None = None,
    ):
        self.documents = build_documents(column_descriptions, structure, important)
        embedder = embedder or HashedEmbedder()
        matrix = (
            cache.matrix_for([d.text for d in self.documents], embedder)
            if cache is not None
            else None
        )
        self.index = VectorIndex(self.documents, embedder, matrix=matrix)
        self.lambda_mult = lambda_mult
        self._important_prompt = "[IMPORTANT] " + " ".join(
            d.text for d in self.documents if d.important
        )

    def retrieve(
        self,
        query: str,
        task: str = "",
        plan: str = "",
        k_per_prompt: int = PER_PROMPT_K,
        max_total: int = MAX_TOTAL_DOCS,
    ) -> RetrievalResult:
        """Fan out over the four prompts, MMR each, merge up to 80 docs."""
        prompts = {"query": query}
        if task:
            prompts["task"] = task
        if plan:
            prompts["plan"] = plan
        prompts["important"] = self._important_prompt

        with get_tracer().span("rag.retrieve", prompts=len(prompts)) as sp:
            matrix = self.index.embedding_matrix()
            merged: dict[str, ColumnDocument] = {}
            per_prompt: dict[str, list[str]] = {}
            for name, prompt in prompts.items():
                sims = self.index.similarities(prompt)
                chosen = mmr_select(sims, matrix, k_per_prompt, self.lambda_mult)
                ids = []
                for i in chosen:
                    doc = self.documents[i]
                    ids.append(doc.doc_id)
                    if len(merged) < max_total:
                        merged.setdefault(doc.doc_id, doc)
                per_prompt[name] = ids
            sp.set(documents=len(merged))
        registry = get_registry()
        registry.counter("retrieval.requests").inc()
        registry.counter("retrieval.documents").inc(len(merged))
        return RetrievalResult(documents=list(merged.values()), per_prompt=per_prompt)
