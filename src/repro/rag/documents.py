"""Fine-grained document chunking for the metadata dictionaries.

The paper's key retrieval decision: "we segment each column label into
individual documents of at most 80 tokens" instead of size-based chunking
that "would merge unrelated column descriptions".  Both strategies are
implemented — fine-grained here, conventional size-based in
:func:`chunk_text` — so the ablation benchmark can compare retrieval
precision between them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.tokens import count_tokens, tokenize

MAX_DOC_TOKENS = 80


@dataclass(frozen=True)
class ColumnDocument:
    """One retrievable document describing exactly one column (or structure entry)."""

    doc_id: str
    entity: str          # 'halos' | 'galaxies' | 'particles' | 'structure'
    column: str          # column label ('' for structure docs)
    text: str
    important: bool = False

    def token_count(self) -> int:
        return count_tokens(self.text)


def build_documents(
    column_descriptions: dict[str, dict[str, str]],
    structure: dict[str, str] | None = None,
    important: set[str] | None = None,
) -> list[ColumnDocument]:
    """Build one ≤80-token document per column label, plus structure docs."""
    important = important or set()
    docs: list[ColumnDocument] = []
    for entity, columns in column_descriptions.items():
        for column, description in columns.items():
            text = f"{column}: {description} (in the {entity} catalog)"
            text = _truncate_to_tokens(text, MAX_DOC_TOKENS)
            docs.append(
                ColumnDocument(
                    doc_id=f"{entity}.{column}",
                    entity=entity,
                    column=column,
                    text=text,
                    important=column in important,
                )
            )
    for key, description in (structure or {}).items():
        text = _truncate_to_tokens(f"{key}: {description}", MAX_DOC_TOKENS)
        docs.append(
            ColumnDocument(doc_id=f"structure.{key}", entity="structure", column="", text=text)
        )
    return docs


def _truncate_to_tokens(text: str, max_tokens: int) -> str:
    if count_tokens(text) <= max_tokens:
        return text
    words = text.split()
    out: list[str] = []
    total = 0
    for w in words:
        t = count_tokens(w)
        if total + t > max_tokens:
            break
        out.append(w)
        total += t
    return " ".join(out)


def chunk_text(
    column_descriptions: dict[str, dict[str, str]],
    chunk_tokens: int = 80,
) -> list[ColumnDocument]:
    """Conventional size-based chunking (the baseline the paper rejects).

    Concatenates all descriptions into one stream and splits at fixed token
    boundaries, merging unrelated columns into shared chunks — exactly the
    failure mode the fine-grained strategy avoids.
    """
    stream_parts: list[tuple[str, str]] = []  # (column, sentence)
    for entity, columns in column_descriptions.items():
        for column, description in columns.items():
            stream_parts.append((f"{entity}.{column}", f"{column}: {description}"))

    docs: list[ColumnDocument] = []
    buffer: list[str] = []
    members: list[str] = []
    total = 0
    idx = 0
    for key, sentence in stream_parts:
        for piece in sentence.split():
            t = len(tokenize(piece))
            if total + t > chunk_tokens and buffer:
                docs.append(
                    ColumnDocument(
                        doc_id=f"chunk.{idx}",
                        entity="mixed",
                        column=";".join(dict.fromkeys(members)),
                        text=" ".join(buffer),
                    )
                )
                idx += 1
                buffer, members, total = [], [], 0
            buffer.append(piece)
            total += t
            members.append(key)
    if buffer:
        docs.append(
            ColumnDocument(
                doc_id=f"chunk.{idx}",
                entity="mixed",
                column=";".join(dict.fromkeys(members)),
                text=" ".join(buffer),
            )
        )
    return docs
