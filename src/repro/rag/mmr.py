"""Maximum marginal relevance (Carbonell & Goldstein 1998).

Greedy re-ranking trading query relevance against redundancy:

    MMR = argmax_{d in R\\S} [ lambda * sim(d, q) - (1-lambda) * max_{s in S} sim(d, s) ]

The paper uses MMR to compensate for its very fine-grained documents —
plain top-k over 80-token chunks returns near-duplicates.
"""

from __future__ import annotations

import numpy as np


def mmr_select(
    query_sims: np.ndarray,
    doc_matrix: np.ndarray,
    k: int,
    lambda_mult: float = 0.7,
    candidate_pool: int | None = None,
) -> list[int]:
    """Return indices of the MMR-selected documents.

    ``query_sims`` is sim(doc, query) per document; ``doc_matrix`` the
    (normalized) document embedding matrix for doc-doc similarity.
    ``candidate_pool`` restricts the greedy search to the top-N by query
    similarity (the usual efficiency shortcut).
    """
    n = len(query_sims)
    if n == 0 or k <= 0:
        return []
    if not 0.0 <= lambda_mult <= 1.0:
        raise ValueError("lambda_mult must be in [0, 1]")
    k = min(k, n)
    pool_size = min(candidate_pool or max(4 * k, 32), n)
    pool = list(np.argsort(query_sims)[::-1][:pool_size])

    selected: list[int] = []
    selected_vecs: list[np.ndarray] = []
    remaining = set(pool)
    while len(selected) < k and remaining:
        best_idx = -1
        best_score = -np.inf
        for i in remaining:
            redundancy = 0.0
            if selected_vecs:
                redundancy = max(float(doc_matrix[i] @ v) for v in selected_vecs)
            score = lambda_mult * float(query_sims[i]) - (1.0 - lambda_mult) * redundancy
            if score > best_score:
                best_score, best_idx = score, i
        selected.append(best_idx)
        selected_vecs.append(doc_matrix[best_idx])
        remaining.discard(best_idx)
    return selected
