"""Python programming agent.

Requests analysis code from the model for its delegated step, executes it
in the sandbox on the current working tables, and reports the structured
outcome.  The agent never interprets the science itself — that division
(generation here, verification in QA, orchestration in the supervisor) is
the paper's architecture.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.agents.base import AgentContext
from repro.frame import Frame
from repro.sandbox.executor import ExecutionResult

_PY_FENCE_RE = re.compile(r"```python\s*(.*?)```", re.DOTALL)


@dataclass
class PythonOutcome:
    ok: bool
    code: str
    execution: ExecutionResult | None = None
    error: str = ""


class PythonProgrammingAgent:
    role = "python"

    def __init__(self, context: AgentContext):
        self.context = context

    def run_step(
        self,
        step: dict,
        tables: dict[str, Frame],
        step_key: str,
        attempt: int,
        semantic_level: int,
        previous_error: str = "",
    ) -> PythonOutcome:
        context_text = step["description"]
        if previous_error:
            context_text += f"\nThe previous attempt failed: {previous_error}"
        retrieval = self.context.retriever.retrieve(
            query=step["description"], task=str(step["params"].get("op", ""))
        )
        context_text += "\nRelevant columns:\n" + "\n".join(
            d.text for d in retrieval.documents[:10]
        )
        response = self.context.chat(
            self.role,
            {
                "step_key": step_key,
                "attempt": attempt,
                "semantic_level": semantic_level,
                "params": step["params"],
            },
            context_text=context_text,
            step_index=step["index"],
        )
        code = self._extract_code(response.content)
        self.context.provenance.record_code(step["index"], code, attempt=attempt)
        execution = self.context.sandbox.execute(code, tables)
        if not execution.ok:
            return PythonOutcome(
                ok=False,
                code=code,
                execution=execution,
                error=f"{execution.error_type}: {execution.error_message}",
            )
        return PythonOutcome(ok=True, code=code, execution=execution)

    @staticmethod
    def _extract_code(content: str) -> str:
        m = _PY_FENCE_RE.search(content)
        return m.group(1).strip() if m else content.strip()
