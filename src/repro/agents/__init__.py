"""The seven specialized agents plus the supervisor's routing graph.

Planning (multi-turn, human-in-the-loop), data loading (RAG-guided
column/file selection without full ingestion), SQL programming, Python
programming, visualization, quality assurance (1-100 scoring, threshold
50, five-revision budget) and documentation — orchestrated by the
supervisor exactly as in Fig. 3 of the paper.
"""

from repro.agents.base import AgentContext
from repro.agents.planner import PlanningAgent, FeedbackProvider, AutoApprove, ScriptedFeedback
from repro.agents.data_loader import DataLoadingAgent, LoadReport
from repro.agents.sql_agent import SQLProgrammingAgent
from repro.agents.python_agent import PythonProgrammingAgent
from repro.agents.viz_agent import VisualizationAgent
from repro.agents.qa_agent import QualityAssuranceAgent, QAVerdict
from repro.agents.documentation import DocumentationAgent
from repro.agents.supervisor import Supervisor, StepResult, RunReport

__all__ = [
    "AgentContext",
    "PlanningAgent",
    "FeedbackProvider",
    "AutoApprove",
    "ScriptedFeedback",
    "DataLoadingAgent",
    "LoadReport",
    "SQLProgrammingAgent",
    "PythonProgrammingAgent",
    "VisualizationAgent",
    "QualityAssuranceAgent",
    "QAVerdict",
    "DocumentationAgent",
    "Supervisor",
    "StepResult",
    "RunReport",
]
