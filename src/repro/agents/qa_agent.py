"""Quality assurance agent.

§4.2.4: binary correct/incorrect judgments produced frequent false
negatives, so the QA agent "assigns a score on a scale of 1-100 without
rigid criteria ... with a threshold of 50 for correct/incorrect
determination."  Both modes are implemented; the ablation benchmark
measures the false-negative difference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.base import AgentContext
from repro.llm.base import extract_json

QA_THRESHOLD = 50


@dataclass
class QAVerdict:
    passed: bool
    score: int | None
    feedback: str


class QualityAssuranceAgent:
    def __init__(self, context: AgentContext, mode: str = "score", threshold: int = QA_THRESHOLD):
        if mode not in ("score", "binary"):
            raise ValueError("mode must be 'score' or 'binary'")
        self.context = context
        self.mode = mode
        self.threshold = threshold

    def assess(
        self,
        step: dict,
        step_key: str,
        attempt: int,
        result_rows: int,
        error: str = "",
        expects_rows: bool = True,
    ) -> QAVerdict:
        response = self.context.chat(
            "qa",
            {
                "step_key": step_key,
                "attempt": attempt,
                "error": error,
                "result_rows": result_rows,
                "expects_rows": expects_rows,
                "mode": self.mode,
            },
            context_text=f"Assess whether this output satisfies the task: {step['description']}",
            step_index=step["index"],
        )
        doc = extract_json(response.content)
        if self.mode == "binary":
            passed = bool(doc.get("correct"))
            verdict = QAVerdict(passed=passed, score=None, feedback=doc.get("feedback", ""))
        else:
            score = int(doc.get("score", 0))
            verdict = QAVerdict(
                passed=score >= self.threshold, score=score, feedback=doc.get("feedback", "")
            )
        self.context.provenance.record_qa(
            step["index"], verdict.score, verdict.passed, verdict.feedback, attempt
        )
        return verdict
