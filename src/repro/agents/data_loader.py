"""Data-loading agent.

"The data-loading agent assesses the entire ensemble context, including
descriptions of each particle/property file, and determines which files
and columns are necessary to load for all downstream tasks.  This
filtering reduces the required data from multiple terabytes to a few
gigabytes at most.  Selected data is written to a DuckDB database."

The agent combines the plan's requested columns with RAG retrieval over
the metadata dictionaries (so semantically phrased questions still find
their columns), reads *only those columns* from the GenericIO files via
selective column reads, annotates rows with ``run``/``step`` (and the
sub-grid parameter columns when the analysis needs them), and appends
everything into on-disk database tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agents.base import AgentContext
from repro.frame import Frame
from repro.sim.ensemble import Ensemble


@dataclass
class LoadReport:
    """Selectivity accounting for the storage-overhead metrics."""

    tables: dict[str, int] = field(default_factory=dict)   # table -> rows
    bytes_selected: int = 0          # gio payload bytes actually read
    bytes_total: int = 0             # full ensemble payload bytes
    columns: dict[str, list[str]] = field(default_factory=dict)
    files_read: int = 0
    resolved_runs: list[int] = field(default_factory=list)
    resolved_steps: list[int] = field(default_factory=list)

    @property
    def selectivity(self) -> float:
        return self.bytes_selected / self.bytes_total if self.bytes_total else 0.0


class DataLoadingAgent:
    """Executes 'load' plan steps against an Ensemble."""

    def __init__(self, context: AgentContext, ensemble: Ensemble):
        self.context = context
        self.ensemble = ensemble

    def load(self, step_params: dict, question: str, plan_text: str = "") -> LoadReport:
        entities: list[str] = step_params.get("entities", ["halos"])
        requested: dict[str, list[str]] = step_params.get("columns", {})
        runs = step_params.get("runs")
        steps = step_params.get("steps")
        param_columns: list[str] = step_params.get("param_columns", [])

        if runs is None:
            run_list = list(range(self.ensemble.n_runs))
        else:
            run_list = [r for r in runs if 0 <= r < self.ensemble.n_runs]
            if not run_list:
                # a referenced simulation does not exist in this ensemble;
                # degrade to the closest available run rather than dying
                run_list = [min(max(min(runs), 0), self.ensemble.n_runs - 1)]
        step_list = self._resolve_steps(steps)

        report = LoadReport(
            bytes_total=self.ensemble.total_data_bytes(),
            resolved_runs=run_list,
            resolved_steps=step_list,
        )

        # RAG pass: union the plan's columns with retrieved ones, then
        # intersect against the real schema (retrieval can only add valid
        # names; generation errors are injected downstream, not here)
        retrieval = self.context.retriever.retrieve(
            query=question,
            task=f"load columns for entities {entities}",
            plan=plan_text,
        )
        max_extra = 4  # retrieval may add a few columns beyond the plan's,
        # but never re-inflates the load toward full ingestion
        for entity in entities:
            available = self.ensemble.open_file(run_list[0], step_list[0], entity).columns
            wanted = list(requested.get(entity, []))
            extra = 0
            for col in retrieval.columns_for_entity(entity):
                if col not in wanted and extra < max_extra:
                    wanted.append(col)
                    extra += 1
            wanted = [c for c in wanted if c in available]
            if not wanted:
                wanted = available[: min(4, len(available))]
            report.columns[entity] = wanted

        for entity in entities:
            frames: list[Frame] = []
            for run in run_list:
                params = self.ensemble.params_for(run).as_dict()
                for step in step_list:
                    gio = self.ensemble.open_file(run, step, entity)
                    report.bytes_selected += gio.bytes_for(report.columns[entity])
                    report.files_read += 1
                    frame = gio.read(report.columns[entity])
                    extra: dict = {
                        "run": np.full(frame.num_rows, run, dtype=np.int64),
                        "step": np.full(frame.num_rows, step, dtype=np.int64),
                    }
                    for pname in param_columns:
                        extra[f"param_{pname}"] = np.full(frame.num_rows, params[pname])
                    frames.append(frame.assign(**extra))
            table = entity
            total_rows = 0
            for i, frame in enumerate(frames):
                if i == 0:
                    if self.context.db.has_table(table):
                        self.context.db.drop_table(table)
                    self.context.db.create_table(table, frame)
                else:
                    self.context.db.append(table, frame)
                total_rows += frame.num_rows
            report.tables[table] = total_rows

        self.context.provenance.record_note(
            f"loaded {sum(report.tables.values())} rows across {report.files_read} files "
            f"({report.bytes_selected:,} of {report.bytes_total:,} bytes, "
            f"selectivity {report.selectivity:.4%})",
            files=report.files_read,
            bytes_selected=report.bytes_selected,
        )
        return report

    def _resolve_steps(self, steps) -> list[int]:
        available = self.ensemble.timesteps
        if steps is None:
            return available
        resolved: list[int] = []
        for s in steps:
            if s == "latest":
                resolved.append(available[-1])
            elif s == "earliest":
                resolved.append(available[0])
            elif int(s) in available:
                resolved.append(int(s))
            else:
                # snap to the nearest available snapshot
                nearest = min(available, key=lambda a: abs(a - int(s)))
                resolved.append(nearest)
        return sorted(set(resolved))
