"""Documentation agent.

"a documentation agent maintains comprehensive records of operations,
including AI-generated code and the successes and limitations encountered
by each agent" — here it asks the model to summarize the completed
workflow and stores the summary in provenance.  §4.1.4 notes this agent
is a convenience, not required for core analysis, which is why the
configuration can disable it (one of the token-reduction levers).
"""

from __future__ import annotations

from repro.agents.base import AgentContext


class DocumentationAgent:
    def __init__(self, context: AgentContext):
        self.context = context

    def summarize(self, question: str, step_results: list[dict]) -> str:
        response = self.context.chat(
            "doc",
            {
                "completed_steps": [
                    {
                        "index": r.get("index"),
                        "description": r.get("description"),
                        "status": r.get("status"),
                    }
                    for r in step_results
                ]
            },
            context_text=f"Summarize the workflow that answered: {question}",
        )
        self.context.provenance.record_note(response.content, note_kind="summary")
        return response.content
