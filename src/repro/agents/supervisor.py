"""Supervisor agent: plan-driven orchestration with the QA redo loop.

"the analysis stage begins under the direction of a supervisor agent,
which orchestrates step-by-step task execution according to the
established plan, while monitoring overall progress and performance."

Execution is a state graph (Fig. 3): supervisor routes each plan step to
the matching specialized agent; every code-generating step passes through
the quality-assurance agent, which can demand up to ``max_revisions``
regenerations with the error text in context; exhausting the budget fails
the run (the paper's reliability metric); a documentation agent summarizes
at the end.
"""

from __future__ import annotations

import zlib
from contextlib import nullcontext as _null_scope
from dataclasses import dataclass, field
from typing import Any

from repro.agents.base import AgentContext
from repro.agents.data_loader import DataLoadingAgent, LoadReport
from repro.agents.documentation import DocumentationAgent
from repro.agents.python_agent import PythonProgrammingAgent
from repro.agents.qa_agent import QualityAssuranceAgent
from repro.agents.sql_agent import SQLProgrammingAgent
from repro.agents.viz_agent import VisualizationAgent
from repro.frame import Frame
from repro.graph import Channel, StateGraph, END, Checkpointer
from repro.graph.state import append_reducer, merge_reducer, add_reducer
from repro.obs.cost import cost_attribution, current_attribution, get_ledger, use_ledger
from repro.obs.metrics import get_registry
from repro.obs.tracer import use_tracer
from repro.resilience import BudgetExceeded

MAX_REVISIONS = 5


@dataclass
class StepResult:
    index: int
    kind: str
    description: str
    status: str                 # 'ok' | 'failed' | 'skipped'
    attempts: int
    op: str = ""
    form_intended: str = ""
    form_used: str = ""
    result_rows: int = 0
    result_columns: list[str] = field(default_factory=list)
    redo_iterations: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class RunReport:
    question: str
    completed: bool
    failed_at_step: int | None
    steps: list[StepResult]
    plan_size: int
    analysis_steps: int          # load/sql/python/viz steps (the paper's count)
    tokens: int
    storage_bytes: int
    time_s: float
    llm_latency_s: float
    redo_iterations: int
    load_report: LoadReport | None
    tables: dict[str, Frame]
    figures: list[str]           # SVG strings
    semantic_level: int
    intent: dict
    # classified failure label when the run ended on a resilience-style
    # error (e.g. 'budget-exceeded') rather than a step failure
    failure: str = ""

    @property
    def tasks_completed_fraction(self) -> float:
        if not self.steps:
            return 0.0
        done = sum(1 for s in self.steps if s.status == "ok")
        return done / self.plan_size if self.plan_size else 0.0


class Supervisor:
    def __init__(
        self,
        context: AgentContext,
        data_loader: DataLoadingAgent,
        max_revisions: int = MAX_REVISIONS,
        qa_mode: str = "score",
        enable_documentation: bool = True,
        supervisor_history: int | None = 6,
        use_checkpointer: bool = False,
        parallel_viz: bool = False,
        checkpointer: "Checkpointer | None" = None,
    ):
        self.context = context
        self.data_loader = data_loader
        self.sql_agent = SQLProgrammingAgent(context)
        self.python_agent = PythonProgrammingAgent(context)
        self.viz_agent = VisualizationAgent(context)
        self.qa_agent = QualityAssuranceAgent(context, mode=qa_mode)
        self.doc_agent = DocumentationAgent(context)
        self.max_revisions = max_revisions
        self.enable_documentation = enable_documentation
        self.supervisor_history = supervisor_history
        # an injected checkpointer (e.g. the durable on-disk store) wins
        # over the plain in-memory one the boolean flag selects
        self.checkpointer = checkpointer or (Checkpointer() if use_checkpointer else None)
        self.parallel_viz = parallel_viz

    # ------------------------------------------------------------------
    def build_graph(self):
        channels = [
            Channel("plan", default=[]),
            Channel("question", default=""),
            Channel("semantic_level", default=0),
            Channel("step_index", default=0),
            Channel("attempt", default=0),
            Channel("status", default="running"),
            Channel("last_error", default=""),
            Channel("last_outcome", default=None),
            Channel("tables", merge_reducer, default={}),
            Channel("step_results", append_reducer, default=[]),
            Channel("figures", append_reducer, default=[]),
            Channel("redo_iterations", add_reducer, default=0),
            Channel("load_report", default=None),
            Channel("resolved_steps", default=None),
            Channel("failed_at_step", default=None),
            Channel("summary", default=""),
        ]
        g = StateGraph(channels)
        g.add_node("supervisor", self._node_supervisor)
        g.add_node("data_loader", self._node_load)
        g.add_node("sql", self._node_sql)
        g.add_node("python", self._node_python)
        g.add_node("viz", self._node_viz)
        g.add_node("qa", self._node_qa)
        g.add_node("viz_batch", self._node_viz_batch)
        g.add_node("documentation", self._node_documentation)
        g.set_entry_point("supervisor")
        g.add_conditional_edges("supervisor", self._route)
        g.add_edge("data_loader", "supervisor")
        g.add_edge("sql", "qa")
        g.add_edge("python", "qa")
        g.add_edge("viz", "qa")
        g.add_edge("viz_batch", "supervisor")
        g.add_edge("qa", "supervisor")
        g.add_edge("documentation", END)
        return g.compile(
            checkpointer=self.checkpointer,
            max_steps=1000,
            tracer=self.context.tracer,
        )

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def _node_supervisor(self, state: dict) -> dict:
        plan = state["plan"]
        idx = state["step_index"]
        if state["status"] == "failed" or idx >= len(plan):
            return {}
        step = plan[idx]
        history = self.context.message_log
        if self.supervisor_history is not None:
            history = history[-self.supervisor_history:]
        self.context.chat(
            "supervisor",
            {"next_kind": step["kind"], "step_index": idx},
            context_text="Progress so far:\n" + "\n".join(history),
        )
        return {}

    def _route(self, state: dict) -> str:
        plan = state["plan"]
        idx = state["step_index"]
        if state["status"] == "failed" or idx >= len(plan):
            return "documentation" if self.enable_documentation else END
        kind = plan[idx]["kind"]
        if kind == "viz" and self.parallel_viz:
            return "viz_batch"
        return {"load": "data_loader", "sql": "sql", "python": "python", "viz": "viz"}[kind]

    def _step_key(self, state: dict) -> str:
        # crc32, not hash(): the step key seeds the mock LLM's error-draw
        # streams, and Python's salted string hash would make every
        # interpreter invocation (and every pool worker) draw differently
        return f"q{zlib.crc32(state['question'].encode()) & 0xFFFF:x}.s{state['step_index']}"

    def _node_load(self, state: dict) -> dict:
        step = state["plan"][state["step_index"]]
        report = self.data_loader.load(
            step["params"], state["question"], plan_text=_plan_text(state["plan"])
        )
        resolved = report.resolved_steps
        # propagate the resolved run/snapshot lists into downstream step params
        for later in state["plan"]:
            if later["kind"] == "sql":
                if later["params"].get("steps") is not None:
                    later["params"]["steps"] = resolved
                if later["params"].get("runs") is not None:
                    later["params"]["runs"] = report.resolved_runs
        result = StepResult(
            index=step["index"],
            kind="load",
            description=step["description"],
            status="ok",
            attempts=1,
            result_rows=sum(report.tables.values()),
        )
        return {
            "step_index": state["step_index"] + 1,
            "attempt": 0,
            "load_report": report,
            "resolved_steps": resolved,
            "step_results": result.as_dict(),
        }

    def _node_sql(self, state: dict) -> dict:
        step = state["plan"][state["step_index"]]
        with self.context.tracer.span(
            "step.sql", step=state["step_index"], attempt=state["attempt"]
        ) as sp, cost_attribution(attempt=state["attempt"]):
            outcome = self.sql_agent.run_step(
                step,
                self._step_key(state),
                state["attempt"],
                state["semantic_level"],
                previous_error=state["last_error"],
            )
            sp.set(ok=outcome.ok)
        update: dict[str, Any] = {"last_outcome": _sql_summary(step, outcome)}
        if outcome.ok:
            tables = {"work": outcome.result}
            tables.update(outcome.secondary or {})
            update["tables"] = tables
            update["last_error"] = ""
            self.context.provenance.record_result(step["index"], outcome.result, "sql_result")
        else:
            update["last_error"] = outcome.error
        return update

    def _node_python(self, state: dict) -> dict:
        step = state["plan"][state["step_index"]]
        with self.context.tracer.span(
            "step.python", step=state["step_index"], attempt=state["attempt"]
        ) as sp, cost_attribution(attempt=state["attempt"]):
            outcome = self.python_agent.run_step(
                step,
                state["tables"],
                self._step_key(state),
                state["attempt"],
                state["semantic_level"],
                previous_error=state["last_error"],
            )
            sp.set(ok=outcome.ok)
        update: dict[str, Any] = {
            "last_outcome": {
                "ok": outcome.ok,
                "rows": outcome.execution.result_rows if outcome.execution else 0,
                "op": step["params"].get("op", ""),
                "columns": (
                    outcome.execution.result.columns
                    if outcome.execution and outcome.execution.result is not None
                    else []
                ),
            }
        }
        if outcome.ok and outcome.execution is not None:
            tables = dict(outcome.execution.tables)
            result = outcome.execution.result
            op = step["params"].get("op", "")
            if result is not None:
                if op == "top_k_per_cell":
                    tables["work"] = result
                elif op == "aggregate":
                    tables["aggregated"] = result
                elif op == "track_evolution":
                    tables[f"track_{step['params'].get('metric', 'metric')}"] = result
                self.context.provenance.record_result(step["index"], result)
            update["tables"] = tables
            update["last_error"] = ""
        else:
            update["last_error"] = outcome.error
        return update

    def _node_viz(self, state: dict) -> dict:
        step = state["plan"][state["step_index"]]
        with self.context.tracer.span(
            "step.viz", step=state["step_index"], attempt=state["attempt"]
        ) as sp, cost_attribution(attempt=state["attempt"]):
            outcome = self.viz_agent.run_step(
                step,
                state["tables"],
                self._step_key(state),
                state["attempt"],
                state["semantic_level"],
                previous_error=state["last_error"],
            )
            sp.set(ok=outcome.ok)
        update: dict[str, Any] = {
            "last_outcome": {
                "ok": outcome.ok,
                "rows": outcome.execution.result_rows if outcome.execution else 0,
                "op": "viz",
                "form_intended": step["params"].get("form", ""),
                "form_used": outcome.form_used,
            }
        }
        if outcome.ok:
            update["last_error"] = ""
            if outcome.svg:
                update["figures"] = outcome.svg
        else:
            update["last_error"] = outcome.error
        return update

    def _node_qa(self, state: dict) -> dict:
        step = state["plan"][state["step_index"]]
        outcome = state["last_outcome"] or {}
        with self.context.tracer.span(
            "qa.assess", step=state["step_index"], attempt=state["attempt"]
        ) as sp, cost_attribution(attempt=state["attempt"]):
            verdict = self.qa_agent.assess(
                step,
                self._step_key(state),
                state["attempt"],
                result_rows=int(outcome.get("rows", 0)),
                error=state["last_error"],
                expects_rows=step["kind"] != "viz",
            )
            sp.set(passed=verdict.passed and not state["last_error"])
        if verdict.passed and not state["last_error"]:
            result = StepResult(
                index=step["index"],
                kind=step["kind"],
                description=step["description"],
                status="ok",
                attempts=state["attempt"] + 1,
                op=str(outcome.get("op", "")),
                form_intended=str(outcome.get("form_intended", "")),
                form_used=str(outcome.get("form_used", "")),
                result_rows=int(outcome.get("rows", 0)),
                result_columns=list(outcome.get("columns", [])),
                redo_iterations=state["attempt"],
            )
            return {
                "step_index": state["step_index"] + 1,
                "attempt": 0,
                "last_error": "",
                "step_results": result.as_dict(),
            }
        attempt = state["attempt"] + 1
        if attempt > self.max_revisions:
            result = StepResult(
                index=step["index"],
                kind=step["kind"],
                description=step["description"],
                status="failed",
                attempts=attempt,
                op=str(outcome.get("op", "")),
                redo_iterations=attempt - 1,
            )
            return {
                "status": "failed",
                "failed_at_step": state["step_index"],
                "step_results": result.as_dict(),
                "redo_iterations": attempt - 1,
            }
        get_registry().counter("qa.redo").inc()
        return {
            "attempt": attempt,
            "redo_iterations": 1,
            "last_error": state["last_error"] or f"QA rejected output: {verdict.feedback}",
        }

    def _node_viz_batch(self, state: dict) -> dict:
        """Execute a run of consecutive viz steps with parallel sandboxing.

        The paper's stated future work ("investigate parallelized workflow
        execution to reduce execution runtime"): visualization steps are
        mutually independent, so their code generation stays serial (the
        LLM and provenance are shared) while the sandbox executions — the
        dominant cost — run concurrently.  QA still gates each step, with
        the same per-step revision budget.
        """
        from concurrent.futures import ThreadPoolExecutor

        plan = state["plan"]
        start = state["step_index"]
        batch: list[dict] = []
        while start + len(batch) < len(plan) and plan[start + len(batch)]["kind"] == "viz":
            batch.append(plan[start + len(batch)])

        pending = {step["index"]: 0 for step in batch}  # step index -> attempt
        errors: dict[int, str] = {}
        done: dict[int, StepResult] = {}
        figures: list[str] = []
        redo_total = 0
        failed_at: int | None = None

        while pending and failed_at is None:
            # serial generation (shared LLM/provenance), parallel execution
            generated = []
            for step in batch:
                if step["index"] not in pending:
                    continue
                attempt = pending[step["index"]]
                generated.append((step, attempt))

            tracer = self.context.tracer
            batch_parent = tracer.current()
            batch_attribution = current_attribution()
            batch_ledger = get_ledger()

            def run_one(item):
                step, attempt = item
                # pool threads have no span stack, no active tracer, no
                # ledger, and no attribution context: re-activate the
                # session tracer (with an explicit parent) and re-apply the
                # coordinator's ledger + cost scopes so sandbox/LLM spans
                # stay inside this trace and LLM spend stays attributed to
                # this session/node/attempt (the ledger is context-scoped,
                # so fresh threads start unmetered)
                ledger_scope = (
                    use_ledger(batch_ledger) if batch_ledger is not None
                    else _null_scope()
                )
                with use_tracer(tracer), ledger_scope, cost_attribution(
                    **{**batch_attribution, "attempt": attempt}
                ), tracer.span(
                    "step.viz",
                    parent=batch_parent,
                    step=step["index"],
                    attempt=attempt,
                    parallel=True,
                ) as sp:
                    outcome = self.viz_agent.run_step(
                        step,
                        state["tables"],
                        f"{self._step_key(state)}.v{step['index']}",
                        attempt,
                        state["semantic_level"],
                        previous_error=errors.get(step["index"], ""),
                    )
                    sp.set(ok=outcome.ok)
                return step, attempt, outcome

            with ThreadPoolExecutor(max_workers=max(len(generated), 1)) as pool:
                outcomes = list(pool.map(run_one, generated))

            for step, attempt, outcome in outcomes:
                verdict = self.qa_agent.assess(
                    step,
                    f"{self._step_key(state)}.v{step['index']}",
                    attempt,
                    result_rows=outcome.execution.result_rows if outcome.execution else 0,
                    error=outcome.error,
                    expects_rows=False,
                )
                if outcome.ok and verdict.passed:
                    if outcome.svg:
                        figures.append(outcome.svg)
                    done[step["index"]] = StepResult(
                        index=step["index"],
                        kind="viz",
                        description=step["description"],
                        status="ok",
                        attempts=attempt + 1,
                        op="viz",
                        form_intended=step["params"].get("form", ""),
                        form_used=outcome.form_used,
                        redo_iterations=attempt,
                    )
                    del pending[step["index"]]
                else:
                    errors[step["index"]] = outcome.error or verdict.feedback
                    redo_total += 1
                    get_registry().counter("qa.redo").inc()
                    pending[step["index"]] = attempt + 1
                    if pending[step["index"]] > self.max_revisions:
                        done[step["index"]] = StepResult(
                            index=step["index"],
                            kind="viz",
                            description=step["description"],
                            status="failed",
                            attempts=attempt + 1,
                            op="viz",
                            redo_iterations=attempt,
                        )
                        failed_at = state["step_index"]
                        break

        update: dict[str, Any] = {
            "step_index": start + len(batch),
            "attempt": 0,
            "step_results": [done[i].as_dict() for i in sorted(done)],
            "redo_iterations": redo_total,
        }
        if figures:
            update["figures"] = figures
        if failed_at is not None:
            update["status"] = "failed"
            update["failed_at_step"] = failed_at
        return update

    def _node_documentation(self, state: dict) -> dict:
        summary = self.doc_agent.summarize(state["question"], state["step_results"])
        return {"summary": summary}

    # ------------------------------------------------------------------
    def execute(
        self,
        question: str,
        plan_steps: list[dict],
        semantic_level: int,
        intent: dict,
        thread_id: str = "main",
    ) -> RunReport:
        graph = self.build_graph()
        tracer = self.context.tracer
        # wall time comes from the injected clock (DESIGN: components never
        # call time APIs directly), so runs under SimulatedClock are exact
        t0 = tracer.clock.now()
        latency0 = self.context.simulated_latency_s
        try:
            with tracer.span(
                "supervisor.execute", thread=thread_id, plan_size=len(plan_steps)
            ), cost_attribution(level=semantic_level):
                result = graph.invoke(
                    {
                        "plan": [dict(s) for s in plan_steps],
                        "question": question,
                        "semantic_level": semantic_level,
                    },
                    thread_id=thread_id,
                )
        except BudgetExceeded as exc:
            # a blown token budget ends the session as a classified
            # failure instead of funding further redo growth
            get_registry().counter("cost.budget_exceeded").inc()
            wall = tracer.clock.now() - t0
            latency = self.context.simulated_latency_s - latency0
            self._last_graph = graph
            self._last_events = []
            return RunReport(
                question=question,
                completed=False,
                failed_at_step=None,
                steps=[],
                plan_size=len(plan_steps),
                analysis_steps=sum(
                    1 for s in plan_steps if s["kind"] in ("load", "sql", "python", "viz")
                ),
                tokens=self.context.total_tokens,
                storage_bytes=self.context.provenance.storage_bytes(),
                time_s=wall + latency,
                llm_latency_s=latency,
                redo_iterations=0,
                load_report=None,
                tables={},
                figures=[],
                semantic_level=semantic_level,
                intent=intent,
                failure=exc.classification,
            )
        wall = tracer.clock.now() - t0
        latency = self.context.simulated_latency_s - latency0
        state = result.state
        steps = [StepResult(**r) for r in state["step_results"]]
        analysis_steps = sum(1 for s in plan_steps if s["kind"] in ("load", "sql", "python", "viz"))
        self._last_graph = graph
        self._last_events = result.events
        return RunReport(
            question=question,
            completed=state["status"] != "failed",
            failed_at_step=state["failed_at_step"],
            steps=steps,
            plan_size=len(plan_steps),
            analysis_steps=analysis_steps,
            tokens=self.context.total_tokens,
            storage_bytes=self.context.provenance.storage_bytes(),
            time_s=wall + latency,
            llm_latency_s=latency,
            redo_iterations=state["redo_iterations"],
            load_report=state["load_report"],
            tables=state["tables"],
            figures=state["figures"],
            semantic_level=semantic_level,
            intent=intent,
        )


def _plan_text(plan: list[dict]) -> str:
    return "\n".join(f"{s['index']}. [{s['kind']}] {s['description']}" for s in plan)


def _sql_summary(step: dict, outcome) -> dict:
    return {
        "ok": outcome.ok,
        "rows": outcome.result.num_rows if outcome.result is not None else 0,
        "op": "sql",
        "columns": outcome.result.columns if outcome.result is not None else [],
    }
