"""Visualization agent.

Same generate-execute contract as the Python agent, but the code must
produce a ``figure`` (SVG Figure or 3D Scene).  The agent records the
rendered figure in provenance and reports which chart form the model
actually chose — the evaluation's visualization-appropriateness oracle
compares that against the plan's intended form.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass

from repro.agents.base import AgentContext
from repro.agents.python_agent import PythonProgrammingAgent
from repro.frame import Frame
from repro.sandbox.executor import ExecutionResult
from repro.viz import Figure, Scene3D

_PY_FENCE_RE = re.compile(r"```python\s*(.*?)```", re.DOTALL)


@dataclass
class VizOutcome:
    ok: bool
    code: str
    form_used: str
    execution: ExecutionResult | None = None
    error: str = ""
    svg: str = ""


class VisualizationAgent:
    def __init__(self, context: AgentContext):
        self.context = context
        self._python = PythonProgrammingAgent(context)

    def run_step(
        self,
        step: dict,
        tables: dict[str, Frame],
        step_key: str,
        attempt: int,
        semantic_level: int,
        previous_error: str = "",
    ) -> VizOutcome:
        context_text = step["description"]
        if previous_error:
            context_text += f"\nThe previous attempt failed: {previous_error}"
        response = self.context.chat(
            "viz",
            {
                "step_key": step_key,
                "attempt": attempt,
                "semantic_level": semantic_level,
                "params": step["params"],
            },
            context_text=context_text,
            step_index=step["index"],
        )
        form_used = step["params"].get("form", "")
        header_line = response.content.splitlines()[0] if response.content else "{}"
        try:
            form_used = json.loads(header_line).get("form", form_used)
        except json.JSONDecodeError:
            pass
        m = _PY_FENCE_RE.search(response.content)
        code = m.group(1).strip() if m else response.content
        self.context.provenance.record_code(step["index"], code, attempt=attempt)
        execution = self.context.sandbox.execute(code, tables)
        if not execution.ok:
            return VizOutcome(
                ok=False,
                code=code,
                form_used=form_used,
                execution=execution,
                error=f"{execution.error_type}: {execution.error_message}",
            )
        svg = ""
        fig = execution.figure
        if isinstance(fig, (Figure, Scene3D)):
            svg = fig.to_svg()
        elif execution.meta.get("figure_svg"):
            # HTTP-gateway sandboxes serialize the figure as SVG text
            svg = execution.meta["figure_svg"]
        if svg:
            self.context.provenance.record_figure(step["index"], svg, form_used)
        return VizOutcome(ok=True, code=code, form_used=form_used, execution=execution, svg=svg)
