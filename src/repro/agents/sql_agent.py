"""SQL programming agent.

"an SQL programming agent performs additional filtering through generated
SQL queries, evaluating whether all loaded columns and rows are necessary
for immediate computation."

Each attempt asks the model for SQL (the model may typo column names),
executes it against the analysis database, and reports either the result
frame or the database's detailed error, which the supervisor's QA loop
feeds back into the next attempt.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.agents.base import AgentContext
from repro.db.errors import DBError
from repro.frame import Frame

_SQL_FENCE_RE = re.compile(r"```sql\s*(.*?)```", re.DOTALL)


@dataclass
class SQLOutcome:
    ok: bool
    sql: str
    result: Frame | None = None
    secondary: dict[str, Frame] | None = None
    error: str = ""


class SQLProgrammingAgent:
    def __init__(self, context: AgentContext):
        self.context = context

    def run_step(
        self,
        step: dict,
        step_key: str,
        attempt: int,
        semantic_level: int,
        previous_error: str = "",
    ) -> SQLOutcome:
        params = step["params"]
        context_text = step["description"]
        if previous_error:
            context_text += f"\nThe previous attempt failed: {previous_error}"
        response = self.context.chat(
            "sql",
            {
                "step_key": step_key,
                "attempt": attempt,
                "semantic_level": semantic_level,
                "params": params,
            },
            context_text=context_text,
            step_index=step["index"],
        )
        m = _SQL_FENCE_RE.search(response.content)
        sql = m.group(1).strip() if m else response.content.strip()
        self.context.provenance.record_code(step["index"], sql, language="sql", attempt=attempt)
        try:
            result = self.context.db.query(sql)
        except DBError as exc:
            return SQLOutcome(ok=False, sql=sql, error=f"{type(exc).__name__}: {exc}")

        secondary: dict[str, Frame] = {}
        for entity in params.get("secondary", []):
            sec_sql = self._secondary_sql(params, entity)
            try:
                secondary[f"work_{entity}"] = self.context.db.query(sec_sql)
            except DBError as exc:
                return SQLOutcome(ok=False, sql=sec_sql, error=f"{type(exc).__name__}: {exc}")
        return SQLOutcome(ok=True, sql=sql, result=result, secondary=secondary)

    def _secondary_sql(self, params: dict, entity: str) -> str:
        """Deterministic companion query for the secondary entity table."""
        cols = params.get("secondary_columns", {}).get(entity, [])
        select = ", ".join(dict.fromkeys(["run", "step", *cols])) if cols else "*"
        clauses = []
        runs = params.get("runs")
        if runs is not None:
            clauses.append(
                f"run = {runs[0]}" if len(runs) == 1 else f"run IN ({', '.join(map(str, runs))})"
            )
        steps = params.get("steps")
        if steps is not None:
            clauses.append(
                f"step = {steps[0]}" if len(steps) == 1 else f"step IN ({', '.join(map(str, steps))})"
            )
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return f"SELECT {select} FROM {entity}{where}"
