"""Halo tracking across timesteps.

HACC halo tags are persistent within a run, so tracking reduces to
selecting the target halos at a reference timestep and following their
tags through the other snapshots.  Two variants exist because the paper's
most common *analysis* failure is the LLM confusing them: tracking a
characteristic (mass, count — what evolution questions need) versus
tracking particle/halo coordinates (what trajectory questions need).
"""

from __future__ import annotations

import numpy as np

from repro.frame import Frame, concat


def _tag_column(work: Frame) -> str:
    """Galaxies track by their own tag; halos by the FoF tag."""
    return "gal_tag" if "gal_tag" in work else "fof_halo_tag"


def _top_tags_per_run(work: Frame, metric: str, top_k: int) -> dict[int, np.ndarray]:
    """Tags of the top-k entities (by metric, at each run's latest step)."""
    tag_col = _tag_column(work)
    out: dict[int, np.ndarray] = {}
    runs = np.unique(work["run"]) if "run" in work else np.asarray([0])
    for run in runs:
        sel = work.filter(work["run"] == run) if "run" in work else work
        last_step = sel["step"].max()
        at_last = sel.filter(sel["step"] == last_step)
        top = at_last.nlargest(min(top_k, at_last.num_rows), metric)
        out[int(run)] = np.asarray(top[tag_col])
    return out


def track_halo_characteristic(work: Frame, metric: str, top_k: int = 1) -> Frame:
    """Follow a scalar characteristic of the top halos across timesteps.

    Input must hold multi-timestep rows with ``run``, ``step``,
    ``fof_halo_tag`` and the metric column.  Output: one row per
    (run, step, tag) with the metric value — ready for a line chart of
    evolution.
    """
    tag_col = _tag_column(work)
    for required in ("step", tag_col, metric):
        work.column(required)  # raise with candidates if missing
    targets = _top_tags_per_run(work, metric, top_k)
    pieces = []
    for run, tags in targets.items():
        sel = work.filter(work["run"] == run) if "run" in work else work
        mask = np.isin(sel[tag_col], tags)
        tracked = sel.filter(mask)
        pieces.append(
            tracked.select(
                [c for c in ("run", "step", tag_col, metric) if c in tracked]
            )
        )
    result = concat(pieces) if pieces else work.head(0)
    return result.sort_values([c for c in ("run", tag_col, "step") if c in result])


def track_halo_positions(work: Frame, top_k: int = 1) -> Frame:
    """Follow the *coordinates* of the top halos across timesteps.

    The correct tool for trajectory questions — and the wrong one for
    characteristic-evolution questions, which is precisely the misuse the
    paper observed producing valid-but-unsatisfactory output.
    """
    metric = "fof_halo_count" if "fof_halo_count" in work else "fof_halo_mass"
    coords = [f"fof_halo_center_{a}" for a in "xyz"]
    targets = _top_tags_per_run(work, metric, top_k)
    pieces = []
    for run, tags in targets.items():
        sel = work.filter(work["run"] == run) if "run" in work else work
        mask = np.isin(sel["fof_halo_tag"], tags)
        tracked = sel.filter(mask)
        keep = [c for c in ("run", "step", "fof_halo_tag", *coords) if c in tracked]
        pieces.append(tracked.select(keep))
    result = concat(pieces) if pieces else work.head(0)
    return result.sort_values([c for c in ("run", "fof_halo_tag", "step") if c in result])
