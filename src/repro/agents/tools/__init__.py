"""Custom domain tools exposed to the code-generating agents.

§3: "custom algorithmic functions operating on pandas dataframes can be
added to the system, and the agents will be able to apply these custom
functions when appropriate.  In our HACC dataset workflow, custom tooling
enables halo tracking across time steps and facilitates ParaView
time-series visualization generation."
"""

from repro.agents.tools.halo_tracking import (
    track_halo_characteristic,
    track_halo_positions,
)
from repro.agents.tools.paraview import paraview_scene, paraview_time_series
from repro.sim.tracking import match_halos
from repro.viz.umap_lite import umap_embed


def default_toolset() -> dict:
    """The tool namespace injected into the sandbox."""
    return {
        "track_halo_characteristic": track_halo_characteristic,
        "track_halo_positions": track_halo_positions,
        "paraview_scene": paraview_scene,
        "paraview_time_series": paraview_time_series,
        "umap_embed": umap_embed,
        "match_halos": match_halos,
    }


__all__ = [
    "track_halo_characteristic",
    "track_halo_positions",
    "paraview_scene",
    "paraview_time_series",
    "umap_embed",
    "match_halos",
    "default_toolset",
]
