"""ParaView-style 3D scene generation tools.

Wrap :class:`repro.viz.Scene3D` so generated code can produce the Fig. 5
style render (target entity highlighted in red among its neighbors) and
time-series scene sequences without the agents writing 3D code.
"""

from __future__ import annotations

import numpy as np

from repro.frame import Frame
from repro.viz import Scene3D
from repro.viz.colormap import CATEGORICAL, HIGHLIGHT


def _position_columns(data: Frame) -> tuple[str, str, str]:
    for prefix in ("fof_halo_center_", "gal_", ""):
        cols = tuple(f"{prefix}{a}" for a in "xyz")
        if all(c in data for c in cols):
            return cols  # type: ignore[return-value]
    raise KeyError(
        "no 3D position columns found; expected fof_halo_center_x/y/z, "
        f"gal_x/y/z or x/y/z among {data.columns}"
    )


def paraview_scene(data: Frame, title: str = "", size_column: str | None = None) -> Scene3D:
    """Build a 3D point scene from a catalog Frame.

    Rows flagged by a boolean ``is_target`` column are drawn in the
    reserved highlight red with a larger radius (the paper's Fig. 5
    target halo).
    """
    xc, yc, zc = _position_columns(data)
    points = np.stack(
        [np.asarray(data[c], dtype=np.float64) for c in (xc, yc, zc)], axis=1
    )
    scene = Scene3D(title=title)
    if "is_target" in data:
        target_mask = np.asarray(data["is_target"], dtype=bool)
    else:
        target_mask = np.zeros(len(points), dtype=bool)
    radii = None
    if size_column and size_column in data:
        vals = np.asarray(data[size_column], dtype=np.float64)
        radii = 1.5 + 4.0 * (vals - vals.min()) / (np.ptp(vals) or 1.0)
    others = points[~target_mask]
    if len(others):
        scene.add_points(
            others,
            color=CATEGORICAL[0],
            radius=2.5,
            label="halos" if xc.startswith("fof") else "points",
            radii=radii[~target_mask] if radii is not None else None,
        )
    if target_mask.any():
        scene.add_points(points[target_mask], color=HIGHLIGHT, radius=7.0, label="target")
    return scene


def paraview_time_series(
    data: Frame, title: str = ""
) -> list[tuple[int, Scene3D]]:
    """One scene per timestep (the ParaView time-series capability)."""
    if "step" not in data:
        return [(0, paraview_scene(data, title))]
    scenes = []
    for step in np.unique(data["step"]):
        sel = data.filter(data["step"] == step)
        scenes.append((int(step), paraview_scene(sel, f"{title} (step {int(step)})")))
    return scenes
