"""Shared agent infrastructure.

:class:`AgentContext` bundles everything an agent needs — the metered
chat model, the column retriever, the analysis database, the sandbox
client, the provenance tracker and the run configuration — so agents stay
stateless and testable.

§4.2.5: "each agent operates with limited context awareness, receiving
only its delegated task without knowledge of upstream processes."
``build_prompt`` implements exactly that; the full-history mode exists for
the token-cost ablation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.db import Database
from repro.llm.base import ChatMessage, ChatResponse, MeteredModel
from repro.obs.cost import get_ledger
from repro.obs.metrics import get_registry
from repro.obs.tracer import Tracer
from repro.provenance import ProvenanceTracker
from repro.rag import ColumnRetriever
from repro.sandbox.client import InProcessClient


@dataclass
class AgentContext:
    llm: MeteredModel
    retriever: ColumnRetriever
    db: Database
    sandbox: InProcessClient
    provenance: ProvenanceTracker
    limited_context: bool = True
    message_log: list[str] = field(default_factory=list)
    simulated_latency_s: float = 0.0
    # tracing is always on: a private tracer is created when the caller
    # (normally InferA.run_query) does not supply the session's
    tracer: Tracer = field(default_factory=Tracer)

    def chat(
        self,
        role: str,
        payload: dict[str, Any],
        context_text: str = "",
        step_index: int | None = None,
    ) -> ChatResponse:
        """Send one role-directed exchange to the model, metered and logged."""
        parts = [f"[[ROLE:{role}]]"]
        if not self.limited_context and self.message_log:
            parts.append("Conversation so far:\n" + "\n".join(self.message_log))
        if context_text:
            parts.append(context_text)
        parts.append("[[PAYLOAD]]\n" + json.dumps(payload))
        prompt = "\n\n".join(parts)
        response = self.llm.chat([ChatMessage("user", prompt)], role=role)
        self.simulated_latency_s += response.latency_s
        registry = get_registry()
        registry.counter("llm.calls").inc()
        registry.counter("llm.prompt_tokens").inc(response.prompt_tokens)
        registry.counter("llm.completion_tokens").inc(response.completion_tokens)
        self.message_log.append(f"[{role}] {response.content[:400]}")
        self.provenance.record_llm_exchange(
            role, response.prompt_tokens, response.completion_tokens, step_index
        )
        # hard token budget: checked at the agent boundary so a blown
        # budget surfaces as a classified BudgetExceeded (handled like any
        # resilience failure) instead of funding another redo iteration
        ledger = get_ledger()
        if ledger is not None:
            ledger.check_budget()
        return response

    @property
    def total_tokens(self) -> int:
        return self.llm.meter.total
