"""Planning agent: multi-turn plan refinement with human feedback.

§3: "The planning stage implements a multi-turn dialogue module between
the user and a dedicated planning agent [using] chain-of-thought
prompting ... users [can] review, understand, and modify the plan."

Feedback is abstracted behind :class:`FeedbackProvider` so the evaluation
can skip it ("ignore missing requirements and continue", the paper's
lower-bound protocol) while interactive sessions script or type it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.agents.base import AgentContext
from repro.llm.base import extract_json


class FeedbackProvider(Protocol):
    """Supplies the human's reaction to a proposed plan."""

    def review(self, plan_doc: dict) -> tuple[bool, str]:
        """Return (approved, feedback_text)."""
        ...


class AutoApprove:
    """Skip human feedback (the paper's automated-evaluation mode)."""

    def review(self, plan_doc: dict) -> tuple[bool, str]:
        return True, "ignore missing requirements and continue"


@dataclass
class ScriptedFeedback:
    """Replay a fixed feedback script, then approve.

    Each entry is a free-text instruction; supported directives are
    ``drop viz`` (remove visualization steps) and ``limit runs <n>``.
    """

    script: list[str] = field(default_factory=list)
    _cursor: int = 0

    def review(self, plan_doc: dict) -> tuple[bool, str]:
        if self._cursor < len(self.script):
            text = self.script[self._cursor]
            self._cursor += 1
            return False, text
        return True, "approved"


@dataclass
class PlanningResult:
    intent: dict
    steps: list[dict]
    semantic_level: int
    reasoning: str
    rounds: int


class PlanningAgent:
    """Wraps the LLM planner skill with the refinement dialogue."""

    def __init__(self, context: AgentContext, max_rounds: int = 4):
        self.context = context
        self.max_rounds = max_rounds

    def plan(self, question: str, feedback: FeedbackProvider | None = None) -> PlanningResult:
        feedback = feedback or AutoApprove()
        doc: dict = {}
        rounds = 0
        notes: list[str] = []
        for rounds in range(1, self.max_rounds + 1):
            refinement = (
                "" if not notes else "\n" + "\n".join(f"(Refinement request: {n})" for n in notes)
            )
            response = self.context.chat(
                "planner",
                {"question": question + refinement},
                context_text="Decompose the user's question into an executable analysis plan.",
            )
            doc = extract_json(response.content)
            for note in notes:  # re-apply all accumulated user directives
                doc = self._apply_feedback(doc, note)
            approved, note = feedback.review(doc)
            if approved:
                break
            notes.append(note)
        self.context.provenance.record_plan(doc)
        return PlanningResult(
            intent=doc.get("intent", {}),
            steps=doc.get("steps", []),
            semantic_level=int(doc.get("semantic_level", 0)),
            reasoning=doc.get("reasoning", ""),
            rounds=rounds,
        )

    def _apply_feedback(self, doc: dict, note: str) -> dict:
        """Apply the directives ScriptedFeedback supports."""
        steps = doc.get("steps", [])
        lowered = note.lower()
        if "drop viz" in lowered:
            steps = [s for s in steps if s.get("kind") != "viz"]
        if "limit runs" in lowered:
            try:
                n = int(lowered.rsplit(" ", 1)[-1])
                for s in steps:
                    if s.get("params", {}).get("runs") is None:
                        s["params"]["runs"] = list(range(n))
            except ValueError:
                pass
        doc["steps"] = [dict(s, index=i) for i, s in enumerate(steps)]
        return doc
