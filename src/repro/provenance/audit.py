"""Audit-trail verification and step replay.

Provenance is only worth its bytes if it supports verification: these
helpers check trail integrity (monotone sequence, files present, byte
sizes matching) and re-execute a recorded code artifact against recorded
inputs to confirm the recorded output — the "recreate and verify
analytical pathways" capability of §4.2.1.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.frame import Frame
from repro.frame.io import read_csv
from repro.sandbox.executor import ExecutionResult, SandboxExecutor


class AuditError(RuntimeError):
    """Trail integrity violation."""


def verify_audit_trail(session_dir: str | Path) -> list[dict]:
    """Validate a session's trail; returns the parsed records."""
    session_dir = Path(session_dir)
    trail_path = session_dir / "trail.jsonl"
    if not trail_path.exists():
        raise AuditError(f"{session_dir} has no trail.jsonl")
    records = [json.loads(line) for line in trail_path.read_text().splitlines() if line]
    for i, rec in enumerate(records):
        if rec["seq"] != i:
            raise AuditError(f"non-sequential record at position {i}: seq={rec['seq']}")
        if rec["path"] is not None:
            f = session_dir / rec["path"]
            if not f.exists():
                raise AuditError(f"missing artifact file {rec['path']!r} (seq {i})")
            if f.stat().st_size != rec["nbytes"]:
                raise AuditError(
                    f"size mismatch for {rec['path']!r}: trail says {rec['nbytes']}, "
                    f"file has {f.stat().st_size}"
                )
    return records


def replay_step(
    session_dir: str | Path,
    step_index: int,
    tables: dict[str, Frame],
    tools: dict | None = None,
    attempt: int | None = None,
) -> ExecutionResult:
    """Re-execute the recorded Python code of one step on given inputs.

    ``attempt=None`` replays the final (successful) attempt.
    """
    session_dir = Path(session_dir)
    records = verify_audit_trail(session_dir)
    code_recs = [
        r
        for r in records
        if r["kind"] == "code"
        and r["step_index"] == step_index
        and r["meta"].get("language") == "python"
    ]
    if not code_recs:
        raise AuditError(f"no recorded python code for step {step_index}")
    if attempt is not None:
        code_recs = [r for r in code_recs if r["meta"].get("attempt") == attempt]
        if not code_recs:
            raise AuditError(f"no attempt {attempt} recorded for step {step_index}")
    code = (session_dir / code_recs[-1]["path"]).read_text()
    return SandboxExecutor(tools=tools).execute(code, tables)


def load_recorded_result(session_dir: str | Path, step_index: int) -> Frame:
    """Load the recorded CSV result of a step."""
    session_dir = Path(session_dir)
    records = verify_audit_trail(session_dir)
    result_recs = [
        r for r in records if r["kind"] == "result" and r["step_index"] == step_index
    ]
    if not result_recs:
        raise AuditError(f"no recorded result for step {step_index}")
    return read_csv(session_dir / result_recs[-1]["path"])
