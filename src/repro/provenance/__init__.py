"""Fine-grained provenance tracking (§4.2.1).

Every analytical artifact — intermediate CSVs, executed code, generated
figures, LLM exchanges, QA scores — is recorded in strict sequential
order with byte-exact storage accounting.  The audit trail makes any run
replayable: the recorded code and inputs are sufficient to re-execute
each step and verify its output.
"""

from repro.provenance.tracker import ProvenanceTracker, ArtifactRecord
from repro.provenance.audit import verify_audit_trail, replay_step

__all__ = ["ProvenanceTracker", "ArtifactRecord", "verify_audit_trail", "replay_step"]
