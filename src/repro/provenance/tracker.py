"""Sequential artifact store.

Directory layout per tracked session::

    <root>/
      trail.jsonl          # one JSON record per artifact, in order
      000_query.txt
      003_step02_code.py
      004_step02_result.csv
      007_step04_figure.svg
      ...

``storage_bytes()`` reports the exact on-disk provenance footprint,
including the analysis database when it is registered — Table 2's
"Storage Overhead" column.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.frame import Frame
from repro.frame.io import write_csv
from repro.util.timing import SimulatedClock, WallClock


@dataclass
class ArtifactRecord:
    seq: int
    kind: str               # query | plan | code | sql | result | figure | llm | qa | note | trace
    path: str | None        # file name inside the session dir (None = inline)
    step_index: int | None
    nbytes: int
    meta: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "path": self.path,
            "step_index": self.step_index,
            "nbytes": self.nbytes,
            "meta": self.meta,
        }


class ProvenanceTracker:
    """Records artifacts for one analysis session."""

    def __init__(
        self,
        root: str | Path,
        session_id: str = "session",
        clock: WallClock | SimulatedClock | None = None,
    ):
        self.root = Path(root) / session_id
        self.root.mkdir(parents=True, exist_ok=True)
        self.session_id = session_id
        self.records: list[ArtifactRecord] = []
        self._trail = self.root / "trail.jsonl"
        self._extra_paths: list[Path] = []
        # injected clock (DESIGN: components never call time APIs directly),
        # so provenance timestamps are deterministic under SimulatedClock
        self.clock = clock or WallClock()
        self._t0 = self.clock.now()

    # ------------------------------------------------------------------
    def _record(
        self,
        kind: str,
        path: Path | None,
        step_index: int | None,
        nbytes: int,
        **meta,
    ) -> ArtifactRecord:
        rec = ArtifactRecord(
            seq=len(self.records),
            kind=kind,
            path=path.name if path else None,
            step_index=step_index,
            nbytes=nbytes,
            meta=meta,
        )
        self.records.append(rec)
        with self._trail.open("a") as fh:
            fh.write(json.dumps(rec.as_dict()) + "\n")
        return rec

    def _file(self, stem: str, suffix: str) -> Path:
        return self.root / f"{len(self.records):03d}_{stem}{suffix}"

    # ------------------------------------------------------------------
    def record_query(self, question: str) -> ArtifactRecord:
        path = self._file("query", ".txt")
        data = question.encode("utf-8")
        path.write_bytes(data)
        return self._record("query", path, None, len(data))

    def record_plan(self, plan_doc: dict) -> ArtifactRecord:
        path = self._file("plan", ".json")
        data = json.dumps(plan_doc, indent=1).encode("utf-8")
        path.write_bytes(data)
        return self._record("plan", path, None, len(data), steps=len(plan_doc.get("steps", [])))

    def record_code(self, step_index: int, code: str, language: str = "python", attempt: int = 0) -> ArtifactRecord:
        suffix = ".sql" if language == "sql" else ".py"
        path = self._file(f"step{step_index:02d}_attempt{attempt}_code", suffix)
        data = code.encode("utf-8")
        path.write_bytes(data)
        return self._record("code", path, step_index, len(data), language=language, attempt=attempt)

    def record_result(self, step_index: int, frame: Frame, name: str = "result") -> ArtifactRecord:
        path = self._file(f"step{step_index:02d}_{name}", ".csv")
        nbytes = write_csv(frame, path)
        return self._record(
            "result", path, step_index, nbytes, rows=frame.num_rows, columns=frame.columns
        )

    def record_figure(self, step_index: int, svg: str, form: str) -> ArtifactRecord:
        path = self._file(f"step{step_index:02d}_figure", ".svg")
        data = svg.encode("utf-8")
        path.write_bytes(data)
        return self._record("figure", path, step_index, len(data), form=form)

    def record_llm_exchange(self, role: str, prompt_tokens: int, completion_tokens: int, step_index: int | None = None) -> ArtifactRecord:
        return self._record(
            "llm", None, step_index, 0,
            role=role, prompt_tokens=prompt_tokens, completion_tokens=completion_tokens,
        )

    def record_qa(self, step_index: int, score: int | None, passed: bool, feedback: str, attempt: int) -> ArtifactRecord:
        return self._record(
            "qa", None, step_index, 0,
            score=score, passed=passed, feedback=feedback[:300], attempt=attempt,
        )

    def record_note(self, text: str, step_index: int | None = None, **meta) -> ArtifactRecord:
        return self._record("note", None, step_index, 0, text=text[:500], **meta)

    def record_trace(self, spans: list[dict]) -> ArtifactRecord:
        """Persist a session's execution trace as a JSONL artifact.

        Every trail thereby carries its own execution trace (``kind="trace"``):
        the artifacts *and* the spans that produced them, inspectable with
        ``repro trace summary/tree <session-dir>``.
        """
        path = self._file("trace", ".jsonl")
        data = "".join(json.dumps(span) + "\n" for span in spans).encode("utf-8")
        path.write_bytes(data)
        trace_id = spans[0].get("trace_id", "") if spans else ""
        return self._record("trace", path, None, len(data), spans=len(spans), trace_id=trace_id)

    def register_external(self, path: str | Path) -> None:
        """Count an external artifact (e.g. the analysis database directory)
        toward this session's storage overhead."""
        self._extra_paths.append(Path(path))

    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        total = sum(
            f.stat().st_size for f in self.root.iterdir() if f.is_file()
        )
        for extra in self._extra_paths:
            if extra.is_dir():
                total += sum(f.stat().st_size for f in extra.rglob("*") if f.is_file())
            elif extra.is_file():
                total += extra.stat().st_size
        return total

    def elapsed_s(self) -> float:
        return self.clock.now() - self._t0

    def trail(self) -> list[dict]:
        return [r.as_dict() for r in self.records]
