"""Sub-grid physics parameters and their response model.

The paper's ensemble varies five sub-grid parameters: the stellar feedback
energy fraction f_SN, log of the stellar feedback kick velocity log(v_SN),
the AGN feedback temperature jump log(T_AGN), the slope beta_BH of the
density-dependent black hole accretion boost, and the AGN seed mass
M_seed.  The hard evaluation questions probe how these parameters shape
galaxy–halo relations, so the response model below is built to carry the
qualitative physics:

* larger ``f_SN`` suppresses stellar mass in low-mass halos (steeper
  low-mass SMHM slope);
* larger ``v_SN`` ejects cold gas from small halos (lower gas fractions
  at the low-mass end);
* larger ``T_AGN`` suppresses both gas and stars in massive halos (lower
  gas-fraction normalization, shallower high-mass SMHM);
* larger ``beta_BH`` adds stochasticity to massive-galaxy growth (more
  SMHM scatter at the high-mass end);
* ``M_seed`` controls how early black holes regulate their hosts: the
  SMHM intrinsic scatter is minimized — and stellar-mass assembly
  efficiency saturates — near a threshold seed mass, reproducing the
  behaviour the Table 1 hard/hard question asks the assistant to find.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict

import numpy as np

# Plausible CRK-HACC ensemble prior ranges.
PARAM_RANGES: dict[str, tuple[float, float]] = {
    "f_SN": (0.2, 1.0),
    "log_vSN": (1.7, 2.7),       # log10 km/s
    "log_TAGN": (7.4, 8.6),      # log10 K
    "beta_BH": (0.0, 2.0),
    "M_seed": (1.0e5, 1.0e7),    # Msun/h
}

# Seed mass (log10) at which SMHM scatter is minimal / assembly efficiency
# saturates; the "threshold seed mass" the hard/hard question targets.
LOG_MSEED_THRESHOLD = 6.0


@dataclass(frozen=True)
class SubgridParams:
    """One run's sub-grid parameter vector."""

    f_SN: float = 0.5
    log_vSN: float = 2.2
    log_TAGN: float = 8.0
    beta_BH: float = 0.9
    M_seed: float = 1.0e6

    def as_dict(self) -> dict[str, float]:
        return asdict(self)

    def validate(self) -> None:
        for name, (lo, hi) in PARAM_RANGES.items():
            v = getattr(self, name)
            if not (lo <= v <= hi):
                raise ValueError(f"{name}={v} outside prior range [{lo}, {hi}]")

    # ------------------------------------------------------------------
    # response model: all pure functions of (params, halo mass, scale factor)
    # ------------------------------------------------------------------
    def smhm_ratio(self, halo_mass: np.ndarray, scale_factor: float) -> np.ndarray:
        """Median stellar-to-halo mass ratio M*/Mh (double power law).

        A Behroozi-style double power law pivoting at M1; the low-mass slope
        steepens with f_SN, the high-mass slope steepens with T_AGN, and the
        overall normalization grows with cosmic time and with stellar-mass
        assembly efficiency (a saturating function of M_seed).
        """
        m1 = 10**12.0
        x = np.asarray(halo_mass, dtype=np.float64) / m1
        low_slope = 1.2 + 1.0 * (self.f_SN - 0.5)
        high_slope = 0.5 + 0.45 * (self.log_TAGN - 8.0)
        norm = 0.025 * self.assembly_efficiency() * scale_factor**0.35
        return norm * 2.0 / (x ** (-low_slope) + x ** (high_slope))

    def assembly_efficiency(self) -> float:
        """Stellar-mass assembly efficiency vs. seed mass (saturating).

        Rises with log10(M_seed) and saturates just past the threshold —
        the "threshold seed mass that maximizes stellar-mass assembly
        efficiency" probed by the hard/hard evaluation question.
        """
        lm = np.log10(self.M_seed)
        return float(1.0 / (1.0 + np.exp(-2.5 * (lm - (LOG_MSEED_THRESHOLD - 0.5)))))

    def smhm_scatter_dex(self, halo_mass: np.ndarray | float = 1e12) -> np.ndarray:
        """Intrinsic SMHM scatter in dex.

        Parabolic in log10(M_seed) around the threshold (tightest relation
        at the threshold seed mass), plus a beta_BH-driven term that grows
        with halo mass.
        """
        lm = np.log10(self.M_seed)
        base = 0.16 + 0.06 * (lm - LOG_MSEED_THRESHOLD) ** 2
        mass_term = 0.05 * self.beta_BH * np.clip(
            np.log10(np.asarray(halo_mass, dtype=np.float64) / 1e13), 0.0, 2.0
        )
        return base + mass_term

    def gas_fraction(self, m500c: np.ndarray, scale_factor: float) -> np.ndarray:
        """Median hot-gas mass fraction MGas500c / M500c.

        Power law in M500c whose slope flattens and normalization falls
        with cosmic time, modulated by T_AGN (normalization) and v_SN
        (low-mass suppression).  The medium/hard question measures exactly
        this slope and normalization evolving between timesteps.
        """
        m = np.asarray(m500c, dtype=np.float64)
        pivot = 10**13.5
        cosmic_baryon = 0.157
        slope = 0.22 - 0.10 * (scale_factor - 0.5) + 0.05 * (self.log_vSN - 2.2)
        norm = cosmic_baryon * (
            0.72 - 0.18 * (self.log_TAGN - 8.0) - 0.10 * (scale_factor - 0.5)
        )
        frac = norm * (m / pivot) ** slope
        # v_SN ejects gas from shallow potential wells
        vkick = 10**self.log_vSN
        suppression = 1.0 / (1.0 + (vkick / 300.0) * (m / 1e12) ** (-0.5))
        return np.clip(frac * (0.4 + 0.6 * suppression), 1e-4, cosmic_baryon)


def latin_hypercube_design(
    n_runs: int, rng: np.random.Generator
) -> list[SubgridParams]:
    """Latin-hypercube sample of the five-parameter prior.

    Matches how simulation campaigns actually sample sub-grid parameter
    space; ensures the per-parameter marginals are stratified so questions
    sweeping one parameter (e.g. M_seed) see well-spread values.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    names = list(PARAM_RANGES)
    samples = np.empty((n_runs, len(names)))
    for j in range(len(names)):
        perm = rng.permutation(n_runs)
        samples[:, j] = (perm + rng.uniform(0, 1, size=n_runs)) / n_runs
    designs: list[SubgridParams] = []
    for i in range(n_runs):
        kwargs: dict[str, float] = {}
        for j, name in enumerate(names):
            lo, hi = PARAM_RANGES[name]
            if name == "M_seed":  # log-uniform for a mass scale
                kwargs[name] = float(10 ** (np.log10(lo) + samples[i, j] * (np.log10(hi) - np.log10(lo))))
            else:
                kwargs[name] = float(lo + samples[i, j] * (hi - lo))
        p = SubgridParams(**kwargs)
        p.validate()
        designs.append(p)
    return designs
