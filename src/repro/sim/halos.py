"""Halo catalog construction (FoF properties + spherical-overdensity masses).

Two entry points:

* :func:`halo_catalog_from_fof` — measure properties of groups found by the
  real FoF finder on a particle snapshot (used in tests/examples; this is
  the genuine HACC CosmoTools path).
* :func:`build_halo_catalog` — generate the catalog analytically from the
  halo-model truth (used by the ensemble writer so that the evaluation
  harness is fast and halo tags are consistent across timesteps).

Both produce the same schema (see :mod:`repro.sim.schema`).
"""

from __future__ import annotations

import numpy as np

from repro.frame import Frame
from repro.sim.cosmology import Cosmology
from repro.sim.fof import FofResult
from repro.sim.particles import ParticleField, PARTICLE_MASS
from repro.sim.subgrid import SubgridParams


def _grouped_mean(values: np.ndarray, group: np.ndarray, ng: int) -> np.ndarray:
    counts = np.bincount(group, minlength=ng)
    sums = np.bincount(group, weights=values, minlength=ng)
    return sums / np.maximum(counts, 1)


def halo_catalog_from_fof(
    field: ParticleField,
    fof: FofResult,
    params: SubgridParams,
    cosmology: Cosmology,
    step: int,
) -> Frame:
    """Measure the halo catalog schema from FoF groups (vectorized)."""
    in_halo = fof.group >= 0
    group = fof.group[in_halo]
    ng = fof.num_groups
    pos = field.positions[in_halo]
    vel = field.velocities[in_halo]

    counts = np.bincount(group, minlength=ng)
    mass = counts.astype(np.float64) * PARTICLE_MASS

    # center of mass with periodic unwrap: use circular mean per axis
    box = field.box_size
    theta = pos / box * (2 * np.pi)
    center = np.empty((ng, 3))
    for axis in range(3):
        s = _grouped_mean(np.sin(theta[:, axis]), group, ng)
        c = _grouped_mean(np.cos(theta[:, axis]), group, ng)
        center[:, axis] = (np.arctan2(s, c) % (2 * np.pi)) / (2 * np.pi) * box

    mean_v = np.stack(
        [_grouped_mean(vel[:, axis], group, ng) for axis in range(3)], axis=1
    )
    # 1-D velocity dispersion: sqrt(mean |v - <v>|^2 / 3)
    dv2 = np.zeros(ng)
    for axis in range(3):
        dv = vel[:, axis] - mean_v[group, axis]
        dv2 += np.bincount(group, weights=dv * dv, minlength=ng)
    vel_disp = np.sqrt(dv2 / np.maximum(counts * 3, 1))
    ke = 0.5 * PARTICLE_MASS * np.bincount(
        group, weights=np.einsum("ij,ij->i", vel, vel), minlength=ng
    ) / 1e9  # internal units

    a = float(cosmology.scale_factor(step))
    tags = np.arange(ng, dtype=np.int64)
    return _assemble_catalog(tags, counts, mass, center, mean_v, vel_disp, ke, params, cosmology, a)


def build_halo_catalog(
    tags: np.ndarray,
    masses: np.ndarray,
    centers: np.ndarray,
    bulk_velocities: np.ndarray,
    params: SubgridParams,
    cosmology: Cosmology,
    step: int,
    rng: np.random.Generator,
) -> Frame:
    """Analytic catalog from halo-model truth (ensemble writer path)."""
    masses = np.asarray(masses, dtype=np.float64)
    counts = np.maximum((masses / PARTICLE_MASS).astype(np.int64), 5)
    sigma = 120.0 * (masses / 1e13) ** (1.0 / 3.0)
    vel_disp = sigma * rng.lognormal(0.0, 0.08, size=len(masses))
    speed2 = np.einsum("ij,ij->i", bulk_velocities, bulk_velocities) + 3 * sigma**2
    ke = 0.5 * masses * speed2 / 1e9
    a = float(cosmology.scale_factor(step))
    return _assemble_catalog(
        np.asarray(tags, dtype=np.int64),
        counts,
        counts.astype(np.float64) * PARTICLE_MASS,
        np.asarray(centers, dtype=np.float64),
        np.asarray(bulk_velocities, dtype=np.float64),
        vel_disp,
        ke,
        params,
        cosmology,
        a,
    )


def _assemble_catalog(
    tags: np.ndarray,
    counts: np.ndarray,
    mass: np.ndarray,
    center: np.ndarray,
    mean_v: np.ndarray,
    vel_disp: np.ndarray,
    ke: np.ndarray,
    params: SubgridParams,
    cosmology: Cosmology,
    a: float,
) -> Frame:
    # SO mass: fraction of FoF mass, mildly mass dependent (concentration)
    m500c = mass * 0.72 * (mass / 1e13) ** 0.03
    gas_frac = params.gas_fraction(m500c, a)
    mgas = gas_frac * m500c
    mstar = params.smhm_ratio(mass, a) * mass * 0.9  # stars inside R500c
    r500c = cosmology.r500c(m500c, a)
    return Frame(
        {
            "fof_halo_tag": tags,
            "fof_halo_count": counts.astype(np.int64),
            "fof_halo_mass": mass,
            "fof_halo_center_x": center[:, 0],
            "fof_halo_center_y": center[:, 1],
            "fof_halo_center_z": center[:, 2],
            "fof_halo_mean_vx": mean_v[:, 0],
            "fof_halo_mean_vy": mean_v[:, 1],
            "fof_halo_mean_vz": mean_v[:, 2],
            "fof_halo_vel_disp": vel_disp,
            "fof_halo_ke": ke,
            "sod_halo_M500c": m500c,
            "sod_halo_MGas500c": mgas,
            "sod_halo_R500c": r500c,
            "sod_halo_Mstar500c": mstar,
        }
    )
