"""Clustered dark-matter particle field generation.

Rather than integrating an N-body solver, snapshots are drawn from a halo
model: seed halos are placed in the periodic box with a mass function, and
particles are sampled around each seed with an isothermal-sphere-flavoured
radial profile plus a uniform unclustered background.  This is the
standard mock-catalog shortcut: it produces fields on which a real
friends-of-friends finder recovers the seeded halos, which is all the
downstream system (and its evaluation) observes.

Everything is vectorized; per the HPC guide no per-particle Python loops
appear on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

PARTICLE_MASS = 1.2e9  # Msun/h per tracer particle


@dataclass
class ParticleField:
    """One snapshot's particle data plus the generating truth."""

    box_size: float
    positions: np.ndarray       # (n, 3) comoving Mpc/h
    velocities: np.ndarray      # (n, 3) km/s
    ids: np.ndarray             # (n,) int64, persistent across steps
    masses: np.ndarray          # (n,) Msun/h
    phi: np.ndarray             # (n,) potential proxy
    true_halo_tag: np.ndarray   # (n,) int64 seeded halo tag, -1 = field

    @property
    def num_particles(self) -> int:
        return len(self.ids)


def sample_halo_masses(
    n_halos: int, rng: np.random.Generator, m_min: float = 5e11, alpha: float = 1.9
) -> np.ndarray:
    """Power-law (Press–Schechter-flavoured) halo mass function sample.

    ``p(M) ~ M^-alpha`` above ``m_min`` with an exponential taper imposed
    by rejection at the cluster scale, so every box gets a realistic
    handful of large halos and many small ones.
    """
    u = rng.uniform(0.0, 1.0, size=n_halos)
    # inverse-CDF of a truncated Pareto on [m_min, m_max]
    m_max = 5e14
    a = 1.0 - alpha
    masses = (m_min**a + u * (m_max**a - m_min**a)) ** (1.0 / a)
    return masses


def generate_particles(
    n_particles: int,
    box_size: float,
    rng: np.random.Generator,
    growth: float = 1.0,
    halo_fraction: float = 0.75,
    n_halos: int | None = None,
) -> ParticleField:
    """Generate one snapshot's clustered particle field.

    ``growth`` (the linear growth factor of the snapshot) scales halo
    masses and occupancy, so early snapshots are less clustered — giving
    the time-evolution structure the multi-timestep questions analyze.
    """
    if n_halos is None:
        n_halos = max(4, n_particles // 400)
    seed_masses = sample_halo_masses(n_halos, rng) * np.clip(growth, 0.05, 1.0)
    centers = rng.uniform(0.0, box_size, size=(n_halos, 3))
    bulk_v = rng.normal(0.0, 250.0, size=(n_halos, 3))
    return sample_field_from_halos(
        seed_masses, centers, bulk_v, n_particles, box_size, rng,
        growth=growth, halo_fraction=halo_fraction,
    )


def sample_field_from_halos(
    seed_masses: np.ndarray,
    centers: np.ndarray,
    bulk_v: np.ndarray,
    n_particles: int,
    box_size: float,
    rng: np.random.Generator,
    growth: float = 1.0,
    halo_fraction: float = 0.75,
) -> ParticleField:
    """Sample a particle field around *given* halos.

    Used by the ensemble writer so the raw particle files are physically
    consistent with the halo catalogs of the same snapshot: particle
    overdensities sit at the catalog's halo centers, and the
    ``true_halo_tag`` of a particle indexes the given halo arrays.
    """
    if n_particles < 10:
        raise ValueError("n_particles must be >= 10")
    if not (0.0 < halo_fraction < 1.0):
        raise ValueError("halo_fraction must be in (0, 1)")
    seed_masses = np.asarray(seed_masses, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    bulk_v = np.asarray(bulk_v, dtype=np.float64)
    if len(seed_masses) == 0:
        raise ValueError("at least one halo is required")
    n_halos = len(seed_masses)

    # occupancy proportional to mass; at least 8 particles for FoF findability
    n_clustered = int(n_particles * halo_fraction * np.clip(growth, 0.2, 1.0))
    weights = seed_masses / seed_masses.sum()
    counts = rng.multinomial(n_clustered, weights)
    counts = np.maximum(counts, 8)
    n_clustered = int(counts.sum())
    n_field = max(0, n_particles - n_clustered)

    # vectorized sampling: one flat array, halo index per particle
    halo_of = np.repeat(np.arange(n_halos), counts)
    # scale radius grows with mass^(1/3); truncated-isothermal radial profile
    r_scale = 0.8 * (seed_masses / 1e13) ** (1.0 / 3.0)
    u = rng.uniform(0.0, 1.0, size=n_clustered)
    radii = r_scale[halo_of] * u**1.5  # denser toward center
    directions = rng.normal(size=(n_clustered, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    pos_clustered = centers[halo_of] + radii[:, None] * directions

    sigma_v = 120.0 * (seed_masses / 1e13) ** (1.0 / 3.0)
    vel_clustered = bulk_v[halo_of] + rng.normal(size=(n_clustered, 3)) * sigma_v[halo_of, None]

    pos_field = rng.uniform(0.0, box_size, size=(n_field, 3))
    vel_field = rng.normal(0.0, 80.0, size=(n_field, 3))

    positions = np.vstack([pos_clustered, pos_field]) % box_size
    velocities = np.vstack([vel_clustered, vel_field])
    true_tag = np.concatenate(
        [halo_of.astype(np.int64), np.full(n_field, -1, dtype=np.int64)]
    )

    n = len(positions)
    ids = np.arange(n, dtype=np.int64)
    masses = np.full(n, PARTICLE_MASS)
    # potential proxy: deeper (more negative) near massive halo centers
    phi = np.zeros(n)
    clustered_mask = true_tag >= 0
    phi[clustered_mask] = -seed_masses[true_tag[clustered_mask]] / (
        np.concatenate([radii, np.zeros(0)]) + 0.05
    ) / 1e13

    return ParticleField(
        box_size=box_size,
        positions=positions,
        velocities=velocities,
        ids=ids,
        masses=masses,
        phi=phi,
        true_halo_tag=true_tag,
    )
