"""Galaxy catalog construction from the halo catalog.

Galaxies inherit their host's ``fof_halo_tag`` (the paper's join key:
"galaxies associated to those two halos (related by fof_halo_tag)").
Stellar masses follow the sub-grid-modulated SMHM relation with lognormal
intrinsic scatter — the quantity the hard/hard evaluation question fits —
and gas masses follow the gas-fraction relation.
"""

from __future__ import annotations

import numpy as np

from repro.frame import Frame
from repro.sim.subgrid import SubgridParams


def build_galaxy_catalog(
    halos: Frame,
    params: SubgridParams,
    scale_factor: float,
    rng: np.random.Generator,
    satellites_per_log_mass: float = 1.1,
) -> Frame:
    """Populate halos with a central + mass-dependent satellites.

    Central galaxy stellar mass is drawn around the SMHM median with the
    parameter-dependent intrinsic scatter (in dex).  Satellites get a
    declining mass spectrum.  Galaxy tags are derived deterministically
    from the host tag so they persist across timesteps.
    """
    halo_mass = halos.column("fof_halo_mass").astype(np.float64)
    halo_tag = halos.column("fof_halo_tag").astype(np.int64)
    n_halos = len(halo_mass)
    if n_halos == 0:
        return _empty_catalog()

    # occupation: 1 central + Poisson satellites growing with log mass
    mean_sats = np.clip(
        satellites_per_log_mass * np.log10(np.maximum(halo_mass / 5e12, 1.0)), 0.0, 30.0
    )
    n_sats = rng.poisson(mean_sats)
    n_gal_per_halo = 1 + n_sats
    total = int(n_gal_per_halo.sum())

    host_row = np.repeat(np.arange(n_halos), n_gal_per_halo)
    # rank 0 = central, 1.. = satellites
    rank = np.concatenate([np.arange(k) for k in n_gal_per_halo])

    median_ratio = params.smhm_ratio(halo_mass, scale_factor)
    scatter_dex = params.smhm_scatter_dex(halo_mass)
    log_mstar_central = np.log10(median_ratio * halo_mass)
    log_mstar = (
        log_mstar_central[host_row]
        + rng.normal(0.0, 1.0, size=total) * scatter_dex[host_row]
        - 0.55 * rank  # satellites successively less massive
    )
    stellar_mass = 10**log_mstar

    gas_to_star = np.clip(
        0.8 * (stellar_mass / 1e10) ** (-0.35)
        * (1.2 - 0.3 * (params.log_TAGN - 8.0)),
        0.01,
        20.0,
    )
    gas_mass = stellar_mass * gas_to_star * rng.lognormal(0.0, 0.15, size=total)

    # positions: central at halo center, satellites offset within ~R500c
    cx = halos.column("fof_halo_center_x")[host_row]
    cy = halos.column("fof_halo_center_y")[host_row]
    cz = halos.column("fof_halo_center_z")[host_row]
    r500 = halos.column("sod_halo_R500c")[host_row]
    offset = rng.normal(0.0, 1.0, size=(total, 3))
    offset *= (0.5 * r500 * (rank > 0))[:, None]
    gx, gy, gz = cx + offset[:, 0], cy + offset[:, 1], cz + offset[:, 2]

    vdisp = halos.column("fof_halo_vel_disp")[host_row]
    vx = halos.column("fof_halo_mean_vx")[host_row] + rng.normal(0, 1, total) * vdisp * (rank > 0)
    vy = halos.column("fof_halo_mean_vy")[host_row] + rng.normal(0, 1, total) * vdisp * (rank > 0)
    vz = halos.column("fof_halo_mean_vz")[host_row] + rng.normal(0, 1, total) * vdisp * (rank > 0)
    ke = 0.5 * stellar_mass * (vx**2 + vy**2 + vz**2) / 1e9

    sfr = np.clip(
        (stellar_mass / 1e10) ** 0.8 * scale_factor**2.5 * (1.0 - 0.4 * params.f_SN),
        0.0,
        None,
    ) * rng.lognormal(0.0, 0.3, size=total)

    gal_tag = halo_tag[host_row] * 1000 + rank
    gal_count = np.maximum((stellar_mass / 5e7).astype(np.int64), 1)

    return Frame(
        {
            "gal_tag": gal_tag.astype(np.int64),
            "fof_halo_tag": halo_tag[host_row],
            "gal_count": gal_count,
            "gal_stellar_mass": stellar_mass,
            "gal_gas_mass": gas_mass,
            "gal_x": gx,
            "gal_y": gy,
            "gal_z": gz,
            "gal_vx": vx,
            "gal_vy": vy,
            "gal_vz": vz,
            "gal_ke": ke,
            "gal_sfr": sfr,
        }
    )


def _empty_catalog() -> Frame:
    import numpy as np

    return Frame(
        {
            "gal_tag": np.empty(0, dtype=np.int64),
            "fof_halo_tag": np.empty(0, dtype=np.int64),
            "gal_count": np.empty(0, dtype=np.int64),
            "gal_stellar_mass": np.empty(0),
            "gal_gas_mass": np.empty(0),
            "gal_x": np.empty(0),
            "gal_y": np.empty(0),
            "gal_z": np.empty(0),
            "gal_vx": np.empty(0),
            "gal_vy": np.empty(0),
            "gal_vz": np.empty(0),
            "gal_ke": np.empty(0),
            "gal_sfr": np.empty(0),
        }
    )
