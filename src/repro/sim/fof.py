"""Friends-of-friends halo finder.

The classic percolation algorithm used by HACC's CosmoTools: particles
closer than a linking length ``b`` times the mean interparticle spacing
belong to the same group.  Implemented with a uniform cell grid (cell
edge = linking length) so only the 27-cell neighborhood is searched, and
a union-find with path compression for the percolation — the standard
O(n) approach for halo finding at scale.

Pairwise distance work inside the neighborhood is vectorized with NumPy
(guide idiom: index arrays + broadcasting over per-cell blocks instead of
per-particle Python loops).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class FofResult:
    """Group assignment: ``group[i]`` is the group id of particle i, -1 if unlinked below min size."""

    group: np.ndarray           # (n,) int64, -1 for particles in groups below min_members
    num_groups: int
    linking_length: float


class _UnionFind:
    """Array-based union-find with path halving and union by size."""

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, i: int) -> int:
        parent = self.parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]

    def union_pairs(self, left: np.ndarray, right: np.ndarray) -> None:
        for a, b in zip(left.tolist(), right.tolist()):
            self.union(a, b)


def friends_of_friends(
    positions: np.ndarray,
    box_size: float,
    linking_length: float | None = None,
    b: float = 0.2,
    min_members: int = 5,
) -> FofResult:
    """Run FoF percolation over a periodic box.

    ``linking_length`` overrides the canonical ``b * mean_spacing``
    definition when given.  Groups smaller than ``min_members`` are
    dissolved to -1 (unbound field particles), matching CosmoTools'
    minimum halo size cut.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must be (n, 3)")
    n = len(positions)
    if n == 0:
        return FofResult(group=np.empty(0, dtype=np.int64), num_groups=0, linking_length=0.0)

    if linking_length is None:
        mean_spacing = box_size / max(n, 1) ** (1.0 / 3.0)
        linking_length = b * mean_spacing
    ll2 = linking_length**2

    # cell grid with edge >= linking length
    n_cells = max(1, int(box_size / linking_length))
    n_cells = min(n_cells, 128)  # cap memory for tiny linking lengths
    cell_edge = box_size / n_cells
    cell_idx = np.floor(positions / cell_edge).astype(np.int64) % n_cells
    flat = (cell_idx[:, 0] * n_cells + cell_idx[:, 1]) * n_cells + cell_idx[:, 2]

    order = np.argsort(flat, kind="stable")
    flat_sorted = flat[order]
    starts = np.flatnonzero(np.concatenate(([True], flat_sorted[1:] != flat_sorted[:-1])))
    ends = np.concatenate((starts[1:], [n]))
    occupied = flat_sorted[starts]
    cell_to_slot = {int(c): k for k, c in enumerate(occupied)}

    uf = _UnionFind(n)

    # half-neighborhood offsets so each cell pair is visited once
    offsets = []
    for dx in (0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                if (dx, dy, dz) > (0, 0, 0) or (dx, dy, dz) == (0, 0, 0):
                    offsets.append((dx, dy, dz))

    cx = occupied // (n_cells * n_cells)
    cy = (occupied // n_cells) % n_cells
    cz = occupied % n_cells

    half = box_size / 2.0
    for slot in range(len(occupied)):
        a_rows = order[starts[slot] : ends[slot]]
        pa = positions[a_rows]
        for dx, dy, dz in offsets:
            nx = (cx[slot] + dx) % n_cells
            ny = (cy[slot] + dy) % n_cells
            nz = (cz[slot] + dz) % n_cells
            nbr_flat = int((nx * n_cells + ny) * n_cells + nz)
            nbr_slot = cell_to_slot.get(nbr_flat)
            if nbr_slot is None:
                continue
            same_cell = nbr_slot == slot
            if (dx, dy, dz) != (0, 0, 0) and same_cell:
                continue  # wrapped onto itself (n_cells small)
            b_rows = order[starts[nbr_slot] : ends[nbr_slot]]
            pb = positions[b_rows]
            # periodic minimum-image pairwise distances, vectorized
            diff = pa[:, None, :] - pb[None, :, :]
            diff = np.where(diff > half, diff - box_size, diff)
            diff = np.where(diff < -half, diff + box_size, diff)
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            ai, bi = np.nonzero(d2 <= ll2)
            if same_cell:
                keep = ai < bi
                ai, bi = ai[keep], bi[keep]
            if len(ai):
                uf.union_pairs(a_rows[ai], b_rows[bi])

    # resolve roots and relabel densely
    roots = np.fromiter((uf.find(i) for i in range(n)), dtype=np.int64, count=n)
    uniq, dense = np.unique(roots, return_inverse=True)
    counts = np.bincount(dense)
    keep_mask = counts >= min_members
    group = np.where(keep_mask[dense], dense, -1)
    # re-densify surviving group ids
    surviving = np.unique(group[group >= 0])
    remap = {int(g): k for k, g in enumerate(surviving)}
    if len(surviving):
        lut = np.full(int(group.max()) + 1, -1, dtype=np.int64)
        for old, new in remap.items():
            lut[old] = new
        group = np.where(group >= 0, lut[np.maximum(group, 0)], -1)
    return FofResult(group=group, num_groups=len(surviving), linking_length=float(linking_length))
