"""HACC data-product schema and the two RAG metadata dictionaries.

§3.1 of the paper: "context-aware preprocessing ... creates two
dictionaries: one describing the ensemble file structure, and another
mapping column labels to context-rich natural language descriptions."
Those dictionaries are defined here; the RAG layer chunks them into
≤80-token per-column documents.

Column names follow the real HACC/CosmoTools conventions the paper quotes
(``fof_halo_count``, ``sod_halo_MGas500c``, ``fof_halo_tag``...).
"""

from __future__ import annotations

ENTITY_KINDS = ("particles", "halos", "galaxies")

# columns tagged [IMPORTANT] get boosted retrieval, mirroring the paper's
# "[IMPORTANT]" retrieval prompt for columns tagged as important.
IMPORTANT_COLUMNS = {
    "fof_halo_tag",
    "fof_halo_count",
    "fof_halo_mass",
    "gal_stellar_mass",
    "sod_halo_M500c",
    "sod_halo_MGas500c",
}

PARTICLE_COLUMNS: dict[str, str] = {
    "id": "Unique particle identifier, persistent across all timesteps of a run.",
    "x": "Particle comoving position along the x axis in megaparsec per h (Mpc/h).",
    "y": "Particle comoving position along the y axis in megaparsec per h (Mpc/h).",
    "z": "Particle comoving position along the z axis in megaparsec per h (Mpc/h).",
    "vx": "Particle peculiar velocity along the x axis in kilometers per second (km/s).",
    "vy": "Particle peculiar velocity along the y axis in kilometers per second (km/s).",
    "vz": "Particle peculiar velocity along the z axis in kilometers per second (km/s).",
    "mass": "Particle mass in units of solar mass (Msun/h); constant for dark matter tracers.",
    "phi": "Local gravitational potential at the particle position, arbitrary normalization.",
    "fof_halo_tag": (
        "Tag of the friends-of-friends halo this particle belongs to; "
        "-1 for field particles outside any halo."
    ),
}

HALO_COLUMNS: dict[str, str] = {
    "fof_halo_tag": (
        "Unique friends-of-friends halo tag; stable across timesteps so halos can be "
        "tracked through time, and the key that links galaxies to their host halo."
    ),
    "fof_halo_count": (
        "Number of particles in the friends-of-friends halo; a proxy for halo size "
        "and mass (halo particle count)."
    ),
    "fof_halo_mass": "Total friends-of-friends halo mass in solar masses (Msun/h).",
    "fof_halo_center_x": "Halo center of mass, comoving x coordinate in Mpc/h.",
    "fof_halo_center_y": "Halo center of mass, comoving y coordinate in Mpc/h.",
    "fof_halo_center_z": "Halo center of mass, comoving z coordinate in Mpc/h.",
    "fof_halo_mean_vx": "Mean peculiar velocity of halo particles along x in km/s.",
    "fof_halo_mean_vy": "Mean peculiar velocity of halo particles along y in km/s.",
    "fof_halo_mean_vz": "Mean peculiar velocity of halo particles along z in km/s.",
    "fof_halo_vel_disp": (
        "One-dimensional velocity dispersion of halo member particles in km/s; "
        "a dynamical-mass indicator."
    ),
    "fof_halo_ke": (
        "Total kinetic energy of the halo in internal units, computed from member "
        "particle velocities (kinetic energy)."
    ),
    "sod_halo_M500c": (
        "Mass enclosed within the radius where the mean density is 500 times the "
        "critical density, for a spherical overdensity halo (M500c), in Msun/h."
    ),
    "sod_halo_MGas500c": (
        "Gas mass enclosed within the radius of density 500 times the critical "
        "density in a spherical overdensity halo, in Msun/h. Divided by "
        "sod_halo_M500c it gives the gas-mass fraction."
    ),
    "sod_halo_R500c": (
        "Radius enclosing a mean density of 500 times the critical density for a "
        "spherical overdensity halo, in Mpc/h."
    ),
    "sod_halo_Mstar500c": (
        "Stellar mass enclosed within the spherical overdensity radius R500c, "
        "in Msun/h."
    ),
}

GALAXY_COLUMNS: dict[str, str] = {
    "gal_tag": "Unique galaxy identifier, persistent across timesteps of a run.",
    "fof_halo_tag": (
        "Tag of the friends-of-friends host halo of this galaxy; join key against "
        "the halo catalog (galaxies related to halos by fof_halo_tag)."
    ),
    "gal_count": "Number of star particles composing the galaxy (galaxy size).",
    "gal_stellar_mass": (
        "Galaxy stellar mass in solar masses (Msun/h); together with the host halo "
        "mass it defines the stellar-to-halo mass (SMHM) relation."
    ),
    "gal_gas_mass": "Galaxy cold gas mass in solar masses (Msun/h) (gas-mass).",
    "gal_x": "Galaxy comoving position x in Mpc/h.",
    "gal_y": "Galaxy comoving position y in Mpc/h.",
    "gal_z": "Galaxy comoving position z in Mpc/h.",
    "gal_vx": "Galaxy peculiar velocity x in km/s.",
    "gal_vy": "Galaxy peculiar velocity y in km/s.",
    "gal_vz": "Galaxy peculiar velocity z in km/s.",
    "gal_ke": "Galaxy kinetic energy in internal units from its bulk velocity.",
    "gal_sfr": "Galaxy star formation rate in solar masses per year.",
}

COLUMN_DESCRIPTIONS: dict[str, dict[str, str]] = {
    "particles": PARTICLE_COLUMNS,
    "halos": HALO_COLUMNS,
    "galaxies": GALAXY_COLUMNS,
}

FILE_STRUCTURE_DESCRIPTIONS: dict[str, str] = {
    "ensemble": (
        "The ensemble root directory contains one subdirectory per simulation run, "
        "named run_000, run_001, ...; each run was executed with a different set of "
        "five sub-grid physics parameters recorded in the run's file attributes: "
        "f_SN (stellar feedback energy fraction), log_vSN (log of the stellar "
        "feedback kick velocity), log_TAGN (AGN feedback temperature jump), "
        "beta_BH (slope of the density-dependent black hole accretion boost), and "
        "M_seed (AGN seed mass)."
    ),
    "run": (
        "Each run directory contains one subdirectory per time-evolution snapshot, "
        "named step_000 ... step_624; the step number is the simulation timestep, "
        "with larger numbers later in cosmic time (step 624 is the final, "
        "present-day snapshot)."
    ),
    "step": (
        "Each snapshot directory holds three GenericIO files: particles.gio with "
        "the raw dark matter particles, halos.gio with the friends-of-friends and "
        "spherical-overdensity halo catalog, and galaxies.gio with the galaxy "
        "catalog. Columns can be read individually without loading whole files."
    ),
    "particles": "particles.gio: raw dark matter particle data for one snapshot.",
    "halos": (
        "halos.gio: friends-of-friends halo catalog with spherical overdensity "
        "masses for one snapshot; one row per dark matter halo."
    ),
    "galaxies": (
        "galaxies.gio: galaxy catalog for one snapshot; one row per galaxy, linked "
        "to host halos via fof_halo_tag."
    ),
}


def columns_for(kind: str) -> list[str]:
    """Column names of an entity kind, in on-disk order."""
    try:
        return list(COLUMN_DESCRIPTIONS[kind])
    except KeyError:
        raise KeyError(f"unknown entity kind {kind!r}; expected one of {ENTITY_KINDS}") from None


def describe_column(kind: str, name: str) -> str:
    """Natural-language description of one column (RAG document body)."""
    return COLUMN_DESCRIPTIONS[kind][name]
