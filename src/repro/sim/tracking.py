"""Particle-overlap halo tracking and merger lineage graphs.

Real HACC analysis tracks halos across snapshots by particle membership:
two halos at consecutive snapshots are linked when they share member
particles.  Because the synthetic ensemble writes a *persistent* particle
population (stable IDs, stable halo affiliation), the same algorithm
works here: :func:`match_halos` computes the shared-particle overlap
matrix between two snapshots, and :func:`halo_lineage_graph` chains the
matches into a ``networkx`` DiGraph — a merger-tree-lite whose paths give
each halo's progenitor line.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.frame import Frame
from repro.sim.ensemble import Ensemble


def match_halos(
    ids_a: np.ndarray,
    tags_a: np.ndarray,
    ids_b: np.ndarray,
    tags_b: np.ndarray,
    min_shared: int = 3,
) -> Frame:
    """Shared-particle overlaps between two halo memberships.

    Inputs are per-particle (id, halo tag) pairs at two snapshots (tag -1
    = field).  Returns one row per (tag_a, tag_b) pair sharing at least
    ``min_shared`` particles, with the shared count and the match fraction
    relative to the earlier halo's membership.
    """
    a_in = tags_a >= 0
    b_in = tags_b >= 0
    # align the two snapshots on particle id
    order_a = np.argsort(ids_a[a_in])
    order_b = np.argsort(ids_b[b_in])
    ids_a_sorted = ids_a[a_in][order_a]
    tags_a_sorted = tags_a[a_in][order_a]
    ids_b_sorted = ids_b[b_in][order_b]
    tags_b_sorted = tags_b[b_in][order_b]

    common, idx_a, idx_b = np.intersect1d(
        ids_a_sorted, ids_b_sorted, assume_unique=True, return_indices=True
    )
    del common
    pair_a = tags_a_sorted[idx_a]
    pair_b = tags_b_sorted[idx_b]

    if len(pair_a) == 0:
        return Frame(
            {
                "tag_a": np.empty(0, dtype=np.int64),
                "tag_b": np.empty(0, dtype=np.int64),
                "shared": np.empty(0, dtype=np.int64),
                "fraction_of_a": np.empty(0),
            }
        )

    # count occurrences of each (tag_a, tag_b) pair
    pairs = np.stack([pair_a, pair_b], axis=1)
    uniq, counts = np.unique(pairs, axis=0, return_counts=True)
    keep = counts >= min_shared
    uniq, counts = uniq[keep], counts[keep]

    size_a = {int(t): int(c) for t, c in zip(*np.unique(tags_a[a_in], return_counts=True))}
    fraction = np.asarray(
        [c / size_a.get(int(t), 1) for t, c in zip(uniq[:, 0], counts)]
    )
    order = np.argsort(counts, kind="stable")[::-1]
    return Frame(
        {
            "tag_a": uniq[order, 0].astype(np.int64),
            "tag_b": uniq[order, 1].astype(np.int64),
            "shared": counts[order].astype(np.int64),
            "fraction_of_a": fraction[order],
        }
    )


def halo_lineage_graph(
    ensemble: Ensemble, run: int, min_shared: int = 3
) -> nx.DiGraph:
    """Merger-lineage DiGraph for one run.

    Nodes are ``(step, tag)``; an edge ``(s1, t1) -> (s2, t2)`` carries the
    shared particle count between consecutive snapshots.  Requires the
    ensemble to have particle files.
    """
    graph = nx.DiGraph()
    steps = ensemble.timesteps
    previous = None
    for step in steps:
        particles = ensemble.read(run, step, "particles", ["id", "fof_halo_tag"])
        tags_present = np.unique(particles["fof_halo_tag"])
        for tag in tags_present[tags_present >= 0]:
            graph.add_node((step, int(tag)))
        if previous is not None:
            prev_step, prev = previous
            matches = match_halos(
                prev["id"], prev["fof_halo_tag"],
                particles["id"], particles["fof_halo_tag"],
                min_shared=min_shared,
            )
            for i in range(matches.num_rows):
                graph.add_edge(
                    (prev_step, int(matches["tag_a"][i])),
                    (step, int(matches["tag_b"][i])),
                    shared=int(matches["shared"][i]),
                    fraction=float(matches["fraction_of_a"][i]),
                )
        previous = (step, particles)
    return graph


def main_progenitor_line(graph: nx.DiGraph, final_node: tuple[int, int]) -> list[tuple[int, int]]:
    """Walk backwards from a halo, always taking the largest-overlap edge."""
    line = [final_node]
    current = final_node
    while True:
        preds = list(graph.predecessors(current))
        if not preds:
            break
        current = max(preds, key=lambda p: graph.edges[p, current]["shared"])
        line.append(current)
    return line[::-1]
