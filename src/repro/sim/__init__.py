"""Synthetic CRK-HACC-like cosmological ensemble substrate.

The paper evaluates InferA on an ensemble of HACC hydrodynamics runs (five
varied sub-grid parameters, 625 snapshots, ~350 GB per run).  That data is
not available offline, so this package generates a *structurally faithful*
miniature: the same entity kinds (dark-matter particles, friends-of-friends
halos with spherical-overdensity masses, galaxies), the same column naming
scheme (``fof_halo_count``, ``sod_halo_MGas500c``, ...), the same
run × timestep file hierarchy in a GenericIO-like format, and sub-grid
parameters that actually modulate the physics relations the evaluation
questions probe (SMHM relation and its intrinsic scatter vs. seed mass,
gas-mass-fraction–mass relation slope/normalization evolution, etc.).
"""

from repro.sim.subgrid import SubgridParams, latin_hypercube_design
from repro.sim.cosmology import Cosmology, DEFAULT_COSMOLOGY
from repro.sim.particles import ParticleField, generate_particles
from repro.sim.fof import friends_of_friends
from repro.sim.halos import build_halo_catalog, halo_catalog_from_fof
from repro.sim.galaxies import build_galaxy_catalog
from repro.sim.ensemble import (
    EnsembleSpec,
    Ensemble,
    append_snapshot,
    generate_ensemble,
)
from repro.sim.tracking import match_halos, halo_lineage_graph, main_progenitor_line
from repro.sim.schema import (
    COLUMN_DESCRIPTIONS,
    FILE_STRUCTURE_DESCRIPTIONS,
    ENTITY_KINDS,
    columns_for,
)

__all__ = [
    "SubgridParams",
    "latin_hypercube_design",
    "Cosmology",
    "DEFAULT_COSMOLOGY",
    "ParticleField",
    "generate_particles",
    "friends_of_friends",
    "build_halo_catalog",
    "halo_catalog_from_fof",
    "build_galaxy_catalog",
    "EnsembleSpec",
    "Ensemble",
    "append_snapshot",
    "generate_ensemble",
    "match_halos",
    "halo_lineage_graph",
    "main_progenitor_line",
    "COLUMN_DESCRIPTIONS",
    "FILE_STRUCTURE_DESCRIPTIONS",
    "ENTITY_KINDS",
    "columns_for",
]
