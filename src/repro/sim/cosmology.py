"""Background cosmology helpers.

Just enough FLRW machinery to make ensemble snapshots evolve sensibly:
scale factor per timestep, linear growth factor (fitting form of Carroll,
Press & Turner 1992) for halo mass growth, Hubble rate and critical
density for spherical-overdensity radii.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# gravitational constant in Mpc (km/s)^2 / Msun
_G_MPC = 4.30091e-9


@dataclass(frozen=True)
class Cosmology:
    """Flat LCDM background."""

    omega_m: float = 0.31
    omega_l: float = 0.69
    h: float = 0.677
    sigma8: float = 0.81
    z_initial: float = 10.0
    final_step: int = 624

    def scale_factor(self, step: int | np.ndarray) -> np.ndarray | float:
        """Scale factor of a HACC timestep.

        HACC integrates from ``z_initial`` to z=0 in ``final_step`` equal
        steps in ``a``; step 624 is the present day (a = 1).
        """
        step = np.asarray(step, dtype=np.float64)
        a_init = 1.0 / (1.0 + self.z_initial)
        a = a_init + (1.0 - a_init) * step / self.final_step
        return float(a) if a.ndim == 0 else a

    def redshift(self, step: int | np.ndarray) -> np.ndarray | float:
        a = self.scale_factor(step)
        return 1.0 / a - 1.0

    def e_of_a(self, a: np.ndarray | float) -> np.ndarray | float:
        """Dimensionless Hubble rate E(a) = H(a)/H0 for flat LCDM."""
        a = np.asarray(a, dtype=np.float64)
        e = np.sqrt(self.omega_m / a**3 + self.omega_l)
        return float(e) if e.ndim == 0 else e

    def critical_density(self, a: float) -> float:
        """Critical density at scale factor ``a`` in Msun h^2 / Mpc^3."""
        h0 = 100.0  # km/s / (Mpc/h)
        e2 = float(self.e_of_a(a)) ** 2
        return 3.0 * (h0**2) * e2 / (8.0 * np.pi * _G_MPC)

    def growth_factor(self, a: float) -> float:
        """Normalized linear growth factor D(a)/D(1) (CPT92 fitting form)."""

        def g(av: float) -> float:
            om = self.omega_m / (av**3 * float(self.e_of_a(av)) ** 2)
            ol = self.omega_l / float(self.e_of_a(av)) ** 2
            return 2.5 * om / (om ** (4.0 / 7.0) - ol + (1 + om / 2) * (1 + ol / 70))

        return a * g(a) / (1.0 * g(1.0))

    def r500c(self, m500c: np.ndarray, a: float) -> np.ndarray:
        """Spherical-overdensity radius R500c in Mpc/h from M500c."""
        rho_c = self.critical_density(a)
        m = np.asarray(m500c, dtype=np.float64)
        return (3.0 * m / (4.0 * np.pi * 500.0 * rho_c)) ** (1.0 / 3.0)


DEFAULT_COSMOLOGY = Cosmology()
