"""Ensemble generation and the on-disk run × timestep hierarchy.

Directory layout (mirrors the HACC data portal structure the paper's
data-loading agent navigates)::

    <root>/
      manifest.json                  # ensemble file-structure dictionary
      run_000/
        step_000/particles.gio
        step_000/halos.gio
        step_000/galaxies.gio
        step_124/...
      run_001/...

Halo tags are stable across timesteps within a run (enabling the paper's
halo-tracking tool), masses follow a smooth accretion history, and small
halos emerge over cosmic time.  Each run carries its sub-grid parameter
vector in every file's attrs and in the manifest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.frame import Frame
from repro.gio import GIOFile, write_gio
from repro.sim.cosmology import Cosmology, DEFAULT_COSMOLOGY
from repro.sim.galaxies import build_galaxy_catalog
from repro.sim.halos import build_halo_catalog
from repro.sim.particles import PARTICLE_MASS, sample_halo_masses
from repro.sim.schema import COLUMN_DESCRIPTIONS, FILE_STRUCTURE_DESCRIPTIONS
from repro.sim.subgrid import SubgridParams, latin_hypercube_design
from repro.util.rngs import SeedSequenceFactory

DEFAULT_TIMESTEPS = (0, 124, 249, 374, 498, 624)


@dataclass(frozen=True)
class EnsembleSpec:
    """Parameters of a synthetic ensemble.

    ``n_particles`` is per snapshot; the defaults generate a laptop-scale
    ensemble in seconds while preserving the full file hierarchy.
    """

    n_runs: int = 4
    timesteps: tuple[int, ...] = DEFAULT_TIMESTEPS
    n_particles: int = 4000
    box_size: float = 64.0
    seed: int = 20250
    write_particles: bool = True
    n_halos: int | None = None
    params: tuple[SubgridParams, ...] | None = None
    cosmology: Cosmology = field(default_factory=lambda: DEFAULT_COSMOLOGY)

    def validate(self) -> None:
        if self.n_runs < 1:
            raise ValueError("n_runs must be >= 1")
        if not self.timesteps:
            raise ValueError("timesteps must be non-empty")
        if any(t < 0 or t > self.cosmology.final_step for t in self.timesteps):
            raise ValueError("timesteps must lie in [0, final_step]")
        if sorted(self.timesteps) != list(self.timesteps):
            raise ValueError("timesteps must be increasing")
        if self.params is not None and len(self.params) != self.n_runs:
            raise ValueError("params must have one entry per run")


def _mass_history(final_mass: np.ndarray, z: float) -> np.ndarray:
    """Smooth accretion history M(z) = M_final * exp(-0.6 z) (1+z)^0.2."""
    return final_mass * np.exp(-0.6 * z) * (1.0 + z) ** 0.2


def _run_truth(spec: EnsembleSpec, seeds: SeedSequenceFactory, run: int, params) -> dict:
    """Final-time halo truth + particle population for one run.

    Everything here is a pure function of ``(spec.seed, run)`` through
    dedicated seed streams, which is what makes live ingestion exact:
    re-deriving the truth in a later process and writing one more step
    yields bytes identical to having generated that step up front.
    """
    run_rng = seeds.stream("run", run)
    # final-time halo truth for this run (tags stable across steps)
    n_halos = spec.n_halos or max(24, spec.n_particles // 150)
    final_mass = sample_halo_masses(n_halos, run_rng)
    centers = run_rng.uniform(0.0, spec.box_size, size=(n_halos, 3))
    bulk_v = run_rng.normal(0.0, 250.0, size=(n_halos, 3))
    tags = np.arange(n_halos, dtype=np.int64) + run * 1_000_000

    truth = {
        "params": params,
        "final_mass": final_mass,
        "centers": centers,
        "bulk_v": bulk_v,
        "tags": tags,
        "affiliation": None,
    }
    # persistent particle population: each particle is affiliated with
    # one halo (or the field) for the whole run, so particle IDs are
    # meaningful across snapshots and particle-overlap halo tracking
    # works exactly as it does on real HACC outputs
    if spec.write_particles:
        pop_rng = seeds.stream("run", run, "population")
        weights = final_mass / final_mass.sum()
        n_clustered = int(spec.n_particles * 0.75)
        affiliation = np.full(spec.n_particles, -1, dtype=np.int64)
        affiliation[:n_clustered] = pop_rng.choice(
            n_halos, size=n_clustered, p=weights
        )
        pop_rng.shuffle(affiliation)
        truth["affiliation"] = affiliation
    return truth


def _write_run_step(
    root: Path, spec: EnsembleSpec, seeds: SeedSequenceFactory, run: int,
    truth: dict, step: int,
) -> dict:
    """Write one (run, step) snapshot's files; return its manifest entry."""
    params = truth["params"]
    final_mass, centers, bulk_v, tags = (
        truth["final_mass"], truth["centers"], truth["bulk_v"], truth["tags"]
    )
    run_dir = root / f"run_{run:03d}"
    a = float(spec.cosmology.scale_factor(step))
    z = 1.0 / a - 1.0
    masses_t = _mass_history(final_mass, z)
    exists = masses_t >= 5 * PARTICLE_MASS
    drift = bulk_v * (a - 1.0) * 0.004  # small comoving drift
    centers_t = (centers + drift) % spec.box_size

    step_rng = seeds.stream("run", run, "step", step)
    halos = build_halo_catalog(
        tags[exists],
        masses_t[exists],
        centers_t[exists],
        bulk_v[exists],
        params,
        spec.cosmology,
        step,
        step_rng,
    )
    galaxies = build_galaxy_catalog(halos, params, a, step_rng)

    step_dir = run_dir / f"step_{step:03d}"
    attrs = {
        "run": run,
        "step": step,
        "scale_factor": a,
        "redshift": z,
        **{f"param_{k}": v for k, v in params.as_dict().items()},
    }
    files: dict[str, dict] = {}
    nbytes = write_gio(step_dir / "halos.gio", {n: halos.column(n) for n in halos.columns}, attrs)
    files["halos"] = {"file": "halos.gio", "nbytes": nbytes, "rows": halos.num_rows}
    nbytes = write_gio(
        step_dir / "galaxies.gio",
        {n: galaxies.column(n) for n in galaxies.columns},
        attrs,
    )
    files["galaxies"] = {"file": "galaxies.gio", "nbytes": nbytes, "rows": galaxies.num_rows}

    if spec.write_particles:
        particle_cols = _persistent_particle_snapshot(
            truth["affiliation"],
            exists,
            masses_t,
            centers_t,
            bulk_v,
            tags,
            spec.box_size,
            seeds.stream("run", run, "particles", step),
        )
        nbytes = write_gio(step_dir / "particles.gio", particle_cols, attrs)
        files["particles"] = {
            "file": "particles.gio",
            "nbytes": nbytes,
            "rows": len(particle_cols["id"]),
        }

    return {"step": step, "path": step_dir.name, "files": files}


def _publish_manifest(root: Path, manifest: dict) -> None:
    """Atomic manifest publish — the commit point of ensemble mutation.

    Live ingestion appends snapshots while serve sessions read; a reader
    must see either the old or the new manifest, never a torn one.
    Reuses the write-verify-retry publish the DB catalog hardens against
    ``storage.torn_write``.
    """
    from repro.db.storage import publish_json_verified

    publish_json_verified(root, "manifest.json", manifest, what="ensemble manifest", indent=1)


def generate_ensemble(root: str | Path, spec: EnsembleSpec) -> "Ensemble":
    """Generate and write the full ensemble; returns an opened handle."""
    spec.validate()
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    seeds = SeedSequenceFactory(spec.seed)

    params_list = (
        list(spec.params)
        if spec.params is not None
        else latin_hypercube_design(spec.n_runs, seeds.stream("design"))
    )

    manifest: dict = {
        "kind": "hacc-ensemble",
        "version": 1,
        "n_runs": spec.n_runs,
        "timesteps": list(spec.timesteps),
        "box_size": spec.box_size,
        "n_particles": spec.n_particles,
        # generator state: what a later process needs to re-derive the
        # per-run truth streams and extend the ensemble deterministically
        # (params are recorded per run, so custom designs survive too)
        "generator": {
            "seed": spec.seed,
            "n_halos": spec.n_halos,
            "write_particles": spec.write_particles,
        },
        "structure": FILE_STRUCTURE_DESCRIPTIONS,
        "column_descriptions": COLUMN_DESCRIPTIONS,
        "runs": [],
    }

    for run in range(spec.n_runs):
        params = params_list[run]
        run_dir = root / f"run_{run:03d}"
        truth = _run_truth(spec, seeds, run, params)
        run_entry: dict = {
            "run": run,
            "path": run_dir.name,
            "params": params.as_dict(),
            "steps": [],
        }
        for step in spec.timesteps:
            run_entry["steps"].append(
                _write_run_step(root, spec, seeds, run, truth, step)
            )
        manifest["runs"].append(run_entry)

    _publish_manifest(root, manifest)
    return Ensemble(root)


def append_snapshot(root: str | Path, step: int) -> "Ensemble":
    """Deterministically extend a live ensemble with one more timestep.

    Re-derives each run's truth from the manifest's recorded generator
    state and writes the new snapshot's files for every run, then commits
    via a single atomic manifest publish — the files of
    ``generate_ensemble(steps + [step])`` and ``generate_ensemble(steps)``
    + ``append_snapshot(step)`` are byte-identical, so a query pinned to
    either manifest version has an exact quiescent twin.

    A crash before the manifest publish leaves only orphan step files the
    manifest never references; retrying the append overwrites them.
    """
    root = Path(root)
    ens = Ensemble(root)
    manifest = json.loads(json.dumps(ens.manifest))  # private working copy
    gen = manifest.get("generator")
    if gen is None:
        raise ValueError(
            f"ensemble at {root} was written by an older version (manifest has no "
            "generator state) and cannot be extended"
        )
    timesteps = list(manifest["timesteps"])
    if step in timesteps:
        raise ValueError(f"step {step} already present in {timesteps}")
    if timesteps and step < timesteps[-1]:
        raise ValueError(f"step {step} must follow the last step {timesteps[-1]}")
    spec = EnsembleSpec(
        n_runs=int(manifest["n_runs"]),
        timesteps=tuple(timesteps) + (int(step),),
        n_particles=int(manifest["n_particles"]),
        box_size=float(manifest["box_size"]),
        seed=int(gen["seed"]),
        write_particles=bool(gen.get("write_particles", True)),
        n_halos=gen.get("n_halos"),
    )
    spec.validate()
    seeds = SeedSequenceFactory(spec.seed)

    from repro import faults

    for run_entry in manifest["runs"]:
        run = int(run_entry["run"])
        params = SubgridParams(**run_entry["params"])
        truth = _run_truth(spec, seeds, run, params)
        step_entry = _write_run_step(root, spec, seeds, run, truth, int(step))
        if faults.fire_ingest_kill(faults.INGEST_KILL_APPLY):
            from repro.db.errors import IngestKilled

            raise IngestKilled(
                "ensemble-append",
                f"run {run} step {step} written, manifest publish pending",
            )
        run_entry["steps"].append(step_entry)

    manifest["timesteps"] = timesteps + [int(step)]
    manifest["version"] = int(manifest.get("version", 1)) + 1
    _publish_manifest(root, manifest)
    return Ensemble(root)


def _persistent_particle_snapshot(
    affiliation: np.ndarray,
    exists: np.ndarray,
    masses_t: np.ndarray,
    centers_t: np.ndarray,
    bulk_v: np.ndarray,
    tags: np.ndarray,
    box_size: float,
    rng: np.random.Generator,
) -> dict[str, np.ndarray]:
    """One snapshot of the run's persistent particle population.

    Particle identities (and halo affiliations) are fixed for the run;
    only positions/velocities are realized per snapshot.  Particles whose
    halo has not emerged yet are field particles at that snapshot.
    """
    n = len(affiliation)
    positions = rng.uniform(0.0, box_size, size=(n, 3))
    velocities = rng.normal(0.0, 80.0, size=(n, 3))
    phi = np.zeros(n)

    member = (affiliation >= 0) & exists[np.maximum(affiliation, 0)]
    halo_of = affiliation[member]
    r_scale = 0.8 * (masses_t / 1e13) ** (1.0 / 3.0)
    u = rng.uniform(0.0, 1.0, size=int(member.sum()))
    radii = r_scale[halo_of] * u**1.5
    directions = rng.normal(size=(int(member.sum()), 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    positions[member] = centers_t[halo_of] + radii[:, None] * directions
    sigma_v = 120.0 * (masses_t / 1e13) ** (1.0 / 3.0)
    velocities[member] = bulk_v[halo_of] + rng.normal(
        size=(int(member.sum()), 3)
    ) * sigma_v[halo_of, None]
    phi[member] = -masses_t[halo_of] / (radii + 0.05) / 1e13

    particle_tag = np.full(n, -1, dtype=np.int64)
    particle_tag[member] = tags[halo_of]
    return {
        "id": np.arange(n, dtype=np.int64),
        "x": positions[:, 0] % box_size,
        "y": positions[:, 1] % box_size,
        "z": positions[:, 2] % box_size,
        "vx": velocities[:, 0],
        "vy": velocities[:, 1],
        "vz": velocities[:, 2],
        "mass": np.full(n, PARTICLE_MASS),
        "phi": phi,
        "fof_halo_tag": particle_tag,
    }


class Ensemble:
    """Read-only handle over a generated ensemble directory.

    A handle parses the manifest once; with live ingestion appending
    snapshots, :meth:`reload` re-reads it (wholesale reference swap, so
    concurrent readers holding the old dict keep a consistent view) and
    :meth:`pinned` freezes the currently-parsed manifest into a cheap
    immutable view for the duration of a request.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        manifest_path = self.root / "manifest.json"
        if not manifest_path.exists():
            raise FileNotFoundError(f"{self.root} is not an ensemble (no manifest.json)")
        self.manifest: dict = json.loads(manifest_path.read_text())

    def reload(self) -> "Ensemble":
        """Re-read the manifest (picks up snapshots committed since open)."""
        manifest_path = self.root / "manifest.json"
        self.manifest = json.loads(manifest_path.read_text())
        return self

    def pinned(self) -> "Ensemble":
        """A snapshot-isolated view over the manifest as currently parsed.

        The returned handle shares this handle's manifest *object*;
        because :meth:`reload` swaps the reference rather than mutating in
        place, the pinned view keeps serving the same catalog of runs and
        steps no matter how many snapshots land after the pin.
        """
        view = object.__new__(Ensemble)
        view.root = self.root
        view.manifest = self.manifest
        return view

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic manifest version; bumped by every committed snapshot
        append (1 for ensembles written before versions existed)."""
        return int(self.manifest.get("version", 1))

    @property
    def n_runs(self) -> int:
        return int(self.manifest["n_runs"])

    @property
    def timesteps(self) -> list[int]:
        return list(self.manifest["timesteps"])

    @property
    def box_size(self) -> float:
        return float(self.manifest["box_size"])

    def params_for(self, run: int) -> SubgridParams:
        return SubgridParams(**self.manifest["runs"][run]["params"])

    def entity_kinds(self, run: int = 0, step: int | None = None) -> list[str]:
        step = step if step is not None else self.timesteps[0]
        entry = self._step_entry(run, step)
        return list(entry["files"])

    def _step_entry(self, run: int, step: int) -> dict:
        if not (0 <= run < self.n_runs):
            raise IndexError(f"run {run} out of range [0, {self.n_runs})")
        for entry in self.manifest["runs"][run]["steps"]:
            if entry["step"] == step:
                return entry
        raise KeyError(f"run {run} has no step {step}; available: {self.timesteps}")

    def file_path(self, run: int, step: int, kind: str) -> Path:
        entry = self._step_entry(run, step)
        if kind not in entry["files"]:
            raise KeyError(f"no {kind!r} file at run {run} step {step}")
        return (
            self.root
            / self.manifest["runs"][run]["path"]
            / entry["path"]
            / entry["files"][kind]["file"]
        )

    def open_file(self, run: int, step: int, kind: str) -> GIOFile:
        return GIOFile(self.file_path(run, step, kind))

    def read(self, run: int, step: int, kind: str, columns: list[str] | None = None) -> Frame:
        return self.open_file(run, step, kind).read(columns)

    def total_data_bytes(self) -> int:
        """Total payload bytes across the ensemble (denominator of the
        paper's <0.35% storage-overhead claim)."""
        total = 0
        for run_entry in self.manifest["runs"]:
            for step_entry in run_entry["steps"]:
                for meta in step_entry["files"].values():
                    total += int(meta["nbytes"])
        return total

    def describe(self) -> str:
        """Human-readable summary used by examples and the data loader."""
        lines = [
            f"Ensemble at {self.root}",
            f"  runs: {self.n_runs}",
            f"  timesteps: {self.timesteps}",
            f"  total bytes: {self.total_data_bytes():,}",
        ]
        for run_entry in self.manifest["runs"][:4]:
            p = run_entry["params"]
            lines.append(
                f"  run {run_entry['run']}: f_SN={p['f_SN']:.2f} "
                f"log_vSN={p['log_vSN']:.2f} log_TAGN={p['log_TAGN']:.2f} "
                f"beta_BH={p['beta_BH']:.2f} M_seed={p['M_seed']:.2e}"
            )
        if self.n_runs > 4:
            lines.append(f"  ... ({self.n_runs - 4} more runs)")
        return "\n".join(lines)
