"""Declarative SLO gates over traces, metrics, cost ledgers, and benches.

A policy is a plain dict (authored inline or as JSON) of budgets:

* ``trace``      — whole-trace invariants: open/error span ceilings,
  token and USD spend ceilings (spend prefers the cost ledger when one
  is available, else the ``llm.chat`` span counters);
* ``phases``     — per-phase budgets keyed by the span-name prefix used
  by :func:`repro.obs.export.phase_rollups` (``max_total_s`` /
  ``max_errors`` / ``max_spans``);
* ``histograms`` — true-extremes gates on metrics snapshots using the
  streaming min/max tracked by :class:`repro.obs.metrics.Histogram`
  (``min_p0`` / ``max_p100`` / ``max_underflow``);
* ``bench``      — gates on ``benchmarks/output/BENCH_*.json`` perf
  artifacts: each rule names a file, a dot-path key, and a ``max`` or
  ``min`` bound.  Files absent on this machine are skipped unless the
  rule says ``"required": true`` — CI has the artifacts, a laptop may
  not.

Every budget is opt-in; :meth:`SLOPolicy.default` carries only the
machine-independent invariants (no span left open, a generous token
ceiling, and the telemetry-overhead ratio gate when ``BENCH_obs.json``
is present), so ``repro slo check`` is useful with zero configuration
and strict exactly where a config says to be.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.export import phase_rollups, token_totals

# spans-per-trace and wall-second budgets are inherently workload-shaped,
# so the zero-config policy only pins what must hold on any machine
DEFAULT_POLICY: dict[str, Any] = {
    "trace": {
        "max_open_spans": 0,
        "max_total_tokens": 2_000_000,
    },
    "phases": {},
    "histograms": {},
    "bench": [
        {
            "file": "BENCH_obs.json",
            "key": "site.overhead_ratio",
            "max": 1.02,
        },
        # serving-layer load profile: the server must make progress with
        # zero failed requests, shed excess load honestly (backpressure is
        # measured, not gated), and keep tail latency bounded.  The p99
        # bound is generous because the benchmark's simulated LLM latency
        # dominates it; the regression it catches is queuing collapse.
        {
            "file": "BENCH_serve.json",
            "key": "load.qps",
            "min": 0.1,
        },
        {
            "file": "BENCH_serve.json",
            "key": "load.failed_requests",
            "max": 0,
        },
        {
            "file": "BENCH_serve.json",
            "key": "load.p99_s",
            "max": 30.0,
        },
        # sandbox-fleet gates: four workers must beat one single-server
        # baseline by a real margin (the CI smoke runs --quick, so the
        # policy floor sits below the full run's asserted 2x), every
        # request must complete with byte-identical results, and a healthy
        # benchmark run must not burn through its respawn budget
        {
            "file": "BENCH_sandbox.json",
            "key": "fleet.speedup_4w",
            "min": 1.2,
        },
        {
            "file": "BENCH_sandbox.json",
            "key": "fleet.failed",
            "max": 0,
        },
        {
            "file": "BENCH_sandbox.json",
            "key": "fleet.mismatches",
            "max": 0,
        },
        {
            "file": "BENCH_sandbox.json",
            "key": "fleet.respawns",
            "max": 2,
        },
        # live-ingestion gates: queries racing the ingester must stay
        # within 10% of quiescent p95 (the snapshot-isolation design
        # promises readers never block on the writer), every raced query
        # must be byte-identical to its pinned-snapshot baseline, the
        # writer must make real progress, and crash recovery must be
        # bounded and lossless
        {
            "file": "BENCH_ingest.json",
            "key": "ingest.concurrent_p95_ratio",
            "max": 1.10,
        },
        {
            "file": "BENCH_ingest.json",
            "key": "ingest.mismatches",
            "max": 0,
        },
        {
            "file": "BENCH_ingest.json",
            "key": "ingest.append_rows_per_s",
            "min": 100.0,
        },
        {
            "file": "BENCH_ingest.json",
            "key": "ingest.recovery_s",
            "max": 5.0,
        },
        {
            "file": "BENCH_ingest.json",
            "key": "ingest.recovery_lost_rows",
            "max": 0,
        },
    ],
}


@dataclass
class SLOCheck:
    """One evaluated budget: what was measured against what bound."""

    rule: str
    observed: Any
    bound: str          # e.g. '<= 1.02' or '>= 0'
    ok: bool
    skipped: bool = False
    note: str = ""

    def render(self) -> str:
        if self.skipped:
            return f"SKIP  {self.rule}: {self.note}"
        mark = "ok  " if self.ok else "FAIL"
        return f"{mark}  {self.rule}: observed {self.observed} (budget {self.bound})"


@dataclass
class SLOReport:
    """The outcome of one policy evaluation."""

    checks: list[SLOCheck] = field(default_factory=list)

    @property
    def violations(self) -> list[SLOCheck]:
        return [c for c in self.checks if not c.ok and not c.skipped]

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [c.render() for c in self.checks]
        verdict = "SLO: PASS" if self.ok else f"SLO: FAIL ({len(self.violations)} violation(s))"
        return "\n".join([*lines, verdict])


def _resolve(doc: Any, dotted: str) -> Any:
    """Walk ``a.b.c`` through nested dicts; raises KeyError when absent."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(dotted)
        node = node[part]
    return node


class SLOPolicy:
    """A set of declarative budgets, checkable against run artifacts."""

    def __init__(self, doc: dict[str, Any]):
        self.doc = doc

    @classmethod
    def default(cls) -> "SLOPolicy":
        return cls(json.loads(json.dumps(DEFAULT_POLICY)))

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "SLOPolicy":
        return cls(dict(doc))

    @classmethod
    def from_json(cls, path: str | Path) -> "SLOPolicy":
        return cls(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    def check(
        self,
        spans: list[dict[str, Any]],
        metrics: dict[str, Any] | None = None,
        cost: dict[str, Any] | None = None,
        bench_dir: str | Path | None = None,
    ) -> SLOReport:
        """Evaluate every budget in the policy; returns the full report.

        ``metrics`` is a :meth:`MetricsRegistry.snapshot` document,
        ``cost`` a :meth:`CostLedger.as_dict` document; both optional —
        budgets that need an absent artifact are reported as skipped.
        """
        report = SLOReport()
        self._check_trace(report, spans, cost)
        self._check_phases(report, spans)
        self._check_histograms(report, metrics)
        self._check_bench(report, bench_dir)
        return report

    # ------------------------------------------------------------------
    def _check_trace(
        self,
        report: SLOReport,
        spans: list[dict[str, Any]],
        cost: dict[str, Any] | None,
    ) -> None:
        rules = self.doc.get("trace", {})
        if not rules:
            return
        open_spans = sum(1 for s in spans if s.get("status") == "open")
        error_spans = sum(1 for s in spans if s.get("status") == "error")
        # the ledger is exact per-model spend; the span counters are the
        # fallback when the run wasn't metered
        if cost and cost.get("totals"):
            tokens = int(cost["totals"].get("total_tokens", 0))
            usd = float(cost["totals"].get("cost_usd", 0.0))
        else:
            tokens = token_totals(spans)["total_tokens"]
            usd = None
        if "max_open_spans" in rules:
            limit = rules["max_open_spans"]
            report.checks.append(SLOCheck(
                "trace.open_spans", open_spans, f"<= {limit}", open_spans <= limit))
        if "max_error_spans" in rules:
            limit = rules["max_error_spans"]
            report.checks.append(SLOCheck(
                "trace.error_spans", error_spans, f"<= {limit}", error_spans <= limit))
        if "max_total_tokens" in rules:
            limit = rules["max_total_tokens"]
            report.checks.append(SLOCheck(
                "trace.total_tokens", tokens, f"<= {limit}", tokens <= limit))
        if "max_cost_usd" in rules:
            limit = rules["max_cost_usd"]
            if usd is None:
                report.checks.append(SLOCheck(
                    "trace.cost_usd", None, f"<= {limit}", True,
                    skipped=True, note="no cost ledger recorded for this run"))
            else:
                report.checks.append(SLOCheck(
                    "trace.cost_usd", round(usd, 6), f"<= {limit}", usd <= limit))

    def _check_phases(self, report: SLOReport, spans: list[dict[str, Any]]) -> None:
        budgets = self.doc.get("phases", {})
        if not budgets:
            return
        rollups = phase_rollups(spans)
        for phase, rules in sorted(budgets.items()):
            agg = rollups.get(phase, {"spans": 0, "total_s": 0.0, "errors": 0})
            if "max_total_s" in rules:
                limit = rules["max_total_s"]
                observed = round(agg["total_s"], 6)
                report.checks.append(SLOCheck(
                    f"phase.{phase}.total_s", observed, f"<= {limit}",
                    agg["total_s"] <= limit))
            if "max_errors" in rules:
                limit = rules["max_errors"]
                report.checks.append(SLOCheck(
                    f"phase.{phase}.errors", int(agg["errors"]), f"<= {limit}",
                    agg["errors"] <= limit))
            if "max_spans" in rules:
                limit = rules["max_spans"]
                report.checks.append(SLOCheck(
                    f"phase.{phase}.spans", int(agg["spans"]), f"<= {limit}",
                    agg["spans"] <= limit))

    def _check_histograms(
        self, report: SLOReport, metrics: dict[str, Any] | None
    ) -> None:
        budgets = self.doc.get("histograms", {})
        if not budgets:
            return
        hists = (metrics or {}).get("histograms", {})
        for name, rules in sorted(budgets.items()):
            doc = hists.get(name)
            if doc is None or not doc.get("count"):
                report.checks.append(SLOCheck(
                    f"hist.{name}", None, "", True,
                    skipped=True, note="histogram absent or empty"))
                continue
            # streaming extremes give true p0/p100, not bucket edges
            if "max_p100" in rules:
                limit = rules["max_p100"]
                observed = doc.get("max")
                report.checks.append(SLOCheck(
                    f"hist.{name}.p100", observed, f"<= {limit}",
                    observed is not None and observed <= limit))
            if "min_p0" in rules:
                limit = rules["min_p0"]
                observed = doc.get("min")
                report.checks.append(SLOCheck(
                    f"hist.{name}.p0", observed, f">= {limit}",
                    observed is not None and observed >= limit))
            if "max_underflow" in rules:
                limit = rules["max_underflow"]
                observed = int(doc.get("underflow", 0))
                report.checks.append(SLOCheck(
                    f"hist.{name}.underflow", observed, f"<= {limit}",
                    observed <= limit))

    def _check_bench(self, report: SLOReport, bench_dir: str | Path | None) -> None:
        rules = self.doc.get("bench", [])
        if not rules:
            return
        for rule in rules:
            file_name = rule.get("file", "?")
            key = rule.get("key", "?")
            label = f"bench.{file_name}:{key}"
            if bench_dir is None:
                report.checks.append(SLOCheck(
                    label, None, "", True, skipped=True, note="no bench dir given"))
                continue
            path = Path(bench_dir) / file_name
            if not path.is_file():
                if rule.get("required"):
                    report.checks.append(SLOCheck(
                        label, None, "present", False, note=f"{path} missing"))
                else:
                    report.checks.append(SLOCheck(
                        label, None, "", True, skipped=True,
                        note=f"{file_name} not produced on this machine"))
                continue
            try:
                observed = _resolve(json.loads(path.read_text()), key)
            except (KeyError, json.JSONDecodeError) as exc:
                report.checks.append(SLOCheck(
                    label, None, "readable", False,
                    note=f"cannot read {key} from {path}: {exc}"))
                continue
            bounds: list[str] = []
            ok = True
            if "max" in rule:
                bounds.append(f"<= {rule['max']}")
                ok = ok and observed <= rule["max"]
            if "min" in rule:
                bounds.append(f">= {rule['min']}")
                ok = ok and observed >= rule["min"]
            report.checks.append(SLOCheck(label, observed, " and ".join(bounds) or "any", ok))


def check_workdir(
    path: str | Path,
    policy: SLOPolicy | None = None,
    bench_dir: str | Path | None = None,
) -> SLOReport:
    """Check a trace file or harness workdir against a policy.

    For a workdir this picks up the artifacts the harness leaves beside
    the trace: ``metrics.json`` (histogram gates) and ``cost_ledger.json``
    (spend gates).  For a bare trace file those gates are skipped.
    """
    from repro.obs.export import read_spans

    policy = policy or SLOPolicy.default()
    spans = read_spans(path)
    base = Path(path)
    side_dir = base if base.is_dir() else base.parent
    metrics = _load_optional(side_dir / "metrics.json")
    cost = _load_optional(side_dir / "cost_ledger.json")
    return policy.check(spans, metrics=metrics, cost=cost, bench_dir=bench_dir)


def _load_optional(path: Path) -> dict[str, Any] | None:
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None
