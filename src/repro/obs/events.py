"""Streaming telemetry event bus: bounded, drop-counting pub/sub.

PR 2 made every run *inspectable after the fact* — spans land in one
``trace.jsonl`` when the run is over.  This module makes the same
telemetry *observable while it happens*: the tracer publishes
``span_start``/``span_end`` events and the metrics layer publishes
``counter`` events onto an ambient :class:`EventBus`, whose subscribers
include

* :class:`JsonlSink` — the trace file written incrementally, one span
  per line at span end, instead of in one burst at end of run;
* :class:`LiveRenderer` — per-step progress lines on stderr for
  ``repro eval --live`` / ``repro query --live``;
* any callable attached with :meth:`EventBus.subscribe` — the pluggable
  hook the future ``repro serve`` mode streams session progress through.

Design constraints, matching the tracer's:

* **near-zero overhead when nobody is listening** — instrumented code
  pays one module-global read and an identity check per span/counter
  when no bus is active (:data:`NULL_BUS`);
* **bounded and drop-counting** — ``publish`` appends to a bounded
  queue; when a burst outruns the queue, the newest events are dropped
  and counted (``bus.dropped``) rather than blocking the traced work or
  growing without bound;
* **subscriber faults never propagate** — a raising subscriber is
  counted (``bus.subscriber_errors``) and skipped, never allowed to fail
  the run it is observing;
* **process-wide and thread-safe** — the ambient bus is a module global
  (not a contextvar) so events published from SQL morsel threads and
  parallel-viz threads reach the same bus as the coordinator's, with a
  lock serializing the queue.  Forked harness workers deliberately
  *reset* the ambient bus (``os.register_at_fork``): a child publishing
  into an inherited sink would interleave writes into the parent's file
  descriptor.  Worker spans instead ship back with each
  :class:`~repro.eval.harness.RunOutcome` and are re-published on the
  parent by :func:`replay_spans`, preserving parenting because span
  dicts carry their ``parent_id``.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

SPAN_START = "span_start"
SPAN_END = "span_end"
COUNTER = "counter"


@dataclass(slots=True)
class Event:
    """One telemetry event.

    ``data`` is a span dict for span events (the same serialized form
    exporters consume) or ``{"value": ..., "span_id": ...}`` for counter
    events, where ``span_id`` names the enclosing span when the publisher
    knows it (the SQL engine's morsel events use this for parenting).

    A slotted, non-frozen dataclass: events are constructed on the
    publish hot path (every span start/end and counter), where a frozen
    dataclass pays ``object.__setattr__`` per field.  Treat instances as
    immutable by convention.
    """

    kind: str
    name: str
    data: dict[str, Any] = field(default_factory=dict)
    thread_id: int = 0

    @property
    def span_id(self) -> str | None:
        return self.data.get("span_id")


Subscriber = Callable[[Event], None]


class NullBus:
    """The ambient default: swallows everything, allocates nothing."""

    __slots__ = ()
    dropped = 0
    published = 0

    def publish(self, event: Event) -> None:
        pass

    def publish_span_start(self, span_doc: dict[str, Any]) -> None:
        pass

    def publish_span_end(self, span_doc: dict[str, Any]) -> None:
        pass

    def publish_counter(self, name: str, value: float = 1, span_id: str | None = None) -> None:
        pass


NULL_BUS = NullBus()


class EventBus:
    """Bounded-queue, drop-counting pub/sub for telemetry events.

    ``publish`` enqueues under a lock and then pumps: queued events are
    dispatched to every subscriber in publication order.  Only one
    thread pumps at a time — a publisher arriving while another thread
    is dispatching leaves its event on the queue for the active pump,
    which keeps subscriber callbacks single-threaded and events ordered
    without a dedicated dispatch thread.
    """

    def __init__(self, capacity: int = 8192):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._queue: deque[Event] = deque()
        self._lock = threading.Lock()
        self._pumping = False
        self._subscribers: list[Subscriber] = []
        self.published = 0
        self.dropped = 0
        self.dispatched = 0
        self.subscriber_errors = 0

    # -- subscriptions -------------------------------------------------
    def subscribe(self, fn: Subscriber) -> Subscriber:
        with self._lock:
            if fn not in self._subscribers:
                self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        with self._lock:
            if fn in self._subscribers:
                self._subscribers.remove(fn)

    # -- publication ---------------------------------------------------
    def publish(self, event: Event) -> None:
        with self._lock:
            if len(self._queue) >= self.capacity:
                self.dropped += 1
                return
            self._queue.append(event)
            self.published += 1
        self.pump()

    def publish_span_start(self, span_doc: dict[str, Any]) -> None:
        self.publish(
            Event(SPAN_START, span_doc.get("name", ""), span_doc,
                  threading.get_ident())
        )

    def publish_span_end(self, span_doc: dict[str, Any]) -> None:
        self.publish(
            Event(SPAN_END, span_doc.get("name", ""), span_doc,
                  threading.get_ident())
        )

    def publish_counter(self, name: str, value: float = 1, span_id: str | None = None) -> None:
        data: dict[str, Any] = {"value": value}
        if span_id is not None:
            data["span_id"] = span_id
        self.publish(Event(COUNTER, name, data, threading.get_ident()))

    # -- dispatch ------------------------------------------------------
    def pump(self) -> int:
        """Dispatch queued events in order; returns how many were sent.

        Re-entrant-safe: a subscriber that publishes (or a second thread
        arriving mid-pump) leaves its events for the active pump loop.
        """
        dispatched = 0
        while True:
            with self._lock:
                if self._pumping:
                    return dispatched
                if not self._queue:
                    return dispatched
                self._pumping = True
                # drain the whole backlog in one batch: one lock round per
                # pump instead of two per event keeps the hot publish path
                # inside the site overhead budget (the common case is a
                # single queued event — skip the copy-and-clear for it)
                if len(self._queue) == 1:
                    batch = (self._queue.popleft(),)
                else:
                    batch = tuple(self._queue)
                    self._queue.clear()
                subscribers = list(self._subscribers)
            more = True
            try:
                for event in batch:
                    for fn in subscribers:
                        try:
                            fn(event)
                        except Exception:
                            self.subscriber_errors += 1
                    dispatched += 1
                    self.dispatched += 1
            finally:
                with self._lock:
                    self._pumping = False
                    more = bool(self._queue)
            if not more:
                return dispatched

    def stats(self) -> dict[str, int]:
        return {
            "published": self.published,
            "dispatched": self.dispatched,
            "dropped": self.dropped,
            "subscriber_errors": self.subscriber_errors,
            "subscribers": len(self._subscribers),
        }


# ----------------------------------------------------------------------
# the ambient bus
# ----------------------------------------------------------------------
_AMBIENT: EventBus | NullBus = NULL_BUS
_AMBIENT_LOCK = threading.Lock()


def get_bus() -> EventBus | NullBus:
    """The process's active event bus, or the shared null bus."""
    return _AMBIENT


@contextmanager
def use_bus(bus: EventBus) -> Iterator[EventBus]:
    """Activate ``bus`` process-wide for the extent of the block.

    A module global rather than a contextvar so events published from
    worker *threads* (SQL morsels, parallel viz) reach the same bus;
    nesting restores the previous bus on exit.
    """
    global _AMBIENT
    with _AMBIENT_LOCK:
        previous = _AMBIENT
        _AMBIENT = bus
    try:
        yield bus
    finally:
        with _AMBIENT_LOCK:
            _AMBIENT = previous


def _reset_ambient() -> None:
    global _AMBIENT
    _AMBIENT = NULL_BUS


import os  # noqa: E402  (placed here to keep the fork hook next to its rationale)

if hasattr(os, "register_at_fork"):
    # forked harness workers must not publish into the parent's sinks
    # through inherited file descriptors; their spans ship back with the
    # RunOutcome and are re-published on the parent via replay_spans
    os.register_at_fork(after_in_child=_reset_ambient)


# ----------------------------------------------------------------------
# replay: cross-process propagation
# ----------------------------------------------------------------------
def replay_spans(bus: EventBus | NullBus, span_docs: list[dict[str, Any]]) -> int:
    """Re-publish spans shipped back from a worker process.

    Start events go out in span start order, end events in span end
    order, so subscribers observe the same canonical structure a live
    in-process run publishes (parenting is carried by the span dicts'
    ``parent_id``); only the fine-grained interleaving differs.  Returns
    the number of events published.
    """
    if bus is NULL_BUS or not span_docs:
        return 0
    starts = sorted(span_docs, key=lambda d: (float(d.get("start", 0.0)), str(d.get("span_id", ""))))
    ends = sorted(
        span_docs,
        key=lambda d: (float(d.get("end") or d.get("start", 0.0)), str(d.get("span_id", ""))),
    )
    for doc in starts:
        bus.publish_span_start(doc)
    for doc in ends:
        bus.publish_span_end(doc)
    return 2 * len(span_docs)


def replay_counters(bus: EventBus | NullBus, counters: dict[str, float]) -> int:
    """Re-publish a worker cell's counter deltas as one event per name."""
    if bus is NULL_BUS or not counters:
        return 0
    for name in sorted(counters):
        bus.publish_counter(name, counters[name])
    return len(counters)


# ----------------------------------------------------------------------
# subscribers
# ----------------------------------------------------------------------
class JsonlSink:
    """Incremental trace writer: one span JSON line per ``span_end``.

    Produces a trace file canonically equivalent to the end-of-run
    :func:`repro.obs.export.write_jsonl` export (same spans, ordered by
    span end instead of span start).  The file is truncated on first
    write so a re-run of the same workdir starts clean.

    Writes are buffered and flushed every ``flush_every`` spans (and on
    ``close``/``flush``): a per-line fsync-style flush costs a syscall
    per span — an order of magnitude more than the serialization — and
    live tailing only needs the file to trail the run by a bounded
    number of spans, not by zero.
    """

    def __init__(self, path: str | Path, flush_every: int = 32):
        if flush_every <= 0:
            raise ValueError("flush_every must be positive")
        self.path = Path(path)
        self.flush_every = flush_every
        self.spans_written = 0
        self._fh = None
        self._lock = threading.Lock()

    def __call__(self, event: Event) -> None:
        if event.kind != SPAN_END:
            return
        line = json.dumps(event.data, separators=(",", ":")) + "\n"
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("w")
            self._fh.write(line)
            self.spans_written += 1
            if self.spans_written % self.flush_every == 0:
                self._fh.flush()

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class LiveRenderer:
    """Progress lines for humans: one per completed step-level span.

    Subscribes to ``span_end`` events of the coarse-grained spans (grid
    cells, sessions, plan/step/QA phases) and prints a compact line per
    completion; fine-grained spans (SQL, sandbox internals) and counter
    events are ignored so ``--live`` output stays readable.
    """

    INTERESTING = (
        "harness.cell",
        "session",
        "plan.generate",
        "step.sql",
        "step.python",
        "step.viz",
        "qa.assess",
        "llm.chat",
    )

    def __init__(self, stream=None, verbose: bool = False):
        import sys

        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose
        self.lines = 0

    def __call__(self, event: Event) -> None:
        if event.kind != SPAN_END:
            return
        name = event.name
        if not self.verbose and name not in self.INTERESTING:
            return
        doc = event.data
        attrs = doc.get("attributes", {})
        hints = " ".join(
            f"{k}={attrs[k]}"
            for k in ("qid", "run_index", "session_id", "step", "attempt",
                      "skill", "ok", "passed", "steps")
            if k in attrs
        )
        status = doc.get("status", "")
        mark = "" if status == "ok" else f" [{status}]"
        dur_ms = float(doc.get("duration", 0.0)) * 1e3
        print(f"[live] {name:<18} {dur_ms:9.2f} ms  {hints}{mark}",
              file=self.stream)
        self.lines += 1


class CollectingSubscriber:
    """Test/serving helper: buffers every event it sees, in order."""

    def __init__(self) -> None:
        self.events: list[Event] = []
        self._lock = threading.Lock()

    def __call__(self, event: Event) -> None:
        with self._lock:
            self.events.append(event)

    def of_kind(self, kind: str) -> list[Event]:
        with self._lock:
            return [e for e in self.events if e.kind == kind]
