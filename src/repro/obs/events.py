"""Streaming telemetry event bus: bounded, drop-counting pub/sub.

PR 2 made every run *inspectable after the fact* — spans land in one
``trace.jsonl`` when the run is over.  This module makes the same
telemetry *observable while it happens*: the tracer publishes
``span_start``/``span_end`` events and the metrics layer publishes
``counter`` events onto an ambient :class:`EventBus`, whose subscribers
include

* :class:`JsonlSink` — the trace file written incrementally, one span
  per line at span end, instead of in one burst at end of run;
* :class:`LiveRenderer` — per-step progress lines on stderr for
  ``repro eval --live`` / ``repro query --live``;
* any callable attached through :func:`subscribe` — the documented
  public hook (``repro serve`` streams per-session progress through it).

**Subscriber contract** (:func:`subscribe` / :meth:`EventBus.subscribe`):

* *Ordering* — subscribers observe events in publication order, and
  callbacks are single-threaded: the bus never invokes the same
  subscriber concurrently from two threads.  Dispatch happens inline on
  a publisher's thread (whichever thread wins the pump), so a direct
  subscriber's latency is paid by the traced work.
* *Bounded-drop* — the bus queue is bounded (``capacity``); when a burst
  outruns it the newest events are dropped and counted
  (``EventBus.dropped``), never blocking the publisher or growing
  without bound.  A :class:`BufferedSubscriber` has its own bounded
  buffer with the same newest-dropped semantics (``Subscription.dropped``).
* *Isolation* — a raising subscriber is counted
  (``bus.subscriber_errors``) and skipped; it can never fail the run it
  observes.  A *slow* subscriber, however, stalls the publisher unless
  wrapped: pass ``buffered=True`` to :func:`subscribe` to decouple it
  onto a drain thread, which is mandatory for anything doing I/O on the
  request path (the serving layer's per-session streams are buffered).
* *Per-session filtering* — span events carry their ``trace_id``; pass
  ``trace_id=`` (and/or ``kinds=``) to :func:`subscribe` to see exactly
  one session's events, which is how ``repro serve`` fans one process-
  wide bus out into per-request progress streams.

Design constraints, matching the tracer's:

* **near-zero overhead when nobody is listening** — instrumented code
  pays one module-global read and an identity check per span/counter
  when no bus is active (:data:`NULL_BUS`);
* **bounded and drop-counting** — ``publish`` appends to a bounded
  queue; when a burst outruns the queue, the newest events are dropped
  and counted (``bus.dropped``) rather than blocking the traced work or
  growing without bound;
* **subscriber faults never propagate** — a raising subscriber is
  counted (``bus.subscriber_errors``) and skipped, never allowed to fail
  the run it is observing;
* **process-wide and thread-safe** — the ambient bus is a module global
  (not a contextvar) so events published from SQL morsel threads and
  parallel-viz threads reach the same bus as the coordinator's, with a
  lock serializing the queue.  Forked harness workers deliberately
  *reset* the ambient bus (``os.register_at_fork``): a child publishing
  into an inherited sink would interleave writes into the parent's file
  descriptor.  Worker spans instead ship back with each
  :class:`~repro.eval.harness.RunOutcome` and are re-published on the
  parent by :func:`replay_spans`, preserving parenting because span
  dicts carry their ``parent_id``.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

SPAN_START = "span_start"
SPAN_END = "span_end"
COUNTER = "counter"


@dataclass(slots=True)
class Event:
    """One telemetry event.

    ``data`` is a span dict for span events (the same serialized form
    exporters consume) or ``{"value": ..., "span_id": ...}`` for counter
    events, where ``span_id`` names the enclosing span when the publisher
    knows it (the SQL engine's morsel events use this for parenting).

    A slotted, non-frozen dataclass: events are constructed on the
    publish hot path (every span start/end and counter), where a frozen
    dataclass pays ``object.__setattr__`` per field.  Treat instances as
    immutable by convention.
    """

    kind: str
    name: str
    data: dict[str, Any] = field(default_factory=dict)
    thread_id: int = 0

    @property
    def span_id(self) -> str | None:
        return self.data.get("span_id")


Subscriber = Callable[[Event], None]


class NullBus:
    """The ambient default: swallows everything, allocates nothing."""

    __slots__ = ()
    dropped = 0
    published = 0

    def publish(self, event: Event) -> None:
        pass

    def publish_span_start(self, span_doc: dict[str, Any]) -> None:
        pass

    def publish_span_end(self, span_doc: dict[str, Any]) -> None:
        pass

    def publish_counter(self, name: str, value: float = 1, span_id: str | None = None) -> None:
        pass


NULL_BUS = NullBus()


class EventBus:
    """Bounded-queue, drop-counting pub/sub for telemetry events.

    ``publish`` enqueues under a lock and then pumps: queued events are
    dispatched to every subscriber in publication order.  Only one
    thread pumps at a time — a publisher arriving while another thread
    is dispatching leaves its event on the queue for the active pump,
    which keeps subscriber callbacks single-threaded and events ordered
    without a dedicated dispatch thread.
    """

    def __init__(self, capacity: int = 8192):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._queue: deque[Event] = deque()
        self._lock = threading.Lock()
        self._pumping = False
        self._subscribers: list[Subscriber] = []
        self.published = 0
        self.dropped = 0
        self.dispatched = 0
        self.subscriber_errors = 0

    # -- subscriptions -------------------------------------------------
    def subscribe(self, fn: Subscriber) -> Subscriber:
        with self._lock:
            if fn not in self._subscribers:
                self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        with self._lock:
            if fn in self._subscribers:
                self._subscribers.remove(fn)

    # -- publication ---------------------------------------------------
    def publish(self, event: Event) -> None:
        with self._lock:
            if len(self._queue) >= self.capacity:
                self.dropped += 1
                return
            self._queue.append(event)
            self.published += 1
        self.pump()

    def publish_span_start(self, span_doc: dict[str, Any]) -> None:
        self.publish(
            Event(SPAN_START, span_doc.get("name", ""), span_doc,
                  threading.get_ident())
        )

    def publish_span_end(self, span_doc: dict[str, Any]) -> None:
        self.publish(
            Event(SPAN_END, span_doc.get("name", ""), span_doc,
                  threading.get_ident())
        )

    def publish_counter(self, name: str, value: float = 1, span_id: str | None = None) -> None:
        data: dict[str, Any] = {"value": value}
        if span_id is not None:
            data["span_id"] = span_id
        self.publish(Event(COUNTER, name, data, threading.get_ident()))

    # -- dispatch ------------------------------------------------------
    def pump(self) -> int:
        """Dispatch queued events in order; returns how many were sent.

        Re-entrant-safe: a subscriber that publishes (or a second thread
        arriving mid-pump) leaves its events for the active pump loop.
        """
        dispatched = 0
        while True:
            with self._lock:
                if self._pumping:
                    return dispatched
                if not self._queue:
                    return dispatched
                self._pumping = True
                # drain the whole backlog in one batch: one lock round per
                # pump instead of two per event keeps the hot publish path
                # inside the site overhead budget (the common case is a
                # single queued event — skip the copy-and-clear for it)
                if len(self._queue) == 1:
                    batch = (self._queue.popleft(),)
                else:
                    batch = tuple(self._queue)
                    self._queue.clear()
                subscribers = list(self._subscribers)
            more = True
            try:
                for event in batch:
                    for fn in subscribers:
                        try:
                            fn(event)
                        except Exception:
                            self.subscriber_errors += 1
                    dispatched += 1
                    self.dispatched += 1
            finally:
                with self._lock:
                    self._pumping = False
                    more = bool(self._queue)
            if not more:
                return dispatched

    def stats(self) -> dict[str, int]:
        return {
            "published": self.published,
            "dispatched": self.dispatched,
            "dropped": self.dropped,
            "subscriber_errors": self.subscriber_errors,
            "subscribers": len(self._subscribers),
        }


# ----------------------------------------------------------------------
# the ambient bus
# ----------------------------------------------------------------------
_AMBIENT: EventBus | NullBus = NULL_BUS
_AMBIENT_LOCK = threading.Lock()


def get_bus() -> EventBus | NullBus:
    """The process's active event bus, or the shared null bus."""
    return _AMBIENT


@contextmanager
def use_bus(bus: EventBus) -> Iterator[EventBus]:
    """Activate ``bus`` process-wide for the extent of the block.

    A module global rather than a contextvar so events published from
    worker *threads* (SQL morsels, parallel viz) reach the same bus;
    nesting restores the previous bus on exit.
    """
    global _AMBIENT
    with _AMBIENT_LOCK:
        previous = _AMBIENT
        _AMBIENT = bus
    try:
        yield bus
    finally:
        with _AMBIENT_LOCK:
            _AMBIENT = previous


def _reset_ambient() -> None:
    global _AMBIENT
    _AMBIENT = NULL_BUS


import os  # noqa: E402  (placed here to keep the fork hook next to its rationale)

if hasattr(os, "register_at_fork"):
    # forked harness workers must not publish into the parent's sinks
    # through inherited file descriptors; their spans ship back with the
    # RunOutcome and are re-published on the parent via replay_spans
    os.register_at_fork(after_in_child=_reset_ambient)


# ----------------------------------------------------------------------
# replay: cross-process propagation
# ----------------------------------------------------------------------
def replay_spans(bus: EventBus | NullBus, span_docs: list[dict[str, Any]]) -> int:
    """Re-publish spans shipped back from a worker process.

    Start events go out in span start order, end events in span end
    order, so subscribers observe the same canonical structure a live
    in-process run publishes (parenting is carried by the span dicts'
    ``parent_id``); only the fine-grained interleaving differs.  Returns
    the number of events published.
    """
    if bus is NULL_BUS or not span_docs:
        return 0
    starts = sorted(span_docs, key=lambda d: (float(d.get("start", 0.0)), str(d.get("span_id", ""))))
    ends = sorted(
        span_docs,
        key=lambda d: (float(d.get("end") or d.get("start", 0.0)), str(d.get("span_id", ""))),
    )
    for doc in starts:
        bus.publish_span_start(doc)
    for doc in ends:
        bus.publish_span_end(doc)
    return 2 * len(span_docs)


def replay_counters(bus: EventBus | NullBus, counters: dict[str, float]) -> int:
    """Re-publish a worker cell's counter deltas as one event per name."""
    if bus is NULL_BUS or not counters:
        return 0
    for name in sorted(counters):
        bus.publish_counter(name, counters[name])
    return len(counters)


# ----------------------------------------------------------------------
# subscribers
# ----------------------------------------------------------------------
class JsonlSink:
    """Incremental trace writer: one span JSON line per ``span_end``.

    Produces a trace file canonically equivalent to the end-of-run
    :func:`repro.obs.export.write_jsonl` export (same spans, ordered by
    span end instead of span start).  The file is truncated on first
    write so a re-run of the same workdir starts clean.

    Writes are buffered and flushed every ``flush_every`` spans (and on
    ``close``/``flush``): a per-line fsync-style flush costs a syscall
    per span — an order of magnitude more than the serialization — and
    live tailing only needs the file to trail the run by a bounded
    number of spans, not by zero.
    """

    def __init__(self, path: str | Path, flush_every: int = 32):
        if flush_every <= 0:
            raise ValueError("flush_every must be positive")
        self.path = Path(path)
        self.flush_every = flush_every
        self.spans_written = 0
        self._fh = None
        self._lock = threading.Lock()

    def __call__(self, event: Event) -> None:
        if event.kind != SPAN_END:
            return
        line = json.dumps(event.data, separators=(",", ":")) + "\n"
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("w")
            self._fh.write(line)
            self.spans_written += 1
            if self.spans_written % self.flush_every == 0:
                self._fh.flush()

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class LiveRenderer:
    """Progress lines for humans: one per completed step-level span.

    Subscribes to ``span_end`` events of the coarse-grained spans (grid
    cells, sessions, plan/step/QA phases) and prints a compact line per
    completion; fine-grained spans (SQL, sandbox internals) and counter
    events are ignored so ``--live`` output stays readable.
    """

    INTERESTING = (
        "harness.cell",
        "session",
        "plan.generate",
        "step.sql",
        "step.python",
        "step.viz",
        "qa.assess",
        "llm.chat",
    )

    def __init__(self, stream=None, verbose: bool = False):
        import sys

        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose
        self.lines = 0

    @classmethod
    def format_event(cls, event: Event, verbose: bool = False) -> str | None:
        """One progress line for a span-end event, or None to skip it.

        Shared by the stderr renderer and the serving layer's SSE
        streams, so ``--live`` output and streamed session progress stay
        word-for-word identical.
        """
        if event.kind != SPAN_END:
            return None
        name = event.name
        if not verbose and name not in cls.INTERESTING:
            return None
        doc = event.data
        attrs = doc.get("attributes", {})
        hints = " ".join(
            f"{k}={attrs[k]}"
            for k in ("qid", "run_index", "session_id", "step", "attempt",
                      "skill", "ok", "passed", "steps")
            if k in attrs
        )
        status = doc.get("status", "")
        mark = "" if status == "ok" else f" [{status}]"
        dur_ms = float(doc.get("duration", 0.0)) * 1e3
        return f"[live] {name:<18} {dur_ms:9.2f} ms  {hints}{mark}"

    def __call__(self, event: Event) -> None:
        line = self.format_event(event, verbose=self.verbose)
        if line is None:
            return
        print(line, file=self.stream)
        self.lines += 1


class CollectingSubscriber:
    """Test/serving helper: buffers every event it sees, in order."""

    def __init__(self) -> None:
        self.events: list[Event] = []
        self._lock = threading.Lock()

    def __call__(self, event: Event) -> None:
        with self._lock:
            self.events.append(event)

    def of_kind(self, kind: str) -> list[Event]:
        with self._lock:
            return [e for e in self.events if e.kind == kind]


# ----------------------------------------------------------------------
# the public subscription API
# ----------------------------------------------------------------------
class FilteredSubscriber:
    """Forward only matching events to an inner subscriber.

    ``kinds`` restricts by event kind; ``trace_id`` restricts span
    events to one trace (one served session/request).  Counter events
    carry no trace affiliation, so a ``trace_id`` filter drops them —
    combine with ``kinds`` only when that is what you want.
    """

    def __init__(
        self,
        fn: Subscriber,
        kinds: tuple[str, ...] | None = None,
        trace_id: str | None = None,
    ):
        self.fn = fn
        self.kinds = tuple(kinds) if kinds is not None else None
        self.trace_id = trace_id
        self.forwarded = 0
        self.filtered = 0

    def __call__(self, event: Event) -> None:
        if self.kinds is not None and event.kind not in self.kinds:
            self.filtered += 1
            return
        if self.trace_id is not None and event.data.get("trace_id") != self.trace_id:
            self.filtered += 1
            return
        self.forwarded += 1
        self.fn(event)


class BufferedSubscriber:
    """Decouple a slow subscriber from the publish path.

    The bus-facing callable only appends to a bounded deque (newest
    events dropped and counted when the consumer falls behind, matching
    the bus's own semantics) and wakes a dedicated drain thread that
    invokes the wrapped subscriber.  Publishers therefore pay O(1) per
    event no matter how slow the consumer is — the regression the
    serving layer's per-session SSE streams depend on, since a stalled
    HTTP client must never stall the workers' request path.

    ``close()`` drains what is buffered (bounded by ``close_timeout_s``),
    stops the thread, and detaches; it is idempotent.
    """

    def __init__(self, fn: Subscriber, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.fn = fn
        self.capacity = capacity
        self.dropped = 0
        self.delivered = 0
        self.errors = 0
        self._queue: deque[Event] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain, name="repro-buffered-subscriber", daemon=True
        )
        self._thread.start()

    def __call__(self, event: Event) -> None:
        with self._cond:
            if self._closed:
                return
            if len(self._queue) >= self.capacity:
                self.dropped += 1
                return
            self._queue.append(event)
            self._cond.notify()

    def _drain(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                event = self._queue.popleft()
            try:
                self.fn(event)
            except Exception:
                self.errors += 1
            else:
                self.delivered += 1

    def close(self, timeout_s: float = 5.0) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=timeout_s)


@dataclass
class Subscription:
    """Handle for one :func:`subscribe` attachment; ``close()`` detaches."""

    bus: EventBus
    attached: Subscriber
    _buffered: BufferedSubscriber | None = None
    _filtered: FilteredSubscriber | None = None

    @property
    def dropped(self) -> int:
        """Events this subscription's own buffer dropped (0 unbuffered)."""
        return self._buffered.dropped if self._buffered is not None else 0

    @property
    def delivered(self) -> int:
        buffered = self._buffered
        if buffered is not None:
            return buffered.delivered
        filtered = self._filtered
        return filtered.forwarded if filtered is not None else self.bus.dispatched

    def close(self) -> None:
        self.bus.unsubscribe(self.attached)
        if self._buffered is not None:
            self._buffered.close()


def subscribe(
    fn: Subscriber,
    bus: EventBus | None = None,
    kinds: tuple[str, ...] | None = None,
    trace_id: str | None = None,
    buffered: bool = False,
    capacity: int = 4096,
) -> Subscription:
    """Attach ``fn`` to an event bus; the documented public hook.

    ``bus`` defaults to the ambient bus (:func:`get_bus`) and must be a
    real :class:`EventBus` — subscribing to the null bus is an error, not
    a silent no-op, because the caller clearly expects events.  ``kinds``
    and ``trace_id`` filter before delivery (see the module docstring's
    subscriber contract); ``buffered=True`` decouples a slow ``fn`` from
    the publish path via :class:`BufferedSubscriber`.  Returns a
    :class:`Subscription` whose ``close()`` detaches (and drains the
    buffer, when there is one).
    """
    target = bus if bus is not None else get_bus()
    if not isinstance(target, EventBus):
        raise RuntimeError(
            "no active event bus to subscribe to; activate one with use_bus() first"
        )
    inner: Subscriber = fn
    buffered_sub: BufferedSubscriber | None = None
    if buffered:
        inner = buffered_sub = BufferedSubscriber(fn, capacity=capacity)
    filtered_sub: FilteredSubscriber | None = None
    if kinds is not None or trace_id is not None:
        inner = filtered_sub = FilteredSubscriber(inner, kinds=kinds, trace_id=trace_id)
    target.subscribe(inner)
    return Subscription(
        bus=target, attached=inner, _buffered=buffered_sub, _filtered=filtered_sub
    )
