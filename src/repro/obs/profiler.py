"""Dependency-free sampling profiler with span attribution.

Spans say *what* a run spent its time on; a profile says *where in the
code*.  This sampler runs on a daemon thread (~100 Hz, off by default),
grabs every thread's Python stack via ``sys._current_frames``, collapses
each stack root-first into a ``;``-joined line (the Brendan Gregg
collapsed format every flamegraph tool reads), and attributes each
sample to the span the sampled thread was inside — the tracer maintains
a per-thread span-name note only while a profiler is attached
(:func:`repro.obs.tracer.enable_span_notes`), so the unprofiled fast
path pays one boolean check per span.

Exports:

* :meth:`ProfileReport.collapsed_text` — ``stack count`` lines,
  directly consumable by external flamegraph tooling;
* :meth:`ProfileReport.flamegraph_svg` — a self-contained SVG (no
  JavaScript or external assets) with hover titles, rendered by
  :func:`flamegraph_svg` below.

The sampler is statistical: wait intervals use the real thread clock
(``Event.wait``), but an injected clock is honored for the timestamps
recorded on the report so tests can pin them.  ``sample_once()`` is
public so deterministic tests can drive sampling without the thread.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.obs.tracer import current_span_note, disable_span_notes, enable_span_notes
from repro.util.timing import SimulatedClock, WallClock

# bound the number of distinct stacks kept; hotter code keeps sampling
# into existing entries, pathological churn is dropped and counted
MAX_UNIQUE_STACKS = 10_000


def _collapse(frame) -> str:
    """Root-first ``module:function`` stack line for one thread frame."""
    parts: list[str] = []
    while frame is not None:
        code = frame.f_code
        module = code.co_filename.rsplit("/", 1)[-1].removesuffix(".py")
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


@dataclass
class ProfileReport:
    """Collapsed-stack sample counts plus per-span attribution."""

    samples: int = 0
    dropped_stacks: int = 0
    interval_s: float = 0.01
    started_at: float = 0.0
    stopped_at: float = 0.0
    # collapsed stack line -> sample count
    stacks: dict[str, int] = field(default_factory=dict)
    # enclosing span name ('' when outside any span) -> sample count
    span_samples: dict[str, int] = field(default_factory=dict)

    def collapsed_text(self) -> str:
        """``stack count`` lines, sorted for determinism."""
        return "\n".join(
            f"{stack} {count}" for stack, count in sorted(self.stacks.items())
        )

    def flamegraph_svg(self, title: str = "repro profile") -> str:
        return flamegraph_svg(self.stacks, title=title)

    def top_functions(self, n: int = 10) -> list[tuple[str, int]]:
        """Leaf frames ranked by self samples."""
        self_counts: dict[str, int] = {}
        for stack, count in self.stacks.items():
            leaf = stack.rsplit(";", 1)[-1]
            self_counts[leaf] = self_counts.get(leaf, 0) + count
        ranked = sorted(self_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def as_dict(self) -> dict[str, Any]:
        return {
            "samples": self.samples,
            "dropped_stacks": self.dropped_stacks,
            "interval_s": self.interval_s,
            "started_at": self.started_at,
            "stopped_at": self.stopped_at,
            "stacks": dict(sorted(self.stacks.items())),
            "span_samples": dict(sorted(self.span_samples.items())),
        }


class SamplingProfiler:
    """Background-thread stack sampler, off unless explicitly started.

    ``frames_fn`` is injectable (defaults to ``sys._current_frames``) so
    tests can feed synthetic stacks; ``clock`` only stamps the report's
    start/stop times — the sampling cadence itself needs the real thread
    scheduler and uses ``Event.wait``.
    """

    def __init__(
        self,
        hz: float = 100.0,
        clock: WallClock | SimulatedClock | None = None,
        frames_fn: Callable[[], dict[int, Any]] | None = None,
    ):
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.interval_s = 1.0 / hz
        self.clock = clock or WallClock()
        self.frames_fn = frames_fn or sys._current_frames
        self.report = ProfileReport(interval_s=self.interval_s)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def sample_once(self) -> int:
        """Take one sample of every thread; returns stacks recorded."""
        me = threading.get_ident()
        recorded = 0
        frames = self.frames_fn()
        with self._lock:
            for thread_id, frame in frames.items():
                if thread_id == me:
                    continue  # never profile the sampler itself
                stack = _collapse(frame)
                if not stack:
                    continue
                if stack not in self.report.stacks and len(self.report.stacks) >= MAX_UNIQUE_STACKS:
                    self.report.dropped_stacks += 1
                    continue
                self.report.stacks[stack] = self.report.stacks.get(stack, 0) + 1
                span = current_span_note(thread_id)
                self.report.span_samples[span] = self.report.span_samples.get(span, 0) + 1
                recorded += 1
            self.report.samples += 1
        return recorded

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        enable_span_notes()
        self.report.started_at = self.clock.now()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> ProfileReport:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        disable_span_notes()
        self.report.stopped_at = self.clock.now()
        return self.report

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


# ----------------------------------------------------------------------
# flamegraph rendering: self-contained SVG, no scripts or assets
# ----------------------------------------------------------------------
_FRAME_H = 17
_MIN_W = 0.2          # below this many pixels a frame is skipped
_WIDTH = 1200.0

# muted warm palette cycled deterministically by depth + name hash
_PALETTE = (
    "#e1675f", "#e08150", "#db9a45", "#cfa943", "#b9a94c",
    "#d3755a", "#e08b3f", "#c99a50",
)


def _color(name: str, depth: int) -> str:
    return _PALETTE[(sum(name.encode()) + depth) % len(_PALETTE)]


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def flamegraph_svg(stacks: dict[str, int], title: str = "repro profile") -> str:
    """Render collapsed stacks as a deterministic self-contained SVG.

    Children are laid out alphabetically under their parent with widths
    proportional to inclusive sample counts; every frame carries a
    ``<title>`` tooltip with its full name, samples, and share.
    """
    total = sum(stacks.values())
    # fold the flat stack lines into a tree of inclusive counts
    root: dict[str, Any] = {"count": total, "children": {}}
    for stack, count in sorted(stacks.items()):
        node = root
        for frame in stack.split(";"):
            child = node["children"].get(frame)
            if child is None:
                child = node["children"][frame] = {"count": 0, "children": {}}
            child["count"] += count
            node = child

    def depth_of(node: dict[str, Any]) -> int:
        kids = node["children"]
        return 1 + max((depth_of(c) for c in kids.values()), default=0)

    depth = depth_of(root)
    height = (depth + 2) * _FRAME_H + 24
    rects: list[str] = []

    def emit(node: dict[str, Any], name: str, x: float, width: float, level: int) -> None:
        if width < _MIN_W:
            return
        y = height - (level + 2) * _FRAME_H
        if name:
            share = 100.0 * node["count"] / total if total else 0.0
            label = name if width > 40 else ""
            rects.append(
                f'<g><title>{_esc(name)} ({node["count"]} samples, {share:.1f}%)</title>'
                f'<rect x="{x:.2f}" y="{y}" width="{max(width, _MIN_W):.2f}" '
                f'height="{_FRAME_H - 1}" fill="{_color(name, level)}" rx="1"/>'
                f'<text x="{x + 3:.2f}" y="{y + 12}" font-size="10" '
                f'font-family="monospace" fill="#222" clip-path="none">'
                f"{_esc(label[: max(int(width // 7), 0)])}</text></g>"
            )
        cursor = x
        for child_name in sorted(node["children"]):
            child = node["children"][child_name]
            child_w = _WIDTH * child["count"] / total if total else 0.0
            emit(child, child_name, cursor, child_w, level + (1 if name else 0))
            cursor += child_w

    emit(root, "", 0.0, _WIDTH, 0)
    header = (
        f'<text x="{_WIDTH / 2:.0f}" y="16" text-anchor="middle" font-size="13" '
        f'font-family="sans-serif">{_esc(title)} — {total} samples</text>'
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH:.0f}" '
        f'height="{height}" viewBox="0 0 {_WIDTH:.0f} {height}">'
        f'<rect width="100%" height="100%" fill="#fdf6ec"/>{header}{"".join(rects)}</svg>'
    )


def write_profile(
    report: ProfileReport, out_base: str | Path, title: str = "repro profile"
) -> tuple[Path, Path]:
    """Write ``<base>.collapsed`` and ``<base>.svg``; returns both paths."""
    base = Path(out_base)
    base.parent.mkdir(parents=True, exist_ok=True)
    collapsed = base.with_suffix(".collapsed")
    svg = base.with_suffix(".svg")
    collapsed.write_text(report.collapsed_text() + "\n")
    svg.write_text(report.flamegraph_svg(title=title))
    return collapsed, svg
