"""Hierarchical spans with injected clocks and cross-process contexts.

The paper's system-level claims — QA-loop convergence within five
revisions, token growth per redo iteration, sandbox wall time dominating
LLM latency — are dynamics of a *run*, not of any single component.  The
tracer makes those dynamics first-class: every supervisor step, graph
node, SQL execution, sandbox run, retrieval and LLM exchange records a
span with ``trace_id``/``span_id``/``parent_id`` lineage, wall-clock
boundaries from the injected clock (``WallClock`` in production,
``SimulatedClock`` in tests), free-form attributes, and exception capture.

Design constraints, in order:

* **dependency-free** — stdlib only, no OpenTelemetry;
* **near-zero overhead when nobody is looking** — library components look
  up the ambient tracer via :func:`get_tracer`, which returns a shared
  :class:`NullTracer` outside an active trace: one contextvar read and a
  no-op context manager, no allocation per span;
* **clock-injected** — the tracer never calls ``time`` APIs directly
  (DESIGN's determinism invariant), so traces taken under
  ``SimulatedClock`` are bit-stable;
* **process-portable** — :class:`TraceContext` is a two-string dataclass
  that pickles across the evaluation harness's process pool, and span ids
  carry a per-tracer random prefix so spans minted in different worker
  processes never collide when merged into one trace.
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, fields
from typing import Any, Iterator

from repro.obs.events import NULL_BUS, get_bus
from repro.util.timing import SimulatedClock, WallClock

Clock = WallClock | SimulatedClock

# ----------------------------------------------------------------------
# span notes: the profiler's view of "what span is this thread inside?"
# ----------------------------------------------------------------------
# Maintained by start_span/end_span only while a profiler is attached
# (_NOTE_SPANS flipped by enable/disable), so the untraced/unprofiled
# fast path pays a single falsy bool check per span.  Values are the
# innermost open span name per thread id; the sampler reads them from
# its own thread without locking (dict get is atomic enough for a
# statistical profile).
_NOTE_SPANS = False
_SPAN_NOTES: dict[int, str] = {}


def enable_span_notes() -> None:
    global _NOTE_SPANS
    _SPAN_NOTES.clear()
    _NOTE_SPANS = True


def disable_span_notes() -> None:
    global _NOTE_SPANS
    _NOTE_SPANS = False
    _SPAN_NOTES.clear()


def current_span_note(thread_id: int) -> str:
    """The innermost open span name of ``thread_id``, or ''."""
    return _SPAN_NOTES.get(thread_id, "")


@dataclass(frozen=True)
class TraceContext:
    """The portable coordinates of a position inside a trace.

    Pickles across process boundaries; a tracer built ``Tracer(context=ctx)``
    mints spans in ``ctx.trace_id`` whose roots hang off ``ctx.span_id``.
    """

    trace_id: str
    span_id: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "TraceContext":
        return cls(trace_id=doc.get("trace_id", ""), span_id=doc.get("span_id"))


@dataclass
class Span:
    """One timed operation in a trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    status: str = "open"            # 'open' | 'ok' | 'error'
    error_type: str = ""
    error_message: str = ""

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
            "error_type": self.error_type,
            "error_message": self.error_message,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Span":
        """Tolerant decode: unknown keys ignored, missing keys defaulted."""
        known = {f.name for f in fields(cls)} - {"attributes"}
        kwargs = {k: v for k, v in doc.items() if k in known and k != "duration"}
        kwargs.setdefault("trace_id", "")
        kwargs.setdefault("span_id", "")
        kwargs.setdefault("parent_id", None)
        kwargs.setdefault("name", "")
        kwargs.setdefault("start", 0.0)
        span = cls(attributes=dict(doc.get("attributes", {})), **kwargs)
        if span.status == "open" and span.end is not None:
            span.status = "ok"
        return span


class _NullSpan:
    """Shared inert span; ``set`` swallows attributes."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    @property
    def duration(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The ambient default outside any active trace: records nothing.

    Components instrumented against :func:`get_tracer` pay one contextvar
    read and a no-op context manager per operation when tracing has no
    consumer, which keeps the "tracing is always on" posture essentially
    free for direct library use.
    """

    def __init__(self) -> None:
        self.clock: Clock = WallClock()
        self.trace_id = ""
        self.spans: list[Span] = []

    @contextmanager
    def span(self, name: str, parent: Any = None, **attributes: Any) -> Iterator[_NullSpan]:
        yield _NULL_SPAN

    def start_span(self, name: str, parent: Any = None, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def end_span(self, span: Any, exc: BaseException | None = None) -> None:
        pass

    def current(self) -> None:
        return None

    def context(self) -> TraceContext | None:
        return None

    def span_dicts(self) -> list[dict[str, Any]]:
        return []


class Tracer:
    """Mints and collects spans for one trace (or one process's shard of it).

    Span nesting is tracked per thread, so spans opened on worker threads
    (the parallel-viz batch) become roots unless an explicit ``parent`` is
    passed.  Finished and open spans live in ``self.spans`` in start
    order; ``span_dicts()`` is the serialized view the exporters and the
    process-pool merge consume.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        context: TraceContext | None = None,
        id_prefix: str | None = None,
    ):
        self.clock: Clock = clock or WallClock()
        if context is not None and context.trace_id:
            self.trace_id = context.trace_id
            self._root_parent = context.span_id
        else:
            self.trace_id = uuid.uuid4().hex
            self._root_parent = None
        # per-tracer random prefix + counter: unique across the worker
        # processes whose spans are merged into one trace
        self._id_prefix = id_prefix or uuid.uuid4().hex[:8]
        self._counter = 0
        self._lock = threading.Lock()
        self._stacks = threading.local()
        self.spans: list[Span] = []

    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{self._id_prefix}-{self._counter:04d}"

    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "value", None)
        if stack is None:
            stack = []
            self._stacks.value = stack
        return stack

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def context(self) -> TraceContext:
        """Portable coordinates of the innermost open span (or the root)."""
        cur = self.current()
        return TraceContext(self.trace_id, cur.span_id if cur else self._root_parent)

    # ------------------------------------------------------------------
    def start_span(self, name: str, parent: Span | None = None, **attributes: Any) -> Span:
        if parent is None:
            parent = self.current()
        parent_id = parent.span_id if parent is not None else self._root_parent
        span = Span(
            trace_id=self.trace_id,
            span_id=self._next_id(),
            parent_id=parent_id,
            name=name,
            start=self.clock.now(),
            attributes=dict(attributes),
        )
        with self._lock:
            self.spans.append(span)
        self._stack().append(span)
        if _NOTE_SPANS:
            _SPAN_NOTES[threading.get_ident()] = name
        bus = get_bus()
        if bus is not NULL_BUS:
            bus.publish_span_start(span.as_dict())
        return span

    def end_span(self, span: Span, exc: BaseException | None = None) -> None:
        span.end = self.clock.now()
        if exc is not None:
            span.status = "error"
            span.error_type = type(exc).__name__
            span.error_message = str(exc)
        elif span.status == "open":
            span.status = "ok"
        stack = self._stack()
        if span in stack:
            stack.remove(span)
        if _NOTE_SPANS:
            _SPAN_NOTES[threading.get_ident()] = stack[-1].name if stack else ""
        bus = get_bus()
        if bus is not NULL_BUS:
            bus.publish_span_end(span.as_dict())

    @contextmanager
    def span(self, name: str, parent: Span | None = None, **attributes: Any) -> Iterator[Span]:
        """``with tracer.span("sql.execute", step=3) as sp:`` — the main API."""
        span = self.start_span(name, parent=parent, **attributes)
        try:
            yield span
        except BaseException as exc:
            self.end_span(span, exc)
            raise
        else:
            self.end_span(span)

    # ------------------------------------------------------------------
    def span_dicts(self) -> list[dict[str, Any]]:
        with self._lock:
            return [s.as_dict() for s in self.spans]


# ----------------------------------------------------------------------
# the ambient tracer: what instrumented library components record into
# ----------------------------------------------------------------------
NULL_TRACER = NullTracer()

_ACTIVE: ContextVar[Tracer | None] = ContextVar("repro_obs_tracer", default=None)


def get_tracer() -> Tracer | NullTracer:
    """The active tracer of the calling context, or the shared null tracer."""
    return _ACTIVE.get() or NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Activate ``tracer`` for the dynamic extent of the block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def current_context() -> TraceContext | None:
    """Coordinates to hand to a child tracer (possibly in another process)."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return None
    return tracer.context()
