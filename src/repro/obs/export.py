"""Trace exporters and analyzers.

Two output formats:

* **JSONL** — one span dict per line, the provenance-native format.  Each
  session's trace is registered on its provenance trail with
  ``kind="trace"``, so the trail is self-describing: the artifacts *and*
  the execution that produced them.
* **Chrome trace format** — a ``traceEvents`` JSON document loadable in
  ``chrome://tracing`` / Perfetto for flame views of a run.

Plus the read-side helpers the ``repro trace`` CLI and the harness
rollups share: per-phase wall-time rollups, token totals from LLM spans,
an indented tree renderer, and a timing-free canonical tree used to
assert that a parallel evaluation produced the same span structure as a
sequential one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.names import (
    CANONICAL_EXCLUDED_SPANS,
    INGEST_STEP_SPAN,
    LLM_CHAT_SPAN,
    SQL_EXECUTE_SPAN,
    WAL_RECOVER_SPAN,
    is_canonical_excluded_attr,
)
from repro.obs.tracer import Span

SpanLike = Span | dict


def _as_dict(span: SpanLike) -> dict[str, Any]:
    return span.as_dict() if isinstance(span, Span) else span


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(spans: list[SpanLike], path: str | Path) -> int:
    """Write one span per line; returns bytes written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = "".join(json.dumps(_as_dict(s)) + "\n" for s in spans)
    data = payload.encode("utf-8")
    path.write_bytes(data)
    return len(data)


def find_trace_file(path: str | Path) -> Path:
    """Resolve a trace file from a path that may be a session directory.

    Directories are searched for provenance-registered ``*trace.jsonl``
    files (latest sequence number wins, matching "the session's trace").
    """
    path = Path(path)
    if path.is_file():
        return path
    if path.is_dir():
        candidates = sorted(path.glob("*trace.jsonl"))
        if candidates:
            return candidates[-1]
        raise FileNotFoundError(f"no *trace.jsonl under {path}")
    raise FileNotFoundError(f"no trace at {path}")


def read_spans(path: str | Path) -> list[dict[str, Any]]:
    """Load span dicts from a trace file or a session directory."""
    trace_path = find_trace_file(path)
    spans: list[dict[str, Any]] = []
    with trace_path.open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


# ----------------------------------------------------------------------
# Chrome trace format (chrome://tracing, Perfetto)
# ----------------------------------------------------------------------
def to_chrome_trace(spans: list[SpanLike]) -> dict[str, Any]:
    """Complete ('ph': 'X') events; timestamps in microseconds."""
    events: list[dict[str, Any]] = []
    for raw in spans:
        span = _as_dict(raw)
        args = dict(span.get("attributes", {}))
        args["span_id"] = span.get("span_id", "")
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        if span.get("status") == "error":
            args["error"] = f"{span.get('error_type', '')}: {span.get('error_message', '')}"
        events.append(
            {
                "name": span.get("name", ""),
                "cat": span.get("name", "").split(".")[0] or "span",
                "ph": "X",
                "ts": round(float(span.get("start", 0.0)) * 1e6, 3),
                "dur": round(float(span.get("duration", 0.0)) * 1e6, 3),
                "pid": 1,
                "tid": _tid_of(span),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _tid_of(span: dict[str, Any]) -> int:
    """Stable small lane number per span-id prefix (one per tracer, which
    in practice means one per worker process)."""
    prefix = str(span.get("span_id", "")).split("-")[0]
    return (int(prefix, 16) % 997) + 1 if prefix else 1


def chrome_trace_json(spans: list[SpanLike]) -> str:
    """Deterministically formatted Chrome trace document."""
    return json.dumps(to_chrome_trace(spans), indent=1, sort_keys=True)


def write_chrome_trace(spans: list[SpanLike], path: str | Path) -> int:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = chrome_trace_json(spans).encode("utf-8")
    path.write_bytes(data)
    return len(data)


# ----------------------------------------------------------------------
# rollups and views
# ----------------------------------------------------------------------
def phase_of(name: str) -> str:
    """Rollup phase of a span name: the prefix before the first dot."""
    return name.split(".")[0] if name else "?"


def phase_rollups(spans: list[SpanLike]) -> dict[str, dict[str, float]]:
    """Per-phase span count, total wall seconds, and error count."""
    rollups: dict[str, dict[str, float]] = {}
    for raw in spans:
        span = _as_dict(raw)
        phase = phase_of(span.get("name", ""))
        agg = rollups.setdefault(phase, {"spans": 0, "total_s": 0.0, "errors": 0})
        agg["spans"] += 1
        agg["total_s"] += float(span.get("duration", 0.0))
        if span.get("status") == "error":
            agg["errors"] += 1
    return dict(sorted(rollups.items()))


def token_totals(spans: list[SpanLike]) -> dict[str, int]:
    """Cumulative LLM token counters carried on ``llm.chat`` spans."""
    prompt = completion = calls = 0
    for raw in spans:
        span = _as_dict(raw)
        if span.get("name") != LLM_CHAT_SPAN:
            continue
        attrs = span.get("attributes", {})
        prompt += int(attrs.get("prompt_tokens", 0))
        completion += int(attrs.get("completion_tokens", 0))
        calls += 1
    return {
        "calls": calls,
        "prompt_tokens": prompt,
        "completion_tokens": completion,
        "total_tokens": prompt + completion,
    }


def _children_index(spans: list[dict[str, Any]]) -> tuple[list[dict], dict[str, list[dict]]]:
    by_id = {s.get("span_id"): s for s in spans}
    roots: list[dict] = []
    children: dict[str, list[dict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    order = lambda s: (float(s.get("start", 0.0)), str(s.get("span_id", "")))
    roots.sort(key=order)
    for sibs in children.values():
        sibs.sort(key=order)
    return roots, children


def render_tree(spans: list[SpanLike]) -> str:
    """Indented text tree of a trace with durations and statuses."""
    dicts = [_as_dict(s) for s in spans]
    roots, children = _children_index(dicts)
    lines: list[str] = []

    def walk(span: dict[str, Any], depth: int) -> None:
        mark = "" if span.get("status") == "ok" else f" [{span.get('status')}]"
        dur_ms = float(span.get("duration", 0.0)) * 1e3
        attrs = span.get("attributes", {})
        hint = ""
        for key in ("qid", "run_index", "step", "attempt", "skill", "rows"):
            if key in attrs:
                hint += f" {key}={attrs[key]}"
        lines.append(f"{'  ' * depth}{span.get('name')}  {dur_ms:.2f} ms{hint}{mark}")
        for child in children.get(span.get("span_id"), []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def canonical_tree(spans: list[SpanLike]) -> tuple:
    """Timing-free canonical form of a trace's span tree.

    Nodes are ``(name, sorted non-timing attrs, sorted children)``; ids,
    start/end times, latency-shaped attributes, the worker count,
    cache-tier/scan-work, fault-absorption, and priced-cost attributes
    (the exclusion lists in :mod:`repro.obs.names`) are dropped, so a
    parallel (or cache-warm, or chaos, or cost-metered) evaluation
    compares equal to a sequential cold one whenever the same operations
    happened with the same structure.  Spans named in
    ``CANONICAL_EXCLUDED_SPANS`` (cost rollups, profiler captures) are
    dropped with their subtrees: they exist only when an optional
    telemetry layer is on.
    """
    dicts = [_as_dict(s) for s in spans]
    roots, children = _children_index(dicts)

    def canon(span: dict[str, Any]) -> tuple | None:
        if span.get("name", "") in CANONICAL_EXCLUDED_SPANS:
            return None
        attrs = tuple(
            sorted(
                (k, repr(v))
                for k, v in span.get("attributes", {}).items()
                if not is_canonical_excluded_attr(k)
            )
        )
        kids = tuple(
            sorted(
                c
                for c in (canon(child) for child in children.get(span.get("span_id"), []))
                if c is not None
            )
        )
        return (span.get("name", ""), span.get("status", ""), attrs, kids)

    return tuple(sorted(c for c in (canon(r) for r in roots) if c is not None))


def summarize(spans: list[SpanLike]) -> str:
    """Human-readable trace summary: per-phase wall time + token counters."""
    dicts = [_as_dict(s) for s in spans]
    if not dicts:
        return "empty trace"
    trace_id = dicts[0].get("trace_id", "?")
    rollups = phase_rollups(dicts)
    roots, _ = _children_index(dicts)
    root_wall = sum(float(r.get("duration", 0.0)) for r in roots)
    lines = [
        f"trace {trace_id}: {len(dicts)} spans, {root_wall:.3f} s across {len(roots)} root span(s)",
        f"{'phase':<14} {'spans':>6} {'total_s':>10} {'errors':>7}",
    ]
    for phase, agg in rollups.items():
        lines.append(
            f"{phase:<14} {int(agg['spans']):>6} {agg['total_s']:>10.3f} {int(agg['errors']):>7}"
        )
    tokens = token_totals(dicts)
    lines.append(
        f"llm tokens: prompt={tokens['prompt_tokens']:,} "
        f"completion={tokens['completion_tokens']:,} "
        f"total={tokens['total_tokens']:,} over {tokens['calls']} calls"
    )
    cache = sql_cache_counts(dicts)
    if cache["queries"]:
        lines.append(
            f"sql cache: memory={cache['memory']} disk={cache['disk']} "
            f"incremental={cache['incremental']} miss={cache['miss']} "
            f"over {cache['queries']} queries"
        )
    engine = engine_counts(dicts)
    if engine["morsels"] or engine["skipped_zone"] or engine["skipped_bloom"]:
        lines.append(
            f"sql engine: {engine['morsels']} morsels executed, "
            f"{engine['skipped_zone'] + engine['skipped_bloom']}/{engine['row_groups']} "
            f"row groups skipped (zone {engine['skipped_zone']}, "
            f"bloom {engine['skipped_bloom']}), threads<={engine['max_threads']}"
        )
    chaos = fault_counts(dicts)
    if chaos["faults"] or chaos["degraded"] or chaos["quarantined"]:
        lines.append(
            f"faults: {chaos['faults']} injected, {chaos['retries']} retries, "
            f"{chaos['degraded']} degraded spans, "
            f"{chaos['quarantined']} cache entries quarantined"
        )
    fleet = fleet_counts(dicts)
    if fleet["routes"] or fleet["trips"] or fleet["fallbacks"]:
        lines.append(
            f"sandbox fleet: {fleet['routes']} routed over "
            f"{fleet['workers']} worker(s), {fleet['trips']} trips, "
            f"{fleet['respawns']} respawns, {fleet['fallbacks']} fallbacks"
        )
    ingest = ingest_counts(dicts)
    if ingest["steps"] or ingest["recoveries"]:
        lines.append(
            f"live ingest: {ingest['steps']} snapshot(s) committed "
            f"({ingest['rows']} rows), {ingest['recoveries']} WAL recoveries "
            f"(replayed {ingest['replayed']}, torn tails {ingest['torn_tail']}, "
            f"corrupt {ingest['corrupt']}, orphan groups {ingest['orphan_groups']})"
        )
    return "\n".join(lines)


def ingest_counts(spans: list[SpanLike]) -> dict[str, int]:
    """Live-ingestion accounting from ``ingest.step`` / ``wal.recover``
    spans: snapshots committed, rows appended, and how each WAL recovery
    pass classified what it found (replayed commits, torn tails dropped,
    corrupt records dropped, orphan row groups discarded)."""
    counts = {
        "steps": 0,
        "rows": 0,
        "recoveries": 0,
        "replayed": 0,
        "torn_tail": 0,
        "corrupt": 0,
        "orphan_groups": 0,
    }
    for span in spans:
        doc = _as_dict(span)
        attrs = doc.get("attributes", {})
        if doc.get("name") == INGEST_STEP_SPAN:
            counts["steps"] += 1
            counts["rows"] += int(attrs.get("rows", 0))
        elif doc.get("name") == WAL_RECOVER_SPAN:
            counts["recoveries"] += 1
            counts["replayed"] += int(attrs.get("wal_replayed", 0))
            counts["torn_tail"] += int(attrs.get("wal_torn_tail", 0))
            counts["corrupt"] += int(attrs.get("wal_corrupt", 0))
            counts["orphan_groups"] += int(attrs.get("wal_orphan_groups", 0))
    return counts


def fleet_counts(spans: list[SpanLike]) -> dict[str, int]:
    """Sandbox-fleet accounting stamped on spans by
    :mod:`repro.sandbox.fleet`: routed executions, breaker trips,
    reap/respawns, full-degradation fallbacks, and how many distinct
    workers served traffic in this trace."""
    counts = {"routes": 0, "trips": 0, "respawns": 0, "fallbacks": 0, "workers": 0}
    workers: set[int] = set()
    for span in spans:
        attrs = _as_dict(span).get("attributes", {})
        counts["routes"] += int(attrs.get("fleet_routes", 0))
        counts["trips"] += int(attrs.get("fleet_trips", 0))
        counts["respawns"] += int(attrs.get("fleet_respawns", 0))
        counts["fallbacks"] += int(attrs.get("fleet_fallbacks", 0))
        if "fleet_worker" in attrs:
            workers.add(int(attrs["fleet_worker"]))
    counts["workers"] = len(workers)
    return counts


def fault_counts(spans: list[SpanLike]) -> dict[str, int]:
    """Chaos accounting stamped on spans by :mod:`repro.faults` and the
    resilience layer: injected-fault totals, retry totals, how many spans
    degraded onto a fallback, and cache-entry quarantines."""
    counts = {"faults": 0, "retries": 0, "degraded": 0, "quarantined": 0}
    for span in spans:
        attrs = _as_dict(span).get("attributes", {})
        counts["faults"] += int(attrs.get("faults", 0))
        counts["retries"] += int(attrs.get("retries", 0))
        counts["quarantined"] += int(attrs.get("cache_quarantined", 0))
        if attrs.get("degraded"):
            counts["degraded"] += 1
    return counts


def engine_counts(spans: list[SpanLike]) -> dict[str, int]:
    """Morsel-engine accounting recorded on ``sql.execute`` spans: morsels
    executed, row-group totals, zone-map vs bloom-filter skip attribution,
    and the largest thread count any query ran with."""
    counts = {
        "morsels": 0,
        "row_groups": 0,
        "skipped_zone": 0,
        "skipped_bloom": 0,
        "max_threads": 1,
    }
    for span in spans:
        doc = _as_dict(span)
        if doc.get("name") != SQL_EXECUTE_SPAN:
            continue
        attrs = doc.get("attributes", {})
        counts["morsels"] += int(attrs.get("morsels", 0))
        counts["row_groups"] += int(attrs.get("row_groups_total", 0))
        counts["skipped_zone"] += int(attrs.get("row_groups_skipped_zone", 0))
        counts["skipped_bloom"] += int(attrs.get("row_groups_skipped_bloom", 0))
        counts["max_threads"] = max(counts["max_threads"], int(attrs.get("threads", 1)))
    return counts


def sql_cache_counts(spans: list[SpanLike]) -> dict[str, int]:
    """Query-result-cache outcomes recorded on ``sql.execute`` spans.

    Every SELECT emits exactly one ``sql.execute`` span whose ``cache``
    attribute names the tier that served it (``memory`` / ``disk`` /
    ``incremental`` / ``miss``; absent for cache-disabled execution,
    counted as a miss here).
    """
    counts = {"memory": 0, "disk": 0, "incremental": 0, "miss": 0, "queries": 0}
    for span in spans:
        doc = _as_dict(span)
        if doc.get("name") != SQL_EXECUTE_SPAN:
            continue
        counts["queries"] += 1
        tier = doc.get("attributes", {}).get("cache", "miss")
        counts[tier if tier in counts else "miss"] += 1
    return counts
