"""Per-session cost ledger: metered LLM spend, attributed and budgeted.

The paper's §4.5 measures token growth per redo iteration and per
difficulty tier — until now the reproduction recovered those numbers
post-hoc from ``llm.chat`` spans.  This module meters them at the source:
every :class:`~repro.llm.mock.MockLLM` exchange calls
:func:`record_llm_call`, which charges the ambient :class:`CostLedger`
with prompt/completion tokens (via :mod:`repro.util.tokens`) priced
against :data:`PRICE_TABLE`, attributed to whatever the enclosing
:func:`cost_attribution` scopes declared: session, agent, graph node,
redo attempt, difficulty tier.

Ledgers are mergeable like metrics snapshots (associative entry-wise
addition), so the harness folds per-cell worker ledgers into one suite
ledger exactly the way it folds metrics.  Budgets are enforced at the
agent boundary: :meth:`CostLedger.check_budget` raises
:class:`~repro.resilience.BudgetExceeded` — a classified
``ResilienceError`` — once total tokens cross
``InferAConfig.token_budget``, so a blown budget degrades into a
classified session failure instead of unbounded redo growth.

Both the attribution scopes *and* the active ledger use contextvars
(per-thread/per-context isolation, exactly like the tracer): two
sessions interleaving in one process — the serving layer runs one per
worker thread — each charge their own ledger, and neither's attribution
leaks into the other's entries.  Threads spawned *inside* a session
(parallel viz) re-apply the session's ledger and scopes explicitly,
mirroring how they re-activate the tracer.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator

from repro.resilience import BudgetExceeded

# ----------------------------------------------------------------------
# prices
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModelPrice:
    """USD per 1000 tokens, split by direction like hosted chat APIs."""

    prompt_usd_per_1k: float
    completion_usd_per_1k: float

    def cost(self, prompt_tokens: int, completion_tokens: int) -> float:
        return (
            prompt_tokens * self.prompt_usd_per_1k
            + completion_tokens * self.completion_usd_per_1k
        ) / 1000.0


# offline stand-ins priced like the hosted models they mock, so relative
# cost orderings (and the §4.5 growth curve in USD) are meaningful
PRICE_TABLE: dict[str, ModelPrice] = {
    "mock-gpt-4o": ModelPrice(0.0025, 0.010),
    "mock-gpt-4o-mini": ModelPrice(0.00015, 0.0006),
}
DEFAULT_MODEL = "mock-gpt-4o"


def price_of(model: str) -> ModelPrice:
    return PRICE_TABLE.get(model, PRICE_TABLE[DEFAULT_MODEL])


# ----------------------------------------------------------------------
# ledger entries
# ----------------------------------------------------------------------
# attribution key order; every entry carries all of them ("" when the
# enclosing scopes didn't declare one)
KEY_FIELDS = ("session", "agent", "node", "attempt", "level")


@dataclass
class CostEntry:
    """Accumulated spend for one attribution key."""

    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost_usd: float = 0.0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def add(self, prompt_tokens: int, completion_tokens: int, cost_usd: float) -> None:
        self.calls += 1
        self.prompt_tokens += prompt_tokens
        self.completion_tokens += completion_tokens
        self.cost_usd += cost_usd

    def merge(self, other: "CostEntry") -> None:
        self.calls += other.calls
        self.prompt_tokens += other.prompt_tokens
        self.completion_tokens += other.completion_tokens
        self.cost_usd += other.cost_usd

    def as_dict(self) -> dict[str, Any]:
        return {
            "calls": self.calls,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "total_tokens": self.total_tokens,
            "cost_usd": self.cost_usd,
        }


class CostLedger:
    """Mergeable per-attribution-key spend, with an optional hard budget.

    Keys are ``(session, agent, node, attempt, level)`` tuples; totals
    are always derivable as the sum of entries, which is the invariant
    the harness acceptance test pins (ledger totals == Σ per-node
    entries across redo attempts).
    """

    def __init__(self, token_budget: int | None = None):
        self.token_budget = token_budget
        self._lock = threading.Lock()
        self.entries: dict[tuple[str, ...], CostEntry] = {}

    # -- recording -----------------------------------------------------
    def record(
        self,
        prompt_tokens: int,
        completion_tokens: int,
        model: str = DEFAULT_MODEL,
        **attribution: Any,
    ) -> float:
        """Charge one LLM exchange; returns its USD cost."""
        cost_usd = price_of(model).cost(prompt_tokens, completion_tokens)
        key = tuple(str(attribution.get(f, "")) for f in KEY_FIELDS)
        with self._lock:
            entry = self.entries.get(key)
            if entry is None:
                entry = self.entries[key] = CostEntry()
            entry.add(prompt_tokens, completion_tokens, cost_usd)
        return cost_usd

    # -- totals --------------------------------------------------------
    def total_tokens(self) -> int:
        with self._lock:
            return sum(e.total_tokens for e in self.entries.values())

    def total_cost_usd(self) -> float:
        with self._lock:
            return sum(e.cost_usd for e in self.entries.values())

    def total_calls(self) -> int:
        with self._lock:
            return sum(e.calls for e in self.entries.values())

    # -- budget --------------------------------------------------------
    def check_budget(self) -> None:
        """Raise :class:`BudgetExceeded` once spend crosses the budget."""
        budget = self.token_budget
        if budget is None:
            return
        spent = self.total_tokens()
        if spent > budget:
            raise BudgetExceeded(
                f"token budget exceeded: {spent} tokens spent of {budget} budgeted"
            )

    # -- merge / serialize --------------------------------------------
    def merge(self, other: "CostLedger | dict[str, Any]") -> "CostLedger":
        doc = other.as_dict() if isinstance(other, CostLedger) else other
        for entry_doc in doc.get("entries", []):
            key = tuple(str(entry_doc.get(f, "")) for f in KEY_FIELDS)
            incoming = CostEntry(
                calls=int(entry_doc.get("calls", 0)),
                prompt_tokens=int(entry_doc.get("prompt_tokens", 0)),
                completion_tokens=int(entry_doc.get("completion_tokens", 0)),
                cost_usd=float(entry_doc.get("cost_usd", 0.0)),
            )
            with self._lock:
                mine = self.entries.get(key)
                if mine is None:
                    mine = self.entries[key] = CostEntry()
                mine.merge(incoming)
        return self

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view: sorted entries plus derived totals (JSON-able,
        picklable, mergeable via :meth:`merge`)."""
        with self._lock:
            entries = [
                dict(zip(KEY_FIELDS, key)) | entry.as_dict()
                for key, entry in sorted(self.entries.items())
            ]
        return {
            "entries": entries,
            "totals": {
                "calls": sum(e["calls"] for e in entries),
                "prompt_tokens": sum(e["prompt_tokens"] for e in entries),
                "completion_tokens": sum(e["completion_tokens"] for e in entries),
                "total_tokens": sum(e["total_tokens"] for e in entries),
                "cost_usd": sum(e["cost_usd"] for e in entries),
            },
            "token_budget": self.token_budget,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "CostLedger":
        ledger = cls(token_budget=doc.get("token_budget"))
        ledger.merge(doc)
        return ledger

    # -- analysis ------------------------------------------------------
    def growth_curve(self) -> dict[str, dict[int, int]]:
        """Tokens per redo attempt, grouped by difficulty tier (§4.5).

        Returns ``{level: {attempt: total_tokens}}``; entries whose
        scopes never declared a level land under ``"?"``.
        """
        curve: dict[str, dict[int, int]] = {}
        with self._lock:
            items = list(self.entries.items())
        for key, entry in items:
            fields = dict(zip(KEY_FIELDS, key))
            level = fields["level"] or "?"
            try:
                attempt = int(fields["attempt"] or 0)
            except ValueError:
                attempt = 0
            tier = curve.setdefault(level, {})
            tier[attempt] = tier.get(attempt, 0) + entry.total_tokens
        return {level: dict(sorted(tier.items())) for level, tier in sorted(curve.items())}

    def by_field(self, field_name: str) -> dict[str, CostEntry]:
        """Entries folded down to one attribution field (e.g. ``agent``)."""
        if field_name not in KEY_FIELDS:
            raise ValueError(f"unknown attribution field {field_name!r}")
        idx = KEY_FIELDS.index(field_name)
        out: dict[str, CostEntry] = {}
        with self._lock:
            items = list(self.entries.items())
        for key, entry in items:
            bucket = out.setdefault(key[idx] or "?", CostEntry())
            bucket.merge(entry)
        return dict(sorted(out.items()))


# ----------------------------------------------------------------------
# the ambient ledger + attribution scopes
# ----------------------------------------------------------------------
# contextvar rather than a module global: the serving layer runs several
# sessions concurrently on worker threads, and a process-wide ledger
# would let interleaved requests charge each other's sessions.  Threads
# a session spawns itself (parallel viz) re-apply the ledger explicitly
# alongside the tracer and attribution scopes.
_AMBIENT: ContextVar[CostLedger | None] = ContextVar("repro_cost_ledger", default=None)

# immutable attribution dict; contextvar so concurrent sessions/threads
# carry independent scopes (worker threads re-apply theirs explicitly,
# exactly like they re-activate the tracer)
_ATTRIBUTION: ContextVar[dict[str, Any]] = ContextVar("repro_cost_attribution", default={})


def get_ledger() -> CostLedger | None:
    """The context's active cost ledger, or None when cost is unmetered."""
    return _AMBIENT.get()


@contextmanager
def use_ledger(ledger: CostLedger) -> Iterator[CostLedger]:
    """Activate ``ledger`` for the extent of the block (this context only).

    Context-scoped like the tracer, so concurrently-served sessions meter
    independently; nesting restores the previous ledger on exit.  Threads
    spawned within the block must re-apply the ledger themselves (the
    parallel-viz pool does, next to its tracer re-activation).
    """
    token = _AMBIENT.set(ledger)
    try:
        yield ledger
    finally:
        _AMBIENT.reset(token)


def _reset_ambient() -> None:
    # the forked child's main thread continues in the inherited context;
    # clearing the value there unmeters it until it builds its own ledger
    _AMBIENT.set(None)


import os  # noqa: E402  (keeps the fork hook next to its rationale)

if hasattr(os, "register_at_fork"):
    # forked harness workers build their own per-cell ledger and ship it
    # back with the RunOutcome; charging the inherited parent ledger too
    # would double-count every call after the suite merge
    os.register_at_fork(after_in_child=_reset_ambient)


@contextmanager
def cost_attribution(**fields: Any) -> Iterator[dict[str, Any]]:
    """Layer attribution fields onto LLM charges made within the block.

    Scopes nest and override per field: the app session sets ``session``,
    the graph sets ``node``, the supervisor sets ``attempt``/``level``,
    agents set ``agent`` — an ``llm.chat`` inside all four is charged
    with the full key.
    """
    merged = {**_ATTRIBUTION.get(), **fields}
    token = _ATTRIBUTION.set(merged)
    try:
        yield merged
    finally:
        _ATTRIBUTION.reset(token)


def current_attribution() -> dict[str, Any]:
    return dict(_ATTRIBUTION.get())


def record_llm_call(
    prompt_tokens: int,
    completion_tokens: int,
    model: str = DEFAULT_MODEL,
    **extra: Any,
) -> float | None:
    """Charge the ambient ledger for one LLM exchange.

    Returns the USD cost, or None when no ledger is active (unmetered
    runs pay one global read).  Attribution comes from the enclosing
    :func:`cost_attribution` scopes, overridable via ``extra``.
    """
    ledger = _AMBIENT.get()
    if ledger is None:
        return None
    attribution = {**_ATTRIBUTION.get(), **extra}
    return ledger.record(prompt_tokens, completion_tokens, model, **attribution)
