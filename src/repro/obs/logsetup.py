"""Logging for the ``repro`` hierarchy.

Library modules log through ``logging.getLogger("repro.<area>")`` and
never print; the CLI (or any embedding application) decides whether and
where those records surface by calling :func:`setup_logging` once.  The
default posture without setup is the stdlib's usual one — warnings and
above to stderr via the last-resort handler — so importing the library
stays silent.
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

ROOT_LOGGER = "repro"

_FORMAT = "%(levelname).1s %(name)s: %(message)s"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the single ``repro`` hierarchy."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def setup_logging(verbosity: int = 0, stream: TextIO | None = None) -> logging.Logger:
    """Configure the ``repro`` logger tree for terminal use.

    ``verbosity``: negative = warnings only (``-q``), 0 = info (default),
    positive = debug (``-v``).  Idempotent: reconfigures the single
    handler it owns instead of stacking new ones.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    if verbosity < 0:
        level = logging.WARNING
    elif verbosity == 0:
        level = logging.INFO
    else:
        level = logging.DEBUG
    logger.setLevel(level)
    logger.propagate = False

    handler = next(
        (h for h in logger.handlers if getattr(h, "_repro_cli_handler", False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_cli_handler = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
    elif stream is not None and stream is not handler.stream:
        try:
            handler.setStream(stream)
        except ValueError:
            # the previous stream was already closed (common when test
            # harnesses swap sys.stderr per test); skip its final flush
            handler.stream = stream
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(_FORMAT))
    return logger
