"""Process-local counters, gauges, and fixed-bucket histograms.

The metrics layer answers the questions the paper's tables ask —
cumulative LLM tokens, retrieval volume, sandbox wall time, QA redo
count — continuously rather than post-hoc.  Instruments live in a
process-local :class:`MetricsRegistry`; the evaluation harness snapshots
the registry around each grid cell and ships plain-dict deltas back from
worker processes, where :func:`merge_snapshots` folds them (associatively,
so shard merge order never matters) alongside ``MetricsAggregator``.

Histograms use *fixed* bucket bounds so that two histograms of the same
name are always merge-compatible across processes: merging is element-wise
addition of bucket counts, which is what makes the fold associative.
"""

from __future__ import annotations

import bisect
import math
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.obs.events import NULL_BUS, get_bus

# default bounds (seconds) for latency-shaped histograms
TIME_BUCKETS_S: tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)
# default bounds for token-count histograms
TOKEN_BUCKETS: tuple[float, ...] = (100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000)
# default bounds for small-integer counts (rows, redo iterations, ...)
COUNT_BUCKETS: tuple[float, ...] = (0, 1, 2, 5, 10, 50, 100, 1_000, 10_000)


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount
        bus = get_bus()
        if bus is not NULL_BUS:
            bus.publish_counter(self.name, amount)


@dataclass
class Gauge:
    """Last-written value (queue depth, cache size, ...)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` holds observations
    ``<= bounds[i]``; the final slot is the overflow bucket.

    Fixed buckets answer "what's the distribution shape" but report
    p0/p100 as bucket edges; the supplementary ``underflow`` count (how
    many observations fell strictly below ``bounds[0]`` — they still
    land in ``counts[0]``) and the streaming ``vmin``/``vmax`` give the
    exact extremes, which is what ``repro trace summary`` and the SLO
    gates quote as true p0/p100.
    """

    name: str
    bounds: tuple[float, ...] = TIME_BUCKETS_S
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    underflow: int = 0
    vmin: float = math.inf
    vmax: float = -math.inf

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError("counts length must be len(bounds) + 1")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value < self.bounds[0]:
            self.underflow += 1
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min_value(self) -> float | None:
        """Exact smallest observation, or None when empty."""
        return self.vmin if self.count else None

    @property
    def max_value(self) -> float | None:
        """Exact largest observation, or None when empty."""
        return self.vmax if self.count else None

    def merge(self, other: "Histogram") -> "Histogram":
        if tuple(other.bounds) != tuple(self.bounds):
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.total += other.total
        self.count += other.count
        self.underflow += other.underflow
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)
        return self


class MetricsRegistry:
    """Named instruments for one process (get-or-create semantics)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self.counters.get(name)
            if inst is None:
                inst = self.counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self.gauges.get(name)
            if inst is None:
                inst = self.gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str, bounds: tuple[float, ...] = TIME_BUCKETS_S) -> Histogram:
        with self._lock:
            inst = self.histograms.get(name)
            if inst is None:
                inst = self.histograms[name] = Histogram(name, tuple(bounds))
            return inst

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-dict copy of every instrument (picklable, JSON-able)."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self.counters.items()},
                "gauges": {n: g.value for n, g in self.gauges.items()},
                "histograms": {
                    n: {
                        "bounds": list(h.bounds),
                        "counts": list(h.counts),
                        "total": h.total,
                        "count": h.count,
                        "underflow": h.underflow,
                        # JSON has no inf: empty extremes serialize as None
                        "min": h.min_value,
                        "max": h.max_value,
                    }
                    for n, h in self.histograms.items()
                },
            }

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold a snapshot (e.g. shipped from a worker process) into live
        instruments."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, doc in snap.get("histograms", {}).items():
            hist = self.histogram(name, tuple(doc["bounds"]))
            hist.merge(_hist_from_doc(name, doc))

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


def _hist_from_doc(name: str, doc: dict[str, Any]) -> Histogram:
    """Decode a histogram snapshot dict tolerantly: pre-underflow/min/max
    snapshots (older traces, older workers) default to empty extremes."""
    vmin = doc.get("min")
    vmax = doc.get("max")
    return Histogram(
        name,
        tuple(doc["bounds"]),
        list(doc["counts"]),
        doc.get("total", 0.0),
        doc.get("count", 0),
        doc.get("underflow", 0),
        math.inf if vmin is None else vmin,
        -math.inf if vmax is None else vmax,
    )


def _hist_doc(h: Histogram) -> dict[str, Any]:
    return {
        "bounds": list(h.bounds),
        "counts": list(h.counts),
        "total": h.total,
        "count": h.count,
        "underflow": h.underflow,
        "min": h.min_value,
        "max": h.max_value,
    }


def empty_snapshot() -> dict[str, Any]:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """Associative fold of two snapshots (counters/histograms add; gauges
    take the right operand, matching 'last writer wins')."""
    out = {
        "counters": dict(a.get("counters", {})),
        "gauges": dict(a.get("gauges", {})),
        "histograms": {n: _hist_doc(_hist_from_doc(n, d))
                       for n, d in a.get("histograms", {}).items()},
    }
    for name, value in b.get("counters", {}).items():
        out["counters"][name] = out["counters"].get(name, 0) + value
    out["gauges"].update(b.get("gauges", {}))
    for name, doc in b.get("histograms", {}).items():
        mine = out["histograms"].get(name)
        if mine is None:
            out["histograms"][name] = _hist_doc(_hist_from_doc(name, doc))
            continue
        if list(mine["bounds"]) != list(doc["bounds"]):
            raise ValueError(f"histogram {name!r} bucket bounds differ across snapshots")
        merged = _hist_from_doc(name, mine).merge(_hist_from_doc(name, doc))
        out["histograms"][name] = _hist_doc(merged)
    return out


def snapshot_delta(after: dict[str, Any], before: dict[str, Any]) -> dict[str, Any]:
    """What happened between two snapshots of the same registry.

    Histogram extremes are not subtractable, so a delta carries the
    *after* snapshot's min/max — an over-wide bound for the interval,
    never an under-wide one, which is the safe direction for SLO checks.
    """
    delta = empty_snapshot()
    for name, value in after.get("counters", {}).items():
        diff = value - before.get("counters", {}).get(name, 0)
        if diff:
            delta["counters"][name] = diff
    delta["gauges"] = dict(after.get("gauges", {}))
    for name, doc in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(
            name, {"bounds": doc["bounds"], "counts": [0] * len(doc["counts"]),
                   "total": 0.0, "count": 0, "underflow": 0}
        )
        counts = [a - b for a, b in zip(doc["counts"], prior["counts"])]
        if any(counts):
            delta["histograms"][name] = {
                "bounds": list(doc["bounds"]),
                "counts": counts,
                "total": doc["total"] - prior["total"],
                "count": doc["count"] - prior["count"],
                "underflow": doc.get("underflow", 0) - prior.get("underflow", 0),
                "min": doc.get("min"),
                "max": doc.get("max"),
            }
    return delta


# the process-wide registry library instrumentation records into
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
