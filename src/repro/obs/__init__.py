"""``repro.obs`` — end-to-end tracing, metrics, and logging.

Dependency-free observability for the whole assistant: hierarchical
spans over supervisor steps, graph nodes, SQL, sandbox runs, retrieval
and LLM exchanges (:mod:`repro.obs.tracer`); mergeable process-local
counters/gauges/histograms (:mod:`repro.obs.metrics`); JSONL +
Chrome-trace exporters and trace analyzers (:mod:`repro.obs.export`);
and the single ``repro`` logging hierarchy (:mod:`repro.obs.logsetup`).
"""

from repro.obs.export import (
    canonical_tree,
    chrome_trace_json,
    phase_rollups,
    read_spans,
    render_tree,
    sql_cache_counts,
    summarize,
    to_chrome_trace,
    token_totals,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.logsetup import get_logger, setup_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    empty_snapshot,
    get_registry,
    merge_snapshots,
    snapshot_delta,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    current_context,
    get_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceContext",
    "Tracer",
    "canonical_tree",
    "chrome_trace_json",
    "current_context",
    "empty_snapshot",
    "get_logger",
    "get_registry",
    "get_tracer",
    "merge_snapshots",
    "phase_rollups",
    "read_spans",
    "render_tree",
    "setup_logging",
    "snapshot_delta",
    "sql_cache_counts",
    "summarize",
    "to_chrome_trace",
    "token_totals",
    "use_tracer",
    "write_chrome_trace",
    "write_jsonl",
]
