"""``repro.obs`` — end-to-end tracing, metrics, events, cost, and SLOs.

Dependency-free observability for the whole assistant: hierarchical
spans over supervisor steps, graph nodes, SQL, sandbox runs, retrieval
and LLM exchanges (:mod:`repro.obs.tracer`); mergeable process-local
counters/gauges/histograms (:mod:`repro.obs.metrics`); a bounded-queue
streaming event bus with pluggable subscribers
(:mod:`repro.obs.events`); the per-session cost ledger with attribution
and hard token budgets (:mod:`repro.obs.cost`); a sampling profiler
with flamegraph output (:mod:`repro.obs.profiler`); declarative SLO
gates (:mod:`repro.obs.slo`); shared span-name/attribute constants
(:mod:`repro.obs.names`); JSONL + Chrome-trace exporters and trace
analyzers (:mod:`repro.obs.export`); and the single ``repro`` logging
hierarchy (:mod:`repro.obs.logsetup`).
"""

from repro.obs.cost import (
    CostEntry,
    CostLedger,
    cost_attribution,
    current_attribution,
    get_ledger,
    record_llm_call,
    use_ledger,
)
from repro.obs.events import (
    NULL_BUS,
    CollectingSubscriber,
    Event,
    EventBus,
    JsonlSink,
    LiveRenderer,
    get_bus,
    replay_counters,
    replay_spans,
    use_bus,
)
from repro.obs.export import (
    canonical_tree,
    chrome_trace_json,
    phase_rollups,
    read_spans,
    render_tree,
    sql_cache_counts,
    summarize,
    to_chrome_trace,
    token_totals,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.logsetup import get_logger, setup_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    empty_snapshot,
    get_registry,
    merge_snapshots,
    snapshot_delta,
)
from repro.obs.profiler import ProfileReport, SamplingProfiler, write_profile
from repro.obs.slo import SLOPolicy, SLOReport, check_workdir
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    current_context,
    get_tracer,
    use_tracer,
)

__all__ = [
    "CollectingSubscriber",
    "CostEntry",
    "CostLedger",
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LiveRenderer",
    "MetricsRegistry",
    "NULL_BUS",
    "NULL_TRACER",
    "NullTracer",
    "ProfileReport",
    "SLOPolicy",
    "SLOReport",
    "SamplingProfiler",
    "Span",
    "TraceContext",
    "Tracer",
    "canonical_tree",
    "check_workdir",
    "chrome_trace_json",
    "cost_attribution",
    "current_attribution",
    "current_context",
    "empty_snapshot",
    "get_bus",
    "get_ledger",
    "get_logger",
    "get_registry",
    "get_tracer",
    "merge_snapshots",
    "phase_rollups",
    "read_spans",
    "record_llm_call",
    "render_tree",
    "replay_counters",
    "replay_spans",
    "setup_logging",
    "snapshot_delta",
    "sql_cache_counts",
    "summarize",
    "to_chrome_trace",
    "token_totals",
    "use_bus",
    "use_ledger",
    "use_tracer",
    "write_chrome_trace",
    "write_jsonl",
    "write_profile",
]
