"""Shared span names and canonicalization exclusion lists.

Before this module, the ``sql.execute`` span name and the sets of
attributes excluded from canonical trees were string-matched
independently in :mod:`repro.obs.export`, :mod:`repro.obs.tracer`
docstrings, :mod:`repro.db.sql.executor`, and :mod:`repro.db.cache` —
four places that had to agree by review alone.  Every instrumented
component now imports the constants from here, so a new excluded span
kind (the cost ledger's rollup span, the profiler's capture span) is
declared once and every consumer — exporters, analyzers, the SLO gates —
moves together.

Two kinds of canonicalization exclusion:

* **attributes** (``TIMING_ATTRS`` / ``CACHE_ATTRS`` / ``FAULT_ATTRS`` /
  ``COST_ATTRS``) are dropped from a span's canonical form because they
  vary run to run without the traced *work* differing — latency-shaped
  measurements, cache tiers, absorbed faults, priced-token accounting;
* **span names** (``CANONICAL_EXCLUDED_SPANS``) drop the whole span (and
  its subtree) because the span only exists when an optional telemetry
  layer is switched on — a profiled run must canonicalize equal to an
  unprofiled one.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# span names shared across subsystems
# ----------------------------------------------------------------------
# one per SELECT, emitted by the executor on a miss and by the
# query-result cache on every hit tier (repro.db.sql.executor,
# repro.db.cache); analyzers key cache/engine accounting on it
SQL_EXECUTE_SPAN = "sql.execute"
# one per LLM exchange (repro.llm.mock); token and cost accounting ride
# on its attributes
LLM_CHAT_SPAN = "llm.chat"
# the root span of one query session (repro.core.app)
SESSION_SPAN = "session"
# the suite root span of one evaluation-harness run (repro.eval.harness)
HARNESS_SUITE_SPAN = "harness.run_suite"
# one per (question, run) grid cell (repro.eval.harness)
HARNESS_CELL_SPAN = "harness.cell"
# per-session cost rollup stamped at session end (repro.obs.cost via
# repro.core.app); telemetry-only, excluded from canonical trees
COST_LEDGER_SPAN = "cost.ledger"
# wraps a profiled run (repro.obs.profiler / ``repro profile``);
# telemetry-only, excluded from canonical trees
PROFILE_CAPTURE_SPAN = "profile.capture"

# counter-event name for per-morsel completions published from the SQL
# engine's worker threads (parented on the enclosing sql.execute span)
MORSEL_EVENT = "sql.engine.morsel"

# one per served request (repro.serve.worker); the session span of the
# request's query parents under it, sharing its trace_id — which is the
# key per-request SSE streams filter the process-wide bus on
SERVE_REQUEST_SPAN = "serve.request"
# wraps server warm-up (repro.serve.state): pre-building the shared
# read-only state before the first request arrives
SERVE_WARMUP_SPAN = "serve.warmup"

# one per ingested snapshot (repro.db.ingest.StreamingIngester): wraps
# ensemble extension plus the WAL-protected table appends; WAL accounting
# (commits / replays / torn tails) rides on its attributes, which is what
# ``repro trace summary`` folds into its ingest line
INGEST_STEP_SPAN = "ingest.step"
# one per WAL recovery pass (repro.db.database.Database.recover)
WAL_RECOVER_SPAN = "wal.recover"

# WAL / ingest counter names (repro.obs.metrics registry).  Classified
# recovery outcomes: a torn tail (short record) and a corrupt record (CRC
# mismatch on a complete frame) are counted separately so the property
# tests can assert *why* a tail was dropped, not just that it was.
WAL_APPENDS = "wal.appends"
WAL_COMMITS = "wal.commits"
WAL_REPLAYED = "wal.replayed"
WAL_SKIPPED_COMMITTED = "wal.skipped_committed"
WAL_TORN_TAIL_DROPPED = "wal.torn_tail_dropped"
WAL_CORRUPT_DROPPED = "wal.corrupt_record_dropped"
WAL_ORPHAN_GROUPS_DROPPED = "wal.orphan_row_groups_dropped"
INGEST_STEPS = "ingest.steps"
INGEST_ROWS = "ingest.rows"
INGEST_KILLS = "ingest.kills"

# ----------------------------------------------------------------------
# canonical-tree exclusions
# ----------------------------------------------------------------------
# attributes that vary run to run without the traced work differing:
# latency-shaped measurements, plus the execution mode (worker count)
# and the serving layer's queue-wait/execution split
TIMING_ATTRS = frozenset(
    {"latency_s", "wall_s", "duration_s", "workers", "queue_wait_s", "exec_s"}
)
# attributes that depend on which query-result-cache tier served a SELECT
# (and how much scan work it therefore did) — a memory hit in one process
# is a disk hit or a full scan in another without the *result* differing.
# The same goes for the morsel engine's accounting: thread count and
# zone-vs-bloom skip attribution are execution-mode details of a
# byte-identical result
CACHE_ATTRS = frozenset(
    {
        "cache",
        "residual_conjuncts",
        "row_groups_total",
        "row_groups_skipped",
        "row_groups_skipped_zone",
        "row_groups_skipped_bloom",
        "morsels",
        "threads",
        "cache_quarantined",
    }
)
# fault-injection and resilience accounting: a chaos run absorbs injected
# faults (retries, fallbacks, quarantines) without the *work* differing,
# so a chaos trace must canonicalize equal to a fault-free one
FAULT_ATTRS = frozenset(
    {"faults", "retries", "attempts", "degraded", "degraded_reason", "probe"}
)
# priced-token accounting stamped by the cost ledger: deterministic for a
# given run but only present when a ledger is active, so a metered run
# must canonicalize equal to an unmetered one
COST_ATTRS = frozenset({"cost_usd", "model", "budget_tokens"})
# sandbox-fleet accounting (repro.sandbox.fleet): which worker served an
# execution, how many times it re-routed/tripped/respawned, and which
# degradation tier answered — placement details of a byte-identical
# result, so a fleet run must canonicalize equal to a single-worker one.
# Matched by prefix (``fleet_*``) like the per-point fault attrs
FLEET_ATTR_PREFIX = "fleet_"

# spans that exist only when an optional telemetry layer is on; dropped
# (with their subtrees) from canonical trees
CANONICAL_EXCLUDED_SPANS = frozenset({COST_LEDGER_SPAN, PROFILE_CAPTURE_SPAN})


def is_fault_attr(key: str) -> bool:
    return key in FAULT_ATTRS or key.startswith("fault.")


def is_fleet_attr(key: str) -> bool:
    return key.startswith(FLEET_ATTR_PREFIX)


def is_canonical_excluded_attr(key: str) -> bool:
    """True if ``key`` is dropped from a span's canonical form."""
    return (
        key in TIMING_ATTRS
        or key in CACHE_ATTRS
        or key in COST_ATTRS
        or is_fault_attr(key)
        or is_fleet_attr(key)
    )
