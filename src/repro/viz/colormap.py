"""Palette parameters for the SVG backend.

Values come from a validated reference palette (lightness band, chroma
floor, adjacent-pair CVD separation all checked): eight categorical slots
in a fixed order that maximizes minimum adjacent CVD distance, and a
single-hue sequential blue ramp for magnitude encodings.  Categorical hues
follow the *entity*, never the rank — callers index by stable series
position.
"""

from __future__ import annotations

import numpy as np

# fixed-order categorical slots (light surface)
CATEGORICAL: tuple[str, ...] = (
    "#2a78d6",  # 1 blue
    "#1baf7a",  # 2 aqua
    "#eda100",  # 3 yellow
    "#008300",  # 4 green
    "#4a3aa7",  # 5 violet
    "#e34948",  # 6 red
    "#e87ba4",  # 7 magenta
    "#eb6834",  # 8 orange
)

# single-hue sequential ramp, light -> dark (steps 100..700)
_SEQ_RAMP: tuple[str, ...] = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID_COLOR = "#e4e3df"
AXIS_COLOR = "#9b9a94"
SURFACE = "#fcfcfb"
HIGHLIGHT = "#e34948"  # reserved accent (e.g. the Fig. 5 target halo in red)


def categorical_color(index: int) -> str:
    """Slot color for series ``index``; beyond 8 series, fold into gray
    ("Other") rather than cycling hues."""
    if index < 0:
        raise ValueError("series index must be >= 0")
    if index < len(CATEGORICAL):
        return CATEGORICAL[index]
    return "#8a8984"


def _hex_to_rgb(h: str) -> tuple[int, int, int]:
    h = h.lstrip("#")
    return int(h[0:2], 16), int(h[2:4], 16), int(h[4:6], 16)


def _rgb_to_hex(rgb: np.ndarray) -> str:
    r, g, b = (int(round(float(v))) for v in rgb)
    return f"#{r:02x}{g:02x}{b:02x}"


def sequential(t: float | np.ndarray) -> str | list[str]:
    """Sample the sequential ramp at ``t`` in [0, 1] (0 = light, 1 = dark).

    Linear interpolation between ramp steps in sRGB; adequate for a
    perceptually pre-spaced ramp.
    """
    ramp = np.asarray([_hex_to_rgb(c) for c in _SEQ_RAMP], dtype=np.float64)
    tt = np.atleast_1d(np.clip(np.asarray(t, dtype=np.float64), 0.0, 1.0))
    x = tt * (len(ramp) - 1)
    lo = np.floor(x).astype(int)
    hi = np.minimum(lo + 1, len(ramp) - 1)
    frac = (x - lo)[:, None]
    rgb = ramp[lo] * (1 - frac) + ramp[hi] * frac
    out = [_rgb_to_hex(row) for row in rgb]
    return out[0] if np.isscalar(t) or np.asarray(t).ndim == 0 else out
