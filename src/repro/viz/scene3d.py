"""ParaView-flavoured 3D point-cloud rendering.

The paper's visualization agent calls a custom ParaView tool for spatial
tasks (Fig. 5: a target halo in red plus all halos within 20 Mpc).  This
module provides the offline equivalent: a 3D scene of point sets rendered
to SVG via an orthographic (or simple perspective) projection with
painter's-order depth sorting, plus a ``.vtp``-like XML export so scenes
could be inspected in real ParaView.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from xml.sax.saxutils import escape

import numpy as np

from repro.viz.colormap import SURFACE, TEXT_PRIMARY, categorical_color
from repro.viz.svg import SVGDocument


@dataclass
class _PointSet:
    points: np.ndarray        # (n, 3)
    color: str
    radius: float
    label: str | None
    radii: np.ndarray | None  # optional per-point radii


@dataclass
class Scene3D:
    """A collection of labelled 3D point sets."""

    width: float = 640
    height: float = 640
    title: str = ""
    _sets: list[_PointSet] = field(default_factory=list)

    def add_points(
        self,
        points: np.ndarray,
        color: str | None = None,
        radius: float = 2.0,
        label: str | None = None,
        radii: np.ndarray | None = None,
    ) -> None:
        """Add a point set; color defaults to the next categorical slot."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must be (n, 3)")
        if color is None:
            color = categorical_color(len(self._sets))
        if radii is not None:
            radii = np.asarray(radii, dtype=np.float64)
            if len(radii) != len(points):
                raise ValueError("radii must match points")
        self._sets.append(_PointSet(points, color, radius, label, radii))

    # ------------------------------------------------------------------
    def _project(self, azimuth: float, elevation: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rotate all points into view space; returns (xy, depth, set_index)."""
        if not self._sets:
            return np.zeros((0, 2)), np.zeros(0), np.zeros(0, dtype=int)
        all_pts = np.vstack([s.points for s in self._sets])
        set_idx = np.repeat(
            np.arange(len(self._sets)), [len(s.points) for s in self._sets]
        )
        az, el = np.deg2rad(azimuth), np.deg2rad(elevation)
        rz = np.array(
            [[np.cos(az), -np.sin(az), 0], [np.sin(az), np.cos(az), 0], [0, 0, 1]]
        )
        rx = np.array(
            [[1, 0, 0], [0, np.cos(el), -np.sin(el)], [0, np.sin(el), np.cos(el)]]
        )
        view = all_pts @ rz.T @ rx.T
        return view[:, :2], view[:, 2], set_idx

    def to_svg(self, azimuth: float = 35.0, elevation: float = 25.0) -> str:
        """Render with painter's algorithm (far points first)."""
        doc = SVGDocument(self.width, self.height, background=SURFACE)
        xy, depth, set_idx = self._project(azimuth, elevation)
        if len(xy):
            lo = xy.min(axis=0)
            hi = xy.max(axis=0)
            span = np.maximum(hi - lo, 1e-9)
            pad = 40.0
            scale = min((self.width - 2 * pad) / span[0], (self.height - 2 * pad) / span[1])
            pix = (xy - lo) * scale + pad
            order = np.argsort(depth)  # far (small z) first
            for i in order:
                s = self._sets[set_idx[i]]
                within = i - int(np.sum([len(t.points) for t in self._sets[: set_idx[i]]]))
                r = float(s.radii[within]) if s.radii is not None else s.radius
                # mild depth cue: nearer points slightly larger and opaque
                dnorm = (depth[i] - depth.min()) / (np.ptp(depth) or 1.0)
                doc.circle(
                    float(pix[i, 0]),
                    float(self.height - pix[i, 1]),
                    r * (0.8 + 0.4 * dnorm),
                    fill=s.color,
                    fill_opacity=0.45 + 0.45 * dnorm,
                )
        if self.title:
            doc.text(self.width / 2, 20, self.title, size=13, anchor="middle", color=TEXT_PRIMARY, weight="bold")
        labeled = [s for s in self._sets if s.label]
        if len(labeled) >= 2:
            y = 40.0
            for s in labeled:
                doc.circle(18, y - 3, 5, fill=s.color)
                doc.text(30, y, str(s.label), size=10, color=TEXT_PRIMARY)
                y += 16
        return doc.render()

    def save_svg(self, path: str | Path, azimuth: float = 35.0, elevation: float = 25.0) -> int:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = self.to_svg(azimuth, elevation).encode("utf-8")
        path.write_bytes(data)
        return len(data)

    # ------------------------------------------------------------------
    def save_vtp(self, path: str | Path) -> int:
        """Export a ParaView-compatible VTK PolyData XML (ASCII) file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if self._sets:
            all_pts = np.vstack([s.points for s in self._sets])
            set_idx = np.repeat(
                np.arange(len(self._sets)), [len(s.points) for s in self._sets]
            )
        else:
            all_pts = np.zeros((0, 3))
            set_idx = np.zeros(0, dtype=int)
        n = len(all_pts)
        coords = " ".join(f"{v:.6g}" for v in all_pts.ravel())
        groups = " ".join(str(int(g)) for g in set_idx)
        names = ";".join(escape(s.label or f"set{k}") for k, s in enumerate(self._sets))
        xml = f"""<?xml version="1.0"?>
<VTKFile type="PolyData" version="0.1" byte_order="LittleEndian">
 <!-- set names: {names} -->
 <PolyData>
  <Piece NumberOfPoints="{n}" NumberOfVerts="{n}">
   <Points>
    <DataArray type="Float64" NumberOfComponents="3" format="ascii">{coords}</DataArray>
   </Points>
   <PointData Scalars="set">
    <DataArray type="Int32" Name="set" format="ascii">{groups}</DataArray>
   </PointData>
   <Verts>
    <DataArray type="Int64" Name="connectivity" format="ascii">{' '.join(str(i) for i in range(n))}</DataArray>
    <DataArray type="Int64" Name="offsets" format="ascii">{' '.join(str(i + 1) for i in range(n))}</DataArray>
   </Verts>
  </Piece>
 </PolyData>
</VTKFile>
"""
        data = xml.encode("utf-8")
        path.write_bytes(data)
        return len(data)
