"""Minimal SVG document builder.

Emits clean, hand-inspectable SVG 1.1.  All geometry is computed by the
caller (:mod:`repro.viz.figure`); this module only knows elements,
attributes and escaping.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape, quoteattr


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.2f}".rstrip("0").rstrip(".")
    return str(v)


class SVGDocument:
    """Accumulates SVG elements and serializes them."""

    def __init__(self, width: float, height: float, background: str | None = None):
        self.width = width
        self.height = height
        self._parts: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background)

    # ------------------------------------------------------------------
    def _attrs(self, attrs: dict[str, object]) -> str:
        rendered = []
        for key, value in attrs.items():
            if value is None:
                continue
            name = key.replace("_", "-")
            rendered.append(f"{name}={quoteattr(_fmt(value))}")
        return " ".join(rendered)

    def element(self, tag: str, **attrs: object) -> None:
        self._parts.append(f"<{tag} {self._attrs(attrs)}/>")

    def rect(self, x: float, y: float, w: float, h: float, **attrs: object) -> None:
        self.element("rect", x=x, y=y, width=w, height=h, **attrs)

    def line(self, x1: float, y1: float, x2: float, y2: float, **attrs: object) -> None:
        self.element("line", x1=x1, y1=y1, x2=x2, y2=y2, **attrs)

    def circle(self, cx: float, cy: float, r: float, **attrs: object) -> None:
        self.element("circle", cx=cx, cy=cy, r=r, **attrs)

    def polyline(self, points: list[tuple[float, float]], **attrs: object) -> None:
        pts = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self.element("polyline", points=pts, fill="none", **attrs)

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: float = 11,
        anchor: str = "start",
        color: str = "#0b0b0b",
        rotate: float | None = None,
        weight: str | None = None,
    ) -> None:
        attrs: dict[str, object] = {
            "x": x,
            "y": y,
            "font_size": size,
            "text_anchor": anchor,
            "fill": color,
            "font_family": "Helvetica, Arial, sans-serif",
        }
        if weight:
            attrs["font_weight"] = weight
        if rotate is not None:
            attrs["transform"] = f"rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"
        self._parts.append(f"<text {self._attrs(attrs)}>{escape(content)}</text>")

    def group_open(self, **attrs: object) -> None:
        self._parts.append(f"<g {self._attrs(attrs)}>")

    def group_close(self) -> None:
        self._parts.append("</g>")

    # ------------------------------------------------------------------
    def render(self) -> str:
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: str | Path) -> int:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = self.render().encode("utf-8")
        path.write_bytes(data)
        return len(data)
