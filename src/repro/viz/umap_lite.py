"""Lightweight UMAP-style 2-D embedding.

One of the paper's evaluation questions asks for "a UMAP plot" of an
interestingness score over halos.  Real UMAP is unavailable offline, so we
implement the same family of algorithm at small scale: a k-nearest-neighbor
graph with locally adaptive Gaussian affinities, symmetrized, embedded by
the spectral layout (eigenvectors of the normalized graph Laplacian) that
UMAP itself uses for initialization, followed by a few attraction/repulsion
refinement sweeps.  For the thousands-of-points workloads in the
evaluation this gives the same qualitative output: nearby records cluster,
outliers separate.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import eigsh


def umap_embed(
    data: np.ndarray,
    n_neighbors: int = 12,
    n_epochs: int = 30,
    seed: int = 0,
) -> np.ndarray:
    """Embed ``data`` (n, d) into 2-D; deterministic for a given seed."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be 2-D (n_samples, n_features)")
    n = len(data)
    if n < 3:
        return np.zeros((n, 2))
    k = int(min(n_neighbors, n - 1))

    # standardize features so distance is scale-free
    std = data.std(axis=0)
    std[std == 0] = 1.0
    z = (data - data.mean(axis=0)) / std

    # exact kNN (fine at evaluation scale); chunked to bound memory
    rows, cols, vals = [], [], []
    chunk = 512
    for start in range(0, n, chunk):
        block = z[start : start + chunk]
        d2 = ((block[:, None, :] - z[None, :, :]) ** 2).sum(axis=2)
        idx = np.argpartition(d2, k + 1, axis=1)[:, : k + 1]
        for bi in range(len(block)):
            i = start + bi
            neighbors = idx[bi][idx[bi] != i][:k]
            dists = np.sqrt(d2[bi, neighbors])
            sigma = dists.mean() or 1.0
            w = np.exp(-dists / sigma)
            rows.extend([i] * len(neighbors))
            cols.extend(neighbors.tolist())
            vals.extend(w.tolist())
    w = coo_matrix((vals, (rows, cols)), shape=(n, n))
    w = (w + w.T) * 0.5  # symmetrize (fuzzy union approximation)

    # spectral initialization: bottom non-trivial eigenvectors of L_sym
    deg = np.asarray(w.sum(axis=1)).ravel()
    deg[deg == 0] = 1.0
    dinv = 1.0 / np.sqrt(deg)
    lap = coo_matrix(
        (np.ones(n), (np.arange(n), np.arange(n))), shape=(n, n)
    ) - w.multiply(np.outer(dinv, dinv))
    v0 = np.full(n, 1.0 / np.sqrt(n))  # deterministic ARPACK start vector
    try:
        _, vecs = eigsh(lap.tocsc(), k=3, sigma=0.0, which="LM", v0=v0)
        emb = vecs[:, 1:3].copy()
    except Exception:  # fallback for pathological graphs
        rng = np.random.default_rng(seed)
        emb = rng.normal(size=(n, 2)) * 0.01
    # deterministic sign convention (eigenvectors are sign-ambiguous)
    for j in range(emb.shape[1]):
        pivot = np.argmax(np.abs(emb[:, j]))
        if emb[pivot, j] < 0:
            emb[:, j] = -emb[:, j]
    emb = emb / (np.abs(emb).max() or 1.0) * 10.0

    # gentle refinement: attract graph neighbors, repel random samples;
    # displacements are clipped so the spectral structure is sharpened,
    # never destroyed
    rng = np.random.default_rng(seed)
    w_csr = w.tocsr()
    src, dst = w_csr.nonzero()
    lr0 = 0.15
    for epoch in range(n_epochs):
        lr = lr0 * (1.0 - epoch / n_epochs)
        delta = emb[dst] - emb[src]
        dist2 = (delta**2).sum(axis=1) + 1e-9
        attract = (delta / (1.0 + dist2)[:, None]) * lr
        neg = rng.integers(0, n, size=len(src))
        delta_n = emb[neg] - emb[src]
        dist2_n = (delta_n**2).sum(axis=1) + 1e-2
        repel = -(delta_n / (dist2_n * (1.0 + dist2_n))[:, None]) * lr
        update = attract + repel
        norms = np.linalg.norm(update, axis=1, keepdims=True)
        update *= np.minimum(1.0, 0.3 / np.maximum(norms, 1e-12))
        np.add.at(emb, src, update)
    return emb
