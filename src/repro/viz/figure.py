"""Figure / Axes chart API over the SVG backend.

Mirrors the matplotlib subset the visualization agent generates: figures
with one or more axes, line plots, scatter, histograms, heatmaps and
error bars, plus titles, axis labels, legends and automatic "nice" ticks.

Design rules baked in (from the chart-design system): one y-axis only
(no twin axes), thin 2px lines, recessive grid behind the data, text in
ink tokens rather than series colors, a legend whenever two or more
series are plotted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.viz.colormap import (
    AXIS_COLOR,
    GRID_COLOR,
    SURFACE,
    TEXT_PRIMARY,
    TEXT_SECONDARY,
    categorical_color,
    sequential,
)
from repro.viz.svg import SVGDocument


def nice_ticks(lo: float, hi: float, target: int = 5) -> np.ndarray:
    """Choose 'nice' tick positions covering [lo, hi] (1/2/5 x 10^k steps)."""
    if not np.isfinite(lo) or not np.isfinite(hi):
        return np.asarray([0.0, 1.0])
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw_step = span / max(target, 1)
    mag = 10 ** np.floor(np.log10(raw_step))
    for mult in (1, 2, 5, 10):
        step = mult * mag
        if span / step <= target + 1:
            break
    first = np.ceil(lo / step) * step
    ticks = np.arange(first, hi + step * 0.5, step)
    return ticks


def _fmt_tick(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e5 or abs(v) < 1e-3:
        return f"{v:.1e}"
    if abs(v - round(v)) < 1e-9:
        return str(int(round(v)))
    return f"{v:g}"


@dataclass
class _Series:
    kind: str                     # line | scatter | hist | errorbar | heatmap
    x: np.ndarray
    y: np.ndarray
    label: str | None
    color: str
    extra: dict = field(default_factory=dict)


class Axes:
    """One chart panel."""

    def __init__(self, title: str = ""):
        self.title = title
        self.xlabel = ""
        self.ylabel = ""
        self.xscale = "linear"
        self.yscale = "linear"
        self._series: list[_Series] = []
        self._hlines: list[tuple[float, str]] = []

    # ------------------------------------------------------------------
    def _next_color(self) -> str:
        return categorical_color(
            sum(1 for s in self._series if s.kind in ("line", "scatter", "errorbar"))
        )

    def plot(self, x, y, label: str | None = None, color: str | None = None) -> None:
        """Line series (2px stroke)."""
        x, y = np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64)
        if len(x) != len(y):
            raise ValueError("x and y must have equal length")
        self._series.append(_Series("line", x, y, label, color or self._next_color()))

    def scatter(
        self,
        x,
        y,
        label: str | None = None,
        color: str | None = None,
        size: float | np.ndarray = 3.0,
        colors: np.ndarray | None = None,
    ) -> None:
        """Point series; ``colors`` (per-point hex) overrides ``color``."""
        x, y = np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64)
        if len(x) != len(y):
            raise ValueError("x and y must have equal length")
        self._series.append(
            _Series(
                "scatter",
                x,
                y,
                label,
                color or self._next_color(),
                {"size": size, "colors": colors},
            )
        )

    def hist(self, values, bins: int = 20, label: str | None = None, color: str | None = None) -> None:
        """Histogram rendered as baseline-anchored bars."""
        values = np.asarray(values, dtype=np.float64)
        values = values[np.isfinite(values)]
        counts, edges = np.histogram(values, bins=bins)
        self._series.append(
            _Series(
                "hist",
                edges,
                counts.astype(np.float64),
                label,
                color or self._next_color(),
            )
        )

    def errorbar(self, x, y, yerr, label: str | None = None, color: str | None = None) -> None:
        x, y = np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64)
        yerr = np.broadcast_to(np.asarray(yerr, dtype=np.float64), y.shape)
        self._series.append(
            _Series("errorbar", x, y, label, color or self._next_color(), {"yerr": yerr})
        )

    def heatmap(self, matrix, x_edges=None, y_edges=None, label: str | None = None) -> None:
        """Magnitude grid on the single-hue sequential ramp."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("heatmap expects a 2-D matrix")
        ny, nx = matrix.shape
        xe = np.asarray(x_edges if x_edges is not None else np.arange(nx + 1), dtype=np.float64)
        ye = np.asarray(y_edges if y_edges is not None else np.arange(ny + 1), dtype=np.float64)
        self._series.append(_Series("heatmap", xe, ye, label, "", {"matrix": matrix}))

    def axhline(self, y: float, color: str = AXIS_COLOR) -> None:
        self._hlines.append((float(y), color))

    def set_xlabel(self, label: str) -> None:
        self.xlabel = label

    def set_ylabel(self, label: str) -> None:
        self.ylabel = label

    def set_yscale(self, scale: str) -> None:
        if scale not in ("linear", "log"):
            raise ValueError("scale must be 'linear' or 'log'")
        self.yscale = scale

    def set_xscale(self, scale: str) -> None:
        if scale not in ("linear", "log"):
            raise ValueError("scale must be 'linear' or 'log'")
        self.xscale = scale

    # ------------------------------------------------------------------
    def _data_limits(self) -> tuple[float, float, float, float]:
        xs, ys = [], []
        for s in self._series:
            if s.kind == "heatmap":
                xs.extend([s.x.min(), s.x.max()])
                ys.extend([s.y.min(), s.y.max()])
                continue
            if s.kind == "hist":
                xs.extend([s.x.min(), s.x.max()])
                ys.extend([0.0, s.y.max()])
                continue
            fx = s.x[np.isfinite(s.x)]
            fy = s.y[np.isfinite(s.y)]
            if s.kind == "errorbar":
                err = s.extra["yerr"][np.isfinite(s.y)]
                ys.extend([float((fy - err).min(initial=np.inf)), float((fy + err).max(initial=-np.inf))])
            if len(fx):
                xs.extend([float(fx.min()), float(fx.max())])
            if len(fy):
                ys.extend([float(fy.min()), float(fy.max())])
        if not xs:
            xs = [0.0, 1.0]
        if not ys:
            ys = [0.0, 1.0]
        x0, x1 = min(xs), max(xs)
        y0, y1 = min(ys), max(ys)
        if x1 <= x0:
            x1 = x0 + 1.0
        if y1 <= y0:
            y1 = y0 + 1.0
        return x0, x1, y0, y1

    def _transforms(self, rect: tuple[float, float, float, float]):
        px, py, pw, ph = rect
        x0, x1, y0, y1 = self._data_limits()
        if self.xscale == "log":
            x0 = max(x0, 1e-300)
            x0, x1 = np.log10(x0), np.log10(max(x1, x0 * 10))
        if self.yscale == "log":
            y0 = max(y0, 1e-300)
            y0, y1 = np.log10(y0), np.log10(max(y1, y0 * 10))
        # 4% padding
        dx, dy = (x1 - x0) * 0.04, (y1 - y0) * 0.04
        x0, x1, y0, y1 = x0 - dx, x1 + dx, y0 - dy, y1 + dy

        def tx(v: np.ndarray) -> np.ndarray:
            v = np.asarray(v, dtype=np.float64)
            if self.xscale == "log":
                v = np.log10(np.clip(v, 1e-300, None))
            return px + (v - x0) / (x1 - x0) * pw

        def ty(v: np.ndarray) -> np.ndarray:
            v = np.asarray(v, dtype=np.float64)
            if self.yscale == "log":
                v = np.log10(np.clip(v, 1e-300, None))
            return py + ph - (v - y0) / (y1 - y0) * ph

        return tx, ty, (x0, x1, y0, y1)

    def _render(self, doc: SVGDocument, rect: tuple[float, float, float, float]) -> None:
        px, py, pw, ph = rect
        tx, ty, (x0, x1, y0, y1) = self._transforms(rect)

        # grid + ticks (recessive, drawn first)
        xticks = nice_ticks(x0, x1)
        yticks = nice_ticks(y0, y1)
        for t in xticks:
            xpix = float(tx(10**t) if self.xscale == "log" else tx(t))
            if px <= xpix <= px + pw:
                doc.line(xpix, py, xpix, py + ph, stroke=GRID_COLOR, stroke_width=1)
                label = _fmt_tick(10**t) if self.xscale == "log" else _fmt_tick(t)
                doc.text(xpix, py + ph + 14, label, size=9, anchor="middle", color=TEXT_SECONDARY)
        for t in yticks:
            ypix = float(ty(10**t) if self.yscale == "log" else ty(t))
            if py <= ypix <= py + ph:
                doc.line(px, ypix, px + pw, ypix, stroke=GRID_COLOR, stroke_width=1)
                label = _fmt_tick(10**t) if self.yscale == "log" else _fmt_tick(t)
                doc.text(px - 6, ypix + 3, label, size=9, anchor="end", color=TEXT_SECONDARY)
        # axes frame
        doc.line(px, py + ph, px + pw, py + ph, stroke=AXIS_COLOR, stroke_width=1)
        doc.line(px, py, px, py + ph, stroke=AXIS_COLOR, stroke_width=1)

        for yv, color in self._hlines:
            ypix = float(ty(yv))
            doc.line(px, ypix, px + pw, ypix, stroke=color, stroke_width=1)

        # data marks
        for s in self._series:
            if s.kind == "line":
                finite = np.isfinite(s.x) & np.isfinite(s.y)
                pts = list(zip(tx(s.x[finite]).tolist(), ty(s.y[finite]).tolist()))
                if len(pts) >= 2:
                    doc.polyline(pts, stroke=s.color, stroke_width=2)
                elif len(pts) == 1:
                    doc.circle(pts[0][0], pts[0][1], 3, fill=s.color)
            elif s.kind == "scatter":
                finite = np.isfinite(s.x) & np.isfinite(s.y)
                xs_pix, ys_pix = tx(s.x[finite]), ty(s.y[finite])
                sizes = np.broadcast_to(np.asarray(s.extra["size"], dtype=np.float64), s.x.shape)[finite]
                colors = s.extra.get("colors")
                if colors is not None:
                    colors = np.asarray(colors, dtype=object)[finite]
                for i in range(len(xs_pix)):
                    c = str(colors[i]) if colors is not None else s.color
                    doc.circle(float(xs_pix[i]), float(ys_pix[i]), float(sizes[i]), fill=c, fill_opacity=0.75)
            elif s.kind == "hist":
                base = float(ty(max(y0, 0.0) if self.yscale == "linear" else 10**y0))
                for i in range(len(s.y)):
                    left = float(tx(s.x[i]))
                    right = float(tx(s.x[i + 1]))
                    top = float(ty(s.y[i]))
                    doc.rect(
                        left + 1, min(top, base), max(right - left - 2, 1),
                        abs(base - top), fill=s.color, rx=2,
                    )
            elif s.kind == "errorbar":
                xs_pix, ys_pix = tx(s.x), ty(s.y)
                lo_pix, hi_pix = ty(s.y - s.extra["yerr"]), ty(s.y + s.extra["yerr"])
                for i in range(len(xs_pix)):
                    doc.line(float(xs_pix[i]), float(lo_pix[i]), float(xs_pix[i]), float(hi_pix[i]), stroke=s.color, stroke_width=1.5)
                    doc.circle(float(xs_pix[i]), float(ys_pix[i]), 3, fill=s.color)
            elif s.kind == "heatmap":
                matrix = s.extra["matrix"]
                finite = matrix[np.isfinite(matrix)]
                vmin = float(finite.min()) if len(finite) else 0.0
                vmax = float(finite.max()) if len(finite) else 1.0
                span = vmax - vmin or 1.0
                ny, nx = matrix.shape
                for iy in range(ny):
                    for ix in range(nx):
                        v = matrix[iy, ix]
                        if not np.isfinite(v):
                            continue
                        color = sequential((v - vmin) / span)
                        xl, xr = float(tx(s.x[ix])), float(tx(s.x[ix + 1]))
                        yb, ttp = float(ty(s.y[iy])), float(ty(s.y[iy + 1]))
                        doc.rect(xl, min(yb, ttp), xr - xl, abs(yb - ttp), fill=color)

        # title, labels
        if self.title:
            doc.text(px + pw / 2, py - 8, self.title, size=12, anchor="middle", color=TEXT_PRIMARY, weight="bold")
        if self.xlabel:
            doc.text(px + pw / 2, py + ph + 30, self.xlabel, size=11, anchor="middle", color=TEXT_PRIMARY)
        if self.ylabel:
            doc.text(px - 42, py + ph / 2, self.ylabel, size=11, anchor="middle", color=TEXT_PRIMARY, rotate=-90)

        # legend when >= 2 labeled series
        labeled = [s for s in self._series if s.label]
        if len(labeled) >= 2:
            ly = py + 8
            for s in labeled[:10]:
                doc.rect(px + pw - 120, ly - 7, 10, 10, fill=s.color or AXIS_COLOR, rx=2)
                doc.text(px + pw - 105, ly + 2, str(s.label)[:18], size=9, color=TEXT_PRIMARY)
                ly += 15


class Figure:
    """A grid of Axes panels serialized to one SVG file."""

    def __init__(self, width: float = 640, height: float = 420, rows: int = 1, cols: int = 1):
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be >= 1")
        self.width = width
        self.height = height
        self.rows = rows
        self.cols = cols
        self._axes: list[Axes] = [Axes() for _ in range(rows * cols)]
        self.suptitle = ""

    def axes(self, index: int = 0) -> Axes:
        return self._axes[index]

    def __getitem__(self, index: int) -> Axes:
        return self._axes[index]

    def to_svg(self) -> str:
        doc = SVGDocument(self.width, self.height, background=SURFACE)
        top = 28 if self.suptitle else 4
        if self.suptitle:
            doc.text(self.width / 2, 18, self.suptitle, size=14, anchor="middle", color=TEXT_PRIMARY, weight="bold")
        margin = {"left": 62, "right": 16, "top": 30, "bottom": 46}
        cell_w = self.width / self.cols
        cell_h = (self.height - top) / self.rows
        for k, ax in enumerate(self._axes):
            r, c = divmod(k, self.cols)
            px = c * cell_w + margin["left"]
            py = top + r * cell_h + margin["top"]
            pw = cell_w - margin["left"] - margin["right"]
            ph = cell_h - margin["top"] - margin["bottom"]
            ax._render(doc, (px, py, max(pw, 10), max(ph, 10)))
        return doc.render()

    def save(self, path: str | Path) -> int:
        """Write the SVG; returns bytes written (provenance accounting)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = self.to_svg().encode("utf-8")
        path.write_bytes(data)
        return len(data)
