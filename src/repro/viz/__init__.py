"""SVG visualization backend (matplotlib + ParaView substitute).

The visualization agent generates code against this package.  It renders
static SVG: line charts, scatter plots, histograms, heatmaps and
multi-panel figures (:mod:`repro.viz.figure`), plus a ParaView-flavoured
3D point-cloud renderer (:mod:`repro.viz.scene3d`) and a lightweight
UMAP-style 2D embedding (:mod:`repro.viz.umap_lite`) for the
"interestingness" evaluation question.

Styling follows a validated chart-design system: a fixed-order categorical
palette (hues assigned by series identity, never cycled), a single-hue
sequential ramp for magnitude, thin marks, recessive grid and axes, and
legends whenever two or more series are shown.
"""

from repro.viz.figure import Figure, Axes
from repro.viz.colormap import CATEGORICAL, sequential, categorical_color
from repro.viz.scene3d import Scene3D
from repro.viz.umap_lite import umap_embed

__all__ = [
    "Figure",
    "Axes",
    "CATEGORICAL",
    "sequential",
    "categorical_color",
    "Scene3D",
    "umap_embed",
]
