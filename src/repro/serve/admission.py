"""Admission control: a bounded request queue with honest backpressure.

The server accepts work only up to a fixed queue depth.  Past that it
*fails fast* — a structured 429 with a ``retry_after_s`` hint — instead
of letting latency grow without bound while every queued client times
out anyway (the classic unbounded-queue collapse).  The hint is computed
from live telemetry: an exponentially-weighted moving average of recent
request service times, scaled by how many requests are ahead of the
caller and divided across the worker pool.

The queue is deliberately FIFO and single-priority: requests are
e2e-deterministic and short (seconds), so fairness across tenants comes
from per-session token budgets (enforced by the cost ledger at agent
chats), not from scheduling policy.

``close()`` starts the drain: new submissions are refused with
:class:`QueueClosed` (the HTTP layer maps it to 503) while workers keep
popping until the queue is empty, which is what lets graceful shutdown
finish every admitted request before checkpointing sessions.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.util.timing import SimulatedClock, WallClock


class QueueFull(Exception):
    """Queue at capacity — reject now, retry after ``retry_after_s``."""

    def __init__(self, depth: int, retry_after_s: float):
        super().__init__(f"admission queue full ({depth} waiting)")
        self.depth = depth
        self.retry_after_s = retry_after_s


class QueueClosed(Exception):
    """Server is draining; no new work is admitted."""


@dataclass
class ServiceTimeEWMA:
    """Thread-safe EWMA of request service times (queue wait + execution)."""

    alpha: float = 0.2
    initial_s: float = 1.0
    _value: float | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def observe(self, seconds: float) -> None:
        with self._lock:
            if self._value is None:
                self._value = seconds
            else:
                self._value += self.alpha * (seconds - self._value)

    @property
    def value_s(self) -> float:
        with self._lock:
            return self._value if self._value is not None else self.initial_s


class AdmissionQueue:
    """Bounded FIFO feeding the worker pool."""

    def __init__(
        self,
        depth: int,
        workers: int,
        clock: WallClock | SimulatedClock | None = None,
    ):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.depth = depth
        self.workers = max(1, workers)
        self.clock = clock or WallClock()
        self.service_time = ServiceTimeEWMA()
        self._items: deque[Any] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.admitted = 0
        self.rejected = 0

    # -- producer side -------------------------------------------------
    def submit(self, item: Any) -> int:
        """Admit ``item`` or raise :class:`QueueFull`/:class:`QueueClosed`.

        Returns the number of requests ahead of it (its queue position).
        """
        with self._cond:
            if self._closed:
                raise QueueClosed("server is draining")
            waiting = len(self._items)
            if waiting >= self.depth:
                self.rejected += 1
                raise QueueFull(waiting, self.retry_after_s(waiting))
            self._items.append(item)
            self.admitted += 1
            self._cond.notify()
            return waiting

    def retry_after_s(self, waiting: int | None = None) -> float:
        """Expected seconds until a new submission would find room."""
        if waiting is None:
            with self._cond:
                waiting = len(self._items)
        # everyone ahead must be serviced, spread across the pool; never
        # hint below a floor that would invite instant-retry stampedes
        estimate = self.service_time.value_s * max(1, waiting) / self.workers
        return round(max(0.05, estimate), 3)

    # -- consumer side -------------------------------------------------
    def pop(self, timeout_s: float = 0.5) -> Any | None:
        """Next item, or None on timeout / when closed-and-empty."""
        deadline = self.clock.now() + timeout_s
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                remaining = deadline - self.clock.now()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)
            return self._items.popleft()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Refuse new work; queued items remain poppable (the drain)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def stats(self) -> dict[str, Any]:
        with self._cond:
            return {
                "depth": self.depth,
                "waiting": len(self._items),
                "admitted": self.admitted,
                "rejected": self.rejected,
                "closed": self._closed,
                "service_time_ewma_s": round(self.service_time.value_s, 4),
            }
