"""Per-session isolation over the shared warm state.

A *session* is one tenant's conversation with the server: its requests
share nothing writable with other sessions except the content-addressed
caches.  Each session owns

* a **workdir** under ``<server workdir>/sessions/<session id>``, so
  provenance trails, analysis databases, figures, and checkpoints of
  different tenants never collide;
* a **request counter** that names runs deterministically
  (``r0001_<slug>``, ``r0002_...``) — the session-relative index also
  seeds the request's RNG streams, which is what makes a served session
  byte-identical to the same questions asked through one-shot CLI runs;
* a **cost ledger**: every request's per-query ledger is merged into the
  session ledger (written to ``<session workdir>/cost_ledger.json`` on
  checkpoint) *and* into the server's aggregate ledger, so both "what
  did this tenant spend" and "what did the process spend" stay exact
  under interleaving — the contextvar-scoped ambient ledger guarantees
  concurrent requests never cross-charge.

:meth:`SessionRegistry.checkpoint` persists the registry (``sessions.json``
+ per-session ledgers) and is called by graceful shutdown after the
drain, so a restarted server can report on what past sessions spent.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.cost import CostLedger


def _slug(text: str, max_len: int = 24) -> str:
    slug = re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_")
    return slug[:max_len] or "q"


_SESSION_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class InvalidSessionId(ValueError):
    """Session ids are path components; reject anything that isn't one."""


@dataclass
class ServeSession:
    """One tenant's isolated state."""

    session_id: str
    workdir: Path
    requests: int = 0
    completed: int = 0
    failed: int = 0
    ledger: CostLedger = field(default_factory=CostLedger)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def next_run_id(self, question: str) -> tuple[int, str]:
        """Claim the next session-relative request index and its run id."""
        with self._lock:
            self.requests += 1
            index = self.requests
        return index, f"r{index:04d}_{_slug(question)}"

    def record_result(self, cost: dict[str, Any], completed: bool) -> None:
        with self._lock:
            if completed:
                self.completed += 1
            else:
                self.failed += 1
        self.ledger.merge(cost)

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "session_id": self.session_id,
                "workdir": str(self.workdir),
                "requests": self.requests,
                "completed": self.completed,
                "failed": self.failed,
                "total_tokens": self.ledger.total_tokens(),
                "cost_usd": self.ledger.total_cost_usd(),
            }

    def checkpoint(self) -> None:
        """Write this session's ledger to ``cost_ledger.json`` atomically."""
        self.workdir.mkdir(parents=True, exist_ok=True)
        target = self.workdir / "cost_ledger.json"
        tmp = target.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self.ledger.as_dict(), indent=2, sort_keys=True))
        tmp.replace(target)


class SessionRegistry:
    """All live sessions plus the server's aggregate ledger."""

    def __init__(self, root: str | Path, token_budget: int | None = None):
        self.root = Path(root)
        self.sessions_root = self.root / "sessions"
        self.sessions_root.mkdir(parents=True, exist_ok=True)
        self.token_budget = token_budget
        self.aggregate = CostLedger()
        self._sessions: dict[str, ServeSession] = {}
        self._lock = threading.Lock()

    def get_or_create(self, session_id: str) -> ServeSession:
        if not _SESSION_ID_RE.match(session_id):
            raise InvalidSessionId(
                f"invalid session id {session_id!r}: use 1-64 chars from "
                "[A-Za-z0-9._-], starting alphanumeric"
            )
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                session = ServeSession(
                    session_id=session_id,
                    workdir=self.sessions_root / session_id,
                    ledger=CostLedger(token_budget=self.token_budget),
                )
                session.workdir.mkdir(parents=True, exist_ok=True)
                self._sessions[session_id] = session
            return session

    def record_result(
        self, session: ServeSession, cost: dict[str, Any], completed: bool
    ) -> None:
        """Fold one request's ledger into its session and the aggregate."""
        session.record_result(cost, completed)
        self.aggregate.merge(cost)

    # ------------------------------------------------------------------
    def sessions(self) -> list[ServeSession]:
        with self._lock:
            return list(self._sessions.values())

    def stats(self) -> dict[str, Any]:
        sessions = self.sessions()
        return {
            "sessions": len(sessions),
            "requests": sum(s.requests for s in sessions),
            "completed": sum(s.completed for s in sessions),
            "failed": sum(s.failed for s in sessions),
            "total_tokens": self.aggregate.total_tokens(),
            "cost_usd": self.aggregate.total_cost_usd(),
        }

    def checkpoint(self) -> Path:
        """Persist every session ledger plus the registry summary."""
        sessions = self.sessions()
        for session in sessions:
            session.checkpoint()
        doc = {
            "sessions": [s.as_dict() for s in sessions],
            "aggregate": self.aggregate.as_dict(),
        }
        target = self.root / "sessions.json"
        tmp = target.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True))
        tmp.replace(target)
        return target
