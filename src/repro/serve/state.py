"""Process-wide read-only warm state, built once before the first request.

The one-shot CLI pays its cold-start costs — embedding the column
corpus, opening the ensemble, probing the sandbox — on every invocation.
A server pays them **once**, at startup, and then shares the warm
artifacts across every session it serves:

* the **column retriever** and its corpus-embedding matrix
  (:mod:`repro.rag.cache`): built or mmap-loaded into one
  :class:`~repro.rag.ColumnRetriever` instance that every per-request
  app reuses, so no request ever re-embeds the corpus;
* the **query-result cache** (:mod:`repro.db.cache`): one shared on-disk
  tier under the server workdir, so a SELECT executed for any session is
  mmap-served to all others (keys are content-addressed, making the
  sharing correctness-neutral by construction);
* the **ensemble catalogs**: manifest parsed, the newest halo catalog
  read once so first-request scans hit warm file pages;
* the **sandbox**: the in-process executor toolset built once; with a
  remote gateway, one warm :class:`~repro.sandbox.SandboxClient` whose
  pooled connections, circuit breaker, and health state are shared by
  all requests; with ``config.sandbox_workers`` set, a whole warm
  :class:`~repro.sandbox.SandboxFleet` — every member boot-probed into
  the warm-up report, requests routed least-loaded across it.

:meth:`WarmState.warm` times each component and returns a
:class:`WarmupReport` that the server logs at startup and the load
benchmark folds into ``BENCH_serve.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.config import InferAConfig
from repro.llm import HashedEmbedder
from repro.obs.names import SERVE_WARMUP_SPAN
from repro.obs.tracer import get_tracer
from repro.rag import ColumnRetriever, RetrievalArtifactCache
from repro.sandbox import (
    InProcessClient,
    SandboxClient,
    SandboxExecutor,
    SandboxFleet,
    resolve_sandbox_workers,
)
from repro.sim.ensemble import Ensemble
from repro.sim.schema import (
    COLUMN_DESCRIPTIONS,
    FILE_STRUCTURE_DESCRIPTIONS,
    IMPORTANT_COLUMNS,
)
from repro.util.timing import SimulatedClock, WallClock


@dataclass
class WarmupReport:
    """Per-component warm-up timing plus what each component found."""

    component_s: dict[str, float] = field(default_factory=dict)
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return sum(self.component_s.values())

    def as_dict(self) -> dict[str, Any]:
        return {
            "total_s": self.total_s,
            "component_s": {k: round(v, 6) for k, v in self.component_s.items()},
            "details": dict(self.details),
        }

    def render(self) -> str:
        lines = [f"warm-up complete in {self.total_s:.3f} s"]
        for name, seconds in self.component_s.items():
            note = self.details.get(name, "")
            note_text = f"  ({note})" if note else ""
            lines.append(f"  {name:<18} {seconds * 1e3:9.2f} ms{note_text}")
        return "\n".join(lines)


class WarmState:
    """The server's shared read-only state and per-request app factory."""

    def __init__(
        self,
        ensemble: Ensemble,
        workdir: str | Path,
        config: InferAConfig,
        clock: WallClock | SimulatedClock | None = None,
    ):
        self.ensemble = ensemble
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.config = config
        self.clock = clock or WallClock()
        self.retrieval_cache_dir = self.workdir / ".retrieval_cache"
        self.query_cache_dir = self.workdir / ".query_cache"
        self.retriever: ColumnRetriever | None = None
        self.sandbox = None
        self.report: WarmupReport | None = None

    @property
    def warmed(self) -> bool:
        return self.report is not None

    # ------------------------------------------------------------------
    def warm(self) -> WarmupReport:
        """Build every shared component, timing each; idempotent."""
        if self.report is not None:
            return self.report
        report = WarmupReport()
        with get_tracer().span(SERVE_WARMUP_SPAN):
            self._warm_retriever(report)
            self._warm_query_cache(report)
            self._warm_catalogs(report)
            self._warm_sandbox(report)
        self.report = report
        return report

    def _timed(self, report: WarmupReport, name: str):
        clock = self.clock

        class _Timer:
            def __enter__(timer):
                timer.t0 = clock.now()
                return timer

            def __exit__(timer, *exc):
                report.component_s[name] = clock.now() - timer.t0
                return False

        return _Timer()

    def _warm_retriever(self, report: WarmupReport) -> None:
        manifest = self.ensemble.manifest
        with self._timed(report, "retriever"):
            self.retriever = ColumnRetriever(
                manifest.get("column_descriptions", COLUMN_DESCRIPTIONS),
                manifest.get("structure", FILE_STRUCTURE_DESCRIPTIONS),
                important=IMPORTANT_COLUMNS,
                embedder=HashedEmbedder(self.config.embedder_dim),
                cache=RetrievalArtifactCache(self.retrieval_cache_dir),
            )
        report.details["retriever"] = f"dim={self.config.embedder_dim}"

    def _warm_query_cache(self, report: WarmupReport) -> None:
        from repro.db.cache import QueryResultCache

        with self._timed(report, "query_cache"):
            self.query_cache_dir.mkdir(parents=True, exist_ok=True)
            store = QueryResultCache(self.query_cache_dir)
            entries = len(store.disk_entries())
        report.details["query_cache"] = f"{entries} disk entries"

    def _warm_catalogs(self, report: WarmupReport) -> None:
        # read the newest halo catalog once so the first session's scans
        # start from warm file pages instead of cold disk
        with self._timed(report, "catalogs"):
            steps = self.ensemble.timesteps
            kinds = self.ensemble.entity_kinds(run=0)
            rows = 0
            if steps and kinds:
                kind = "halos" if "halos" in kinds else kinds[0]
                frame = self.ensemble.read(0, steps[-1], kind)
                rows = frame.num_rows
        report.details["catalogs"] = (
            f"{self.ensemble.n_runs} runs x {len(steps)} steps, probe {rows} rows"
        )

    def _warm_sandbox(self, report: WarmupReport) -> None:
        from repro.agents.tools import default_toolset

        with self._timed(report, "sandbox"):
            fleet_workers = resolve_sandbox_workers(self.config.sandbox_workers)
            if fleet_workers:
                # pooled warm workers shared by every request: each member
                # is boot-probed so the warm-up report says how much of
                # the fleet actually came up
                fleet = SandboxFleet.spawn_local(
                    fleet_workers,
                    mode=self.config.sandbox_spawn or "thread",
                    fallback=InProcessClient(
                        SandboxExecutor(tools=default_toolset())
                    ),
                    seed=self.config.seed,
                    stats_path=self.workdir / "sandbox_fleet.json",
                )
                probe = fleet.warm()
                report.details["sandbox"] = (
                    f"fleet {probe['healthy']}/{probe['workers']} healthy "
                    f"({probe['mode']})"
                )
                self.sandbox = fleet
            elif self.config.sandbox_url:
                client = SandboxClient(
                    self.config.sandbox_url,
                    seed=self.config.seed,
                    fallback=InProcessClient(SandboxExecutor(tools=default_toolset())),
                )
                probe = client.health()
                report.details["sandbox"] = f"remote {probe.detail}"
                self.sandbox = client
            else:
                self.sandbox = InProcessClient(
                    SandboxExecutor(tools=default_toolset())
                )
                report.details["sandbox"] = "in-process"

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release warm resources that own workers (the sandbox fleet)."""
        close = getattr(self.sandbox, "close", None)
        if callable(close):
            close()

    # ------------------------------------------------------------------
    def build_app(self, session_workdir: Path, seed: int, llm=None, ensemble=None):
        """A per-request app wired onto the shared warm components.

        Each request gets isolated state — its own workdir, provenance
        session, analysis database, seeded RNG streams — while the
        retriever, sandbox, and both on-disk cache tiers are the
        server-shared instances.

        ``ensemble`` lets the worker hand the app a *pinned* manifest view
        (:meth:`repro.sim.ensemble.Ensemble.pinned`), so a request racing
        live ingestion runs start to finish against one consistent
        snapshot; default is the live shared handle.
        """
        from repro.core.app import InferA

        if not self.warmed:
            self.warm()
        config = InferAConfig(
            **{
                **self.config.__dict__,
                "seed": seed,
                "retrieval_cache_dir": str(self.retrieval_cache_dir),
                "query_cache_dir": str(self.query_cache_dir),
            }
        )
        return InferA(
            ensemble if ensemble is not None else self.ensemble,
            session_workdir,
            config,
            llm=llm,
            retriever=self.retriever,
            sandbox=self.sandbox,
        )
