"""The request path: worker threads executing queries over warm state.

Each worker thread loops on the admission queue; for every request it

1. opens a fresh per-request :class:`~repro.obs.tracer.Tracer` whose
   ``serve.request`` root span records the queue-wait/execution split —
   its ``trace_id`` is the request's handle for SSE filtering;
2. builds a fresh per-request app (:meth:`WarmState.build_app`) on the
   session's workdir with a deterministically derived seed, so the run
   is byte-identical to the same question asked via a one-shot CLI
   invocation — freshness of the app is what keeps per-query LLM seeds
   independent of arrival order;
3. enforces resilience on the path: an expired request deadline fails
   fast *before* execution starts (queued time counts against it), and
   a consecutive-internal-error circuit breaker sheds load while the
   server is structurally broken instead of burning workers on doomed
   requests;
4. folds the query's cost ledger into the session + server aggregate
   and fulfils the caller's future.

Results carry a **deterministic answer payload** — completion flag,
failure classification, result tables serialized column-by-column, plan
shape, token totals — and deliberately exclude anything run-varying
(timings, paths, trace ids), so byte-equality of two payloads means the
*analyses* agreed.
"""

from __future__ import annotations

import hashlib
import threading
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Any

from repro.obs.names import SERVE_REQUEST_SPAN
from repro.obs.tracer import TraceContext, Tracer, use_tracer
from repro.resilience import CircuitBreaker, Deadline, ResilienceError
from repro.sandbox.serialize import frame_to_json
from repro.serve.admission import AdmissionQueue
from repro.serve.session import ServeSession, SessionRegistry
from repro.serve.state import WarmState
from repro.util.timing import WallClock


def answer_payload(report: Any) -> dict[str, Any]:
    """The run-invariant view of a query report (byte-comparable)."""
    run = report.run
    return {
        "completed": run.completed,
        "failure": run.failure,
        "failed_at_step": run.failed_at_step,
        "semantic_level": run.semantic_level,
        "plan_size": run.plan_size,
        "analysis_steps": run.analysis_steps,
        "redo_iterations": run.redo_iterations,
        "tokens": run.tokens,
        # figures are SVG text; content hashes compare byte-exactly
        # without shipping kilobytes of markup in every response
        "figures": sorted(
            hashlib.sha256(svg.encode()).hexdigest() for svg in run.figures
        ),
        "tables": {
            name: frame_to_json(frame) for name, frame in sorted(run.tables.items())
        },
    }


@dataclass
class ServeRequest:
    """One admitted request travelling queue → worker → response."""

    question: str
    session: ServeSession
    run_id: str
    request_index: int
    deadline: Deadline
    # minted at admission (not at execution) so a streaming client can
    # subscribe to the request's events before a worker picks it up
    trace_id: str = field(default_factory=lambda: uuid.uuid4().hex)
    submitted_at: float = 0.0
    # fulfilled by the worker
    result: dict[str, Any] | None = None
    error: str | None = None
    status: str = "queued"
    queue_wait_s: float = 0.0
    exec_s: float = 0.0
    # the ensemble manifest version this request was pinned to — the
    # snapshot-isolation receipt a client needs to pick the matching
    # fault-free baseline for byte-comparison
    snapshot_version: int | None = None
    done: threading.Event = field(default_factory=threading.Event)

    def wait(self, timeout_s: float | None = None) -> bool:
        return self.done.wait(timeout_s)


class WorkerPool:
    """N daemon threads draining the admission queue over shared state."""

    def __init__(
        self,
        state: WarmState,
        registry: SessionRegistry,
        queue: AdmissionQueue,
        workers: int = 4,
        clock: WallClock | None = None,
        llm_factory=None,
        breaker: CircuitBreaker | None = None,
    ):
        self.state = state
        self.registry = registry
        self.queue = queue
        self.clock = clock or WallClock()
        self._llm_factory = llm_factory
        # trips on consecutive *internal* errors (bugs, broken state) —
        # classified application failures are results, not breaker food
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=5, reset_timeout_s=10.0, clock=self.clock, name="serve"
        )
        self._threads = [
            threading.Thread(
                target=self._run, name=f"repro-serve-worker-{i}", daemon=True
            )
            for i in range(max(1, workers))
        ]
        self._stop = threading.Event()
        self.executed = 0

    @property
    def alive_workers(self) -> int:
        return sum(t.is_alive() for t in self._threads)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        for t in self._threads:
            t.start()

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Close the queue and stop workers; with ``drain`` they finish
        every already-admitted request first."""
        self.queue.close()
        if not drain:
            self._stop.set()
        for t in self._threads:
            t.join(timeout_s)
        self._stop.set()

    # -- the worker loop -----------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            request = self.queue.pop(timeout_s=0.2)
            if request is None:
                if self.queue.closed and len(self.queue) == 0:
                    return
                continue
            self._execute(request)

    def _execute(self, request: ServeRequest) -> None:
        t_start = self.clock.now()
        request.queue_wait_s = max(0.0, t_start - request.submitted_at)
        tracer = Tracer(
            clock=self.clock, context=TraceContext(request.trace_id, None)
        )
        try:
            with use_tracer(tracer), tracer.span(
                SERVE_REQUEST_SPAN,
                session=request.session.session_id,
                run_id=request.run_id,
            ) as span:
                payload = self._guarded_run(request)
                span.set(
                    queue_wait_s=round(request.queue_wait_s, 6),
                    exec_s=round(self.clock.now() - t_start, 6),
                    status=request.status,
                )
            request.result = payload
        except ResilienceError as exc:
            # deadline blown in the queue, breaker open: classified
            # shed-load outcomes, not bugs — the breaker is not charged
            request.status = "rejected"
            request.error = f"{exc.classification}: {exc}"
        except Exception as exc:  # pragma: no cover - defensive
            self.breaker.record_failure()
            request.status = "error"
            request.error = f"internal-error: {exc}"
            traceback.print_exc()
        finally:
            request.exec_s = self.clock.now() - t_start
            self.queue.service_time.observe(request.queue_wait_s + request.exec_s)
            self.executed += 1
            request.done.set()

    def _guarded_run(self, request: ServeRequest) -> dict[str, Any]:
        if request.deadline.expired:
            raise ResilienceError(
                f"request deadline expired after {request.queue_wait_s:.2f}s in queue"
            )
        if not self.breaker.allow():
            raise ResilienceError("server circuit breaker is open")
        # pin the ensemble manifest as of *now*: snapshots committed by the
        # live ingester mid-request cannot shift this run's view, so the
        # answer is byte-identical to a quiescent run at this version
        pinned = self.state.ensemble.pinned()
        request.snapshot_version = pinned.version
        app = self.state.build_app(
            request.session.workdir,
            seed=self.state.config.seed,
            llm=self._llm_factory,
            ensemble=pinned,
        )
        # the app is fresh, so this request is its query #1: the LLM seed
        # becomes config.seed + request_index via the pre-set counter,
        # matching a one-shot run of the same question at the same index
        app._query_count = request.request_index - 1
        try:
            report = app.run_query(request.question, session_id=request.run_id)
        except Exception:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        self.registry.record_result(request.session, report.cost, report.completed)
        request.status = "ok" if report.completed else "failed"
        return answer_payload(report)
