"""The multi-tenant HTTP serving layer: ``repro serve``.

A stdlib-only long-running server over one warm process:

* ``POST /v1/query`` — run one question in one tenant session.  The
  request is admitted through the bounded queue (429 + ``Retry-After``
  when full, 503 while draining) and executed by the worker pool over
  the shared warm state; with ``"stream": true`` the response is an SSE
  stream of live progress lines followed by a terminal ``result`` frame.
* ``POST /v1/ingest`` — append one generated snapshot to the live
  ensemble (and its live analysis database) through the WAL commit
  protocol.  Single-writer: concurrent ingests get 409, draining
  servers 503; queries admitted before, during, and after the commit
  stay byte-identical to a quiescent run at their pinned snapshot
  version.
* ``GET /healthz`` — liveness plus drain state.
* ``GET /stats`` — queue, session, breaker, cache, bus, and live-ingest
  (snapshot version + WAL) telemetry.

The HTTP threads (one per connection, via
:class:`~http.server.ThreadingHTTPServer`) do *admission and waiting*
only; execution happens on the worker pool, so the number of concurrent
connections never changes how many queries run at once.

Graceful shutdown (:meth:`ReproServer.shutdown`) closes the admission
queue (new work → 503), lets the workers drain every admitted request,
checkpoints every session — per-session ``cost_ledger.json``, the
``sessions.json`` registry summary, and one durable
:class:`~repro.graph.checkpoint.DurableCheckpointer` record per session
so a restarted server can see what each tenant ran — and only then stops
listening.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro.core.config import InferAConfig
from repro.graph.checkpoint import DurableCheckpointer
from repro.obs.events import EventBus, use_bus
from repro.resilience import Deadline
from repro.serve.admission import AdmissionQueue, QueueClosed, QueueFull
from repro.serve.session import InvalidSessionId, SessionRegistry
from repro.serve.state import WarmState
from repro.serve.streaming import EventStreamer, sse_frame
from repro.serve.worker import ServeRequest, WorkerPool
from repro.sim.ensemble import Ensemble

DEFAULT_REQUEST_TIMEOUT_S = 120.0


class IngestBusy(Exception):
    """A snapshot ingest is already in flight (single-writer system)."""


class ReproServer:
    """Owns warm state, sessions, queue, workers, and the HTTP listener."""

    def __init__(
        self,
        ensemble: Ensemble,
        workdir: str | Path,
        config: InferAConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        app_workers: int = 4,
        queue_depth: int = 32,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        llm_factory=None,
    ):
        self.config = config or InferAConfig()
        self.workdir = Path(workdir)
        self.state = WarmState(ensemble, self.workdir, self.config)
        self.registry = SessionRegistry(
            self.workdir, token_budget=self.config.token_budget
        )
        self.queue = AdmissionQueue(depth=queue_depth, workers=app_workers)
        self.pool = WorkerPool(
            self.state,
            self.registry,
            self.queue,
            workers=app_workers,
            llm_factory=llm_factory,
        )
        self.request_timeout_s = float(request_timeout_s)
        self.bus = EventBus()
        self._bus_scope = None
        # live ingestion: built lazily on the first /v1/ingest (serving a
        # static ensemble must not pay for a writer it never uses); the
        # lock makes the server a single-writer system
        self._ingester = None
        self._ingest_injector = None
        self._ingest_lock = threading.Lock()
        self.checkpointer = DurableCheckpointer(self.workdir / "server_checkpoints")
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._draining = False
        self.host = host
        self.port = port

    # -- lifecycle -----------------------------------------------------
    def start(self):
        """Warm shared state, start workers, bind and serve; returns the
        warm-up report."""
        # one process-wide bus for the server's lifetime: workers publish
        # span events onto it, per-request SSE subscriptions filter it
        self._bus_scope = use_bus(self.bus)
        self._bus_scope.__enter__()
        report = self.state.warm()
        self.pool.start()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self.port = self._httpd.server_address[1]
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()
        self._started_at = self.pool.clock.now()
        return report

    def shutdown(self, timeout_s: float = 30.0) -> Path:
        """Graceful drain: finish admitted work, checkpoint, stop listening.

        Returns the path of the persisted ``sessions.json``.
        """
        self._draining = True
        # 1. refuse new admissions, let workers finish the backlog
        self.pool.stop(drain=True, timeout_s=timeout_s)
        # 2. checkpoint every session: ledgers + registry + durable record
        for session in self.registry.sessions():
            self.checkpointer.save(
                thread_id=session.session_id,
                seq=session.requests,
                node="serve.shutdown",
                next_node=None,
                state=session.as_dict(),
            )
        manifest = self.registry.checkpoint()
        # release warm resources that own workers (the sandbox fleet)
        # after the drain, so in-flight executions finished first
        self.state.close()
        # 3. stop accepting connections last so in-flight responses finish
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout_s)
        if self._bus_scope is not None:
            self._bus_scope.__exit__(None, None, None)
            self._bus_scope = None
        return manifest

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling (called from HTTP threads) --------------------
    def admit(self, question: str, session_id: str) -> ServeRequest:
        """Create, register, and enqueue one request (may raise
        :class:`QueueFull`/:class:`QueueClosed`/:class:`InvalidSessionId`)."""
        session = self.registry.get_or_create(session_id)
        index, run_id = session.next_run_id(question)
        request = ServeRequest(
            question=question,
            session=session,
            run_id=run_id,
            request_index=index,
            deadline=Deadline(self.request_timeout_s, clock=self.pool.clock),
            submitted_at=self.pool.clock.now(),
        )
        self.queue.submit(request)
        return request

    # -- live ingestion -------------------------------------------------
    def _ensure_ingester(self):
        from repro import faults
        from repro.db.ingest import StreamingIngester

        if self._ingester is None:
            self._ingester = StreamingIngester(
                self.state.ensemble.root,
                db_path=self.workdir / "live.db",
                arm_faults=True,
            )
            profile = self.config.fault_profile
            if profile is None:
                profile = faults.FaultProfile.from_env(seed=self.config.seed)
            # one injector for the server's lifetime: the kill schedule is
            # a deterministic function of (profile, seed, attempt number)
            self._ingest_injector = faults.FaultInjector(profile)
        return self._ingester

    def run_ingest(self, step: int | None = None) -> dict[str, Any]:
        """Append one snapshot (admission-controlled, drain-aware).

        Runs under the server's chaos profile with kill faults armed; a
        simulated death is recovered and retried internally, so the call
        returns only when the commit landed (the report counts the kills
        it absorbed).
        """
        from repro import faults

        if self._draining:
            raise QueueClosed()
        if not self._ingest_lock.acquire(blocking=False):
            raise IngestBusy()
        try:
            ingester = self._ensure_ingester()
            with use_bus(self.bus), faults.use_faults(self._ingest_injector):
                report = ingester.ingest_step_resilient(step)
            # publish the committed manifest to the warm shared handle:
            # requests admitted from now on pin the new snapshot version
            self.state.ensemble.reload()
            return report.as_dict()
        finally:
            self._ingest_lock.release()

    def ingest_stats(self) -> dict[str, Any]:
        """Snapshot + WAL telemetry for ``/stats`` (cheap when no writer)."""
        from repro.obs import names as obs_names
        from repro.obs.metrics import get_registry

        registry = get_registry()
        doc: dict[str, Any] = {
            "ensemble_version": self.state.ensemble.version,
            "timesteps": len(self.state.ensemble.timesteps),
            "wal": {
                "commits": registry.counter(obs_names.WAL_COMMITS).value,
                "replayed": registry.counter(obs_names.WAL_REPLAYED).value,
                "torn_tails": registry.counter(obs_names.WAL_TORN_TAIL_DROPPED).value,
                "corrupt_records": registry.counter(obs_names.WAL_CORRUPT_DROPPED).value,
                "kills": registry.counter(obs_names.INGEST_KILLS).value,
            },
            "live": self._ingester.stats() if self._ingester is not None else None,
        }
        return doc

    def stats(self) -> dict[str, Any]:
        from repro.db.cache import stats_snapshot as query_cache_stats
        from repro.rag.cache import stats_snapshot as retrieval_cache_stats

        qstats = query_cache_stats()
        rstats = retrieval_cache_stats()
        return {
            "uptime_s": (
                round(self.pool.clock.now() - self._started_at, 3)
                if self._started_at is not None
                else 0.0
            ),
            "draining": self._draining,
            "workers": {
                "alive": self.pool.alive_workers,
                "executed": self.pool.executed,
            },
            "queue": self.queue.stats(),
            "sessions": self.registry.stats(),
            "breaker": {
                "state": self.pool.breaker.state,
                "consecutive_failures": self.pool.breaker.consecutive_failures,
            },
            "warmup": self.state.report.as_dict() if self.state.report else None,
            "query_cache": {
                "memory_hits": qstats.memory_hits,
                "disk_hits": qstats.disk_hits,
                "incremental_hits": qstats.incremental_hits,
                "misses": qstats.misses,
                "hit_ratio": round(qstats.hit_ratio, 4),
            },
            "retrieval_cache": {
                "memory_hits": rstats.memory_hits,
                "disk_hits": rstats.disk_hits,
                "builds": rstats.builds,
                "query_memo_hits": rstats.query_memo_hits,
                "query_memo_misses": rstats.query_memo_misses,
            },
            "bus": self.bus.stats(),
            # snapshot version queries pin against + WAL/kill counters;
            # "live" carries writer detail once the first ingest ran
            "ingest": self.ingest_stats(),
            # fleet topology + per-worker load/breaker state when the warm
            # sandbox is a SandboxFleet; None for single-client setups
            "sandbox_fleet": (
                self.state.sandbox.stats()
                if hasattr(self.state.sandbox, "stats")
                else None
            ),
        }


# ----------------------------------------------------------------------
# the HTTP handler
# ----------------------------------------------------------------------
def _make_handler(server: ReproServer):
    class Handler(BaseHTTPRequestHandler):
        # one worker request can take seconds; don't let keep-alive
        # connections pin HTTP threads between requests
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        def log_message(self, fmt, *args):  # quiet by default
            pass

        # -- helpers ---------------------------------------------------
        def _send_json(self, code: int, doc: dict[str, Any], headers: dict | None = None):
            body = json.dumps(doc, sort_keys=True).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> dict[str, Any] | None:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                return None
            try:
                return json.loads(self.rfile.read(length).decode())
            except (ValueError, UnicodeDecodeError):
                return None

        # -- routes ----------------------------------------------------
        def do_GET(self):
            if self.path == "/healthz":
                self._send_json(
                    200,
                    {
                        "status": "draining" if server._draining else "ok",
                        "warmed": server.state.warmed,
                        "workers": server.pool.alive_workers,
                    },
                )
            elif self.path == "/stats":
                self._send_json(200, server.stats())
            else:
                self._send_json(404, {"error": "not-found", "path": self.path})

        def do_POST(self):
            if self.path == "/v1/ingest":
                self._ingest_response()
                return
            if self.path != "/v1/query":
                self._send_json(404, {"error": "not-found", "path": self.path})
                return
            doc = self._read_body()
            if not doc or not isinstance(doc.get("question"), str) or not doc["question"].strip():
                self._send_json(400, {"error": "bad-request", "detail": "body must be JSON with a non-empty 'question'"})
                return
            question = doc["question"]
            session_id = str(doc.get("session") or "default")
            stream = bool(doc.get("stream", False))
            streamer = None
            try:
                if stream:
                    # subscribe before admission so no event is missed;
                    # needs the trace_id, which admission mints — so
                    # build the request first, then enqueue
                    session = server.registry.get_or_create(session_id)
                    index, run_id = session.next_run_id(question)
                    request = ServeRequest(
                        question=question,
                        session=session,
                        run_id=run_id,
                        request_index=index,
                        deadline=Deadline(
                            server.request_timeout_s, clock=server.pool.clock
                        ),
                        submitted_at=server.pool.clock.now(),
                    )
                    streamer = EventStreamer(request.trace_id)
                    server.queue.submit(request)
                else:
                    request = server.admit(question, session_id)
            except InvalidSessionId as exc:
                if streamer is not None:
                    streamer.close()
                self._send_json(400, {"error": "bad-session", "detail": str(exc)})
                return
            except QueueFull as exc:
                if streamer is not None:
                    streamer.close()
                self._send_json(
                    429,
                    {
                        "error": "queue-full",
                        "detail": str(exc),
                        "retry_after_s": exc.retry_after_s,
                        "queue_depth": exc.depth,
                    },
                    headers={"Retry-After": f"{exc.retry_after_s:.3f}"},
                )
                return
            except QueueClosed:
                if streamer is not None:
                    streamer.close()
                self._send_json(503, {"error": "draining", "detail": "server is shutting down"})
                return

            if stream:
                self._stream_response(request, streamer)
            else:
                self._block_response(request)

        def _ingest_response(self) -> None:
            doc = self._read_body() or {}
            step = doc.get("step")
            if step is not None and not isinstance(step, int):
                self._send_json(
                    400,
                    {"error": "bad-request", "detail": "'step' must be an integer"},
                )
                return
            try:
                report = server.run_ingest(step)
            except QueueClosed:
                self._send_json(
                    503, {"error": "draining", "detail": "server is shutting down"}
                )
                return
            except IngestBusy:
                self._send_json(
                    409,
                    {
                        "error": "ingest-busy",
                        "detail": "a snapshot ingest is already in flight",
                    },
                )
                return
            except ValueError as exc:
                # append_snapshot rejects out-of-grid / non-monotonic steps
                self._send_json(400, {"error": "bad-step", "detail": str(exc)})
                return
            self._send_json(200, {"status": "committed", "report": report})

        def _result_doc(self, request: ServeRequest) -> dict[str, Any]:
            return {
                "status": request.status,
                "session": request.session.session_id,
                "run_id": request.run_id,
                "trace_id": request.trace_id,
                "result": request.result,
                "error": request.error,
                # the snapshot-isolation receipt: which ensemble manifest
                # version this run was pinned to (outside the byte-compared
                # answer payload — two runs at the same version must agree)
                "snapshot": {"ensemble_version": request.snapshot_version},
                "timing": {
                    "queue_wait_s": round(request.queue_wait_s, 6),
                    "exec_s": round(request.exec_s, 6),
                },
            }

        def _block_response(self, request: ServeRequest) -> None:
            finished = request.wait(server.request_timeout_s + 5.0)
            if not finished:
                self._send_json(
                    504, {"error": "timeout", "run_id": request.run_id}
                )
                return
            code = 200 if request.status in ("ok", "failed") else 500
            self._send_json(code, self._result_doc(request))

        def _stream_response(self, request: ServeRequest, streamer: EventStreamer) -> None:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            try:
                for frame in streamer.frames(request.done):
                    self.wfile.write(frame)
                    self.wfile.flush()
                doc = self._result_doc(request)
                doc["stream_dropped_events"] = streamer.dropped
                self.wfile.write(sse_frame("result", doc))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away; the request still completes
            finally:
                streamer.close()

    return Handler
