"""Multi-tenant serving layer: one warm process, many sessions.

``repro serve`` turns the one-shot assistant into a long-running server:
shared read-only warm state (:mod:`repro.serve.state`), per-tenant
session isolation (:mod:`repro.serve.session`), bounded admission with
honest backpressure (:mod:`repro.serve.admission`), a worker pool
running the deterministic request path (:mod:`repro.serve.worker`),
per-request SSE progress streams (:mod:`repro.serve.streaming`), and the
stdlib HTTP front end tying them together (:mod:`repro.serve.server`).
"""

from repro.serve.admission import AdmissionQueue, QueueClosed, QueueFull
from repro.serve.server import ReproServer
from repro.serve.session import InvalidSessionId, ServeSession, SessionRegistry
from repro.serve.state import WarmState, WarmupReport
from repro.serve.streaming import EventStreamer, sse_frame
from repro.serve.worker import ServeRequest, WorkerPool, answer_payload

__all__ = [
    "AdmissionQueue",
    "EventStreamer",
    "InvalidSessionId",
    "QueueClosed",
    "QueueFull",
    "ReproServer",
    "ServeRequest",
    "ServeSession",
    "SessionRegistry",
    "WarmState",
    "WarmupReport",
    "WorkerPool",
    "answer_payload",
    "sse_frame",
]
