"""Per-request SSE progress streams over the process-wide event bus.

One server process has one :class:`~repro.obs.events.EventBus`; every
request's spans are published onto it tagged with the request's
``trace_id``.  A streaming client (``POST /v1/query`` with
``"stream": true``) gets those events fanned back out as a
``text/event-stream``: the subscription filters the bus down to the one
trace and buffers it (:func:`repro.obs.events.subscribe` with
``trace_id=`` and ``buffered=True``), so a slow or stalled HTTP client
can never stall the workers publishing on the request path — events the
client cannot absorb are dropped, counted, and reported in the terminal
``result`` frame.

Progress lines reuse :meth:`LiveRenderer.format_event`, so what streams
to a serve client is word-for-word what ``repro query --live`` prints.
"""

from __future__ import annotations

import json
import queue
from typing import Any, Iterator

from repro.obs.events import Event, LiveRenderer, subscribe


def sse_frame(event_name: str, data: dict[str, Any]) -> bytes:
    """One Server-Sent-Events frame (``event:`` + ``data:`` + blank)."""
    payload = json.dumps(data, separators=(",", ":"), sort_keys=True)
    return f"event: {event_name}\ndata: {payload}\n\n".encode()


class EventStreamer:
    """Bridge one request's bus events onto an SSE byte iterator."""

    def __init__(self, trace_id: str, verbose: bool = False, capacity: int = 4096):
        self.trace_id = trace_id
        self.verbose = verbose
        self._lines: queue.Queue[str] = queue.Queue()
        # buffered: the drain thread formats and enqueues; the publisher
        # (a worker thread mid-request) only ever appends to the buffer
        self._subscription = subscribe(
            self._on_event, trace_id=trace_id, buffered=True, capacity=capacity
        )

    def _on_event(self, event: Event) -> None:
        line = LiveRenderer.format_event(event, verbose=self.verbose)
        if line is not None:
            self._lines.put(line)

    def frames(self, done, poll_s: float = 0.05) -> Iterator[bytes]:
        """Yield progress frames until ``done`` is set and lines are drained."""
        while True:
            try:
                line = self._lines.get(timeout=poll_s)
            except queue.Empty:
                if done.is_set():
                    # one last non-blocking sweep for stragglers the
                    # buffer delivered after the done flag flipped
                    while True:
                        try:
                            yield sse_frame(
                                "progress", {"line": self._lines.get_nowait()}
                            )
                        except queue.Empty:
                            return
                continue
            yield sse_frame("progress", {"line": line})

    @property
    def dropped(self) -> int:
        return self._subscription.dropped

    def close(self) -> None:
        self._subscription.close()
