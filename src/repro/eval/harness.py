"""The 20 × 10 evaluation harness (Table 2).

"We tested each question 10 times without human feedback, either by
skipping human feedback or instructing the LLM to 'ignore missing
requirements and continue'."  Each run gets its own seed (fresh mock-LLM
error draws), its own provenance session, and its own analysis database;
metrics are judged by the programmatic oracle and aggregated into the
paper's row groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.agents.planner import AutoApprove
from repro.core import InferA, InferAConfig
from repro.eval.metrics import MetricsAggregator, RunMetrics, oracle_assess
from repro.eval.questions import (
    QUESTION_SUITE,
    EvalQuestion,
    classify_question,
)
from repro.llm.errors import ErrorModel
from repro.sim.ensemble import Ensemble


@dataclass
class HarnessConfig:
    runs_per_question: int = 10
    seed: int = 7
    error_model: ErrorModel = field(default_factory=ErrorModel)
    llm_latency_s: float = 0.0      # 0 keeps harness wall-time honest; >0 adds the simulated API latency
    keep_reports: bool = False


@dataclass
class HarnessResult:
    aggregator: MetricsAggregator
    metrics: list[RunMetrics]
    reports: list = field(default_factory=list)

    def ranges(self) -> dict[str, tuple[float, float]]:
        """Per-query min/max of the §4.1.3/§4.1.4 resource metrics.

        The paper reports these as ranges over per-question averages
        (tokens 65k–178k, time 96–1412 s, storage 8 MB–4.9 GB).
        """
        per_question: dict[str, list[RunMetrics]] = {}
        for m in self.metrics:
            per_question.setdefault(m.qid, []).append(m)

        def span(metric: str) -> tuple[float, float]:
            averages = [
                sum(getattr(m, metric) for m in runs) / len(runs)
                for runs in per_question.values()
            ]
            return (min(averages), max(averages)) if averages else (0.0, 0.0)

        return {
            "tokens": span("tokens"),
            "time_s": span("time_s"),
            "storage_bytes": span("storage_bytes"),
        }


class EvaluationHarness:
    def __init__(self, ensemble: Ensemble, workdir: str | Path, config: HarnessConfig | None = None):
        self.ensemble = ensemble
        self.workdir = Path(workdir)
        self.config = config or HarnessConfig()

    def run_suite(
        self,
        questions: tuple[EvalQuestion, ...] = QUESTION_SUITE,
        runs_per_question: int | None = None,
    ) -> HarnessResult:
        runs = runs_per_question or self.config.runs_per_question
        aggregator = MetricsAggregator()
        kept = []
        for question in questions:
            classification = classify_question(question)
            for run_index in range(runs):
                report = self.run_once(question, run_index)
                data_ok, visual_ok = oracle_assess(report)
                aggregator.add(
                    RunMetrics(
                        qid=question.qid,
                        run_index=run_index,
                        completed=report.completed,
                        tasks_fraction=report.run.tasks_completed_fraction,
                        data_ok=data_ok and report.run.tasks_completed_fraction > 0,
                        visual_ok=visual_ok,
                        tokens=report.tokens,
                        storage_bytes=report.storage_bytes,
                        time_s=report.time_s,
                        redo_iterations=report.run.redo_iterations,
                        plan_steps=classification.plan_steps,
                        semantic_level=classification.semantic_level,
                        analysis_level=classification.analysis_level,
                        multi_run=classification.multi_run,
                        multi_step=classification.multi_step,
                    )
                )
                if self.config.keep_reports:
                    kept.append(report)
        return HarnessResult(aggregator=aggregator, metrics=aggregator.rows, reports=kept)

    def run_once(self, question: EvalQuestion, run_index: int):
        """One seeded evaluation run of one question."""
        seed = self.config.seed + 1000 * run_index + hash(question.qid) % 997
        app = InferA(
            self.ensemble,
            self.workdir / question.qid / f"run_{run_index:02d}",
            InferAConfig(
                seed=seed,
                error_model=self.config.error_model,
                llm_latency_s=self.config.llm_latency_s,
            ),
        )
        return app.run_query(question.text, feedback=AutoApprove())
