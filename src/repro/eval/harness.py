"""The 20 × 10 evaluation harness (Table 2).

"We tested each question 10 times without human feedback, either by
skipping human feedback or instructing the LLM to 'ignore missing
requirements and continue'."  Each run gets its own seed (fresh mock-LLM
error draws), its own provenance session, and its own analysis database;
metrics are judged by the programmatic oracle and aggregated into the
paper's row groups.

The harness fans the (question, run_index) grid out to a process pool
(``HarnessConfig.workers``).  Runs are fully independent by construction
— per-run seeds derive from a stable CRC32 digest of the question id, so
they are identical in every interpreter and in every worker process —
and results are merged back in canonical grid order, which makes the
parallel ``RunMetrics`` rows identical to a sequential run's (except the
measured wall-clock ``time_s``, which is a per-run measurement, not a
derived output).  All runs share one retrieval-artifact cache (see
:mod:`repro.rag.cache`) so only the first run per corpus pays the
column-corpus embedding cost, and one semantic query-result cache (see
:mod:`repro.db.cache`) so a SELECT executed in any run — or any redo
attempt — is served from memory or mmap everywhere else; hit/miss
counters for both land in ``HarnessResult.perf``.
"""

from __future__ import annotations

import json
import os
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.agents.planner import AutoApprove
from repro.core import InferA, InferAConfig
from repro.db.cache import QueryCacheStats
from repro.db.cache import stats_snapshot as query_stats_snapshot
from repro.eval.metrics import MetricsAggregator, RunMetrics, oracle_assess
from repro.eval.questions import (
    QUESTION_SUITE,
    EvalQuestion,
    classify_question,
)
from repro.faults import FaultProfile
from repro.llm.errors import ErrorModel
from repro.obs.cost import CostLedger
from repro.obs.events import (
    NULL_BUS,
    JsonlSink,
    get_bus,
    replay_counters,
    replay_spans,
)
from repro.obs.export import phase_rollups, write_jsonl
from repro.obs.metrics import (
    empty_snapshot,
    get_registry,
    merge_snapshots,
    snapshot_delta,
)
from repro.obs.tracer import TraceContext, Tracer, use_tracer
from repro.rag.cache import CacheStats, stats_snapshot
from repro.sim.ensemble import Ensemble
from repro.util.timing import SimulatedClock, WallClock


@dataclass
class HarnessConfig:
    runs_per_question: int = 10
    seed: int = 7
    error_model: ErrorModel = field(default_factory=ErrorModel)
    llm_latency_s: float = 0.0      # 0 keeps harness wall-time honest; >0 adds the simulated API latency
    keep_reports: bool = False
    # worker processes for the (question, run) grid; 1 = sequential,
    # 0 = one per CPU core; explicit values are honored as given
    workers: int = 1
    # chaos mode: a FaultProfile threaded into every run's InferAConfig.
    # Injected infrastructure faults are absorbed by the resilience layer,
    # so the metrics rows stay identical to a fault-free suite; fault and
    # recovery counters surface in ``HarnessPerf.fault_counters``.
    fault_profile: FaultProfile | None = None
    # per-session hard token budget threaded into every run's
    # InferAConfig; blown budgets end sessions as classified failures
    token_budget: int | None = None


@dataclass
class RunOutcome:
    """One grid cell's full result (what pool workers ship back)."""

    metrics: RunMetrics
    cache_stats: CacheStats
    wall_s: float
    report: object | None = None
    # semantic query-result cache counters (repro.db.cache) measured
    # around the cell, merged across workers like ``cache_stats``
    query_cache_stats: QueryCacheStats = field(default_factory=QueryCacheStats)
    # serialized spans of the cell (parented under the suite's root span,
    # so the parent process can merge every worker into one trace)
    spans: list[dict] = field(default_factory=list)
    # obs-metrics delta measured around the cell; deltas from worker
    # processes merge element-wise into the suite total
    obs_metrics: dict = field(default_factory=empty_snapshot)
    # the session's cost ledger (CostLedger.as_dict()); cell ledgers
    # merge entry-wise into the suite ledger like metrics snapshots
    cost: dict = field(default_factory=dict)


@dataclass
class HarnessPerf:
    """Throughput and cache instrumentation for one ``run_suite`` call."""

    workers: int
    total_wall_s: float
    runs_per_s: float
    per_run_wall_s: list[float]
    cache: CacheStats
    query_cache: QueryCacheStats = field(default_factory=QueryCacheStats)
    # per-phase span rollups (spans/total_s/errors keyed by phase) over
    # the merged suite trace, plus the merged obs-metrics snapshot
    span_rollups: dict = field(default_factory=dict)
    obs_metrics: dict = field(default_factory=empty_snapshot)
    # the suite cost ledger (CostLedger.as_dict()): every cell's session
    # ledger merged entry-wise, totals == Σ per-entry spend
    cost: dict = field(default_factory=dict)

    @property
    def fault_counters(self) -> dict[str, int]:
        """Chaos accounting: injected faults and the recoveries that
        absorbed them, pulled from the merged obs-metrics counters."""
        prefixes = ("faults.", "resilience.", "checkpoint.corrupt",
                    "db.cache.quarantine", "storage.write_verify_retry")
        return {
            name: value
            for name, value in sorted(self.obs_metrics.get("counters", {}).items())
            if name.startswith(prefixes)
        }

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "total_wall_s": self.total_wall_s,
            "runs_per_s": self.runs_per_s,
            "per_run_wall_s": list(self.per_run_wall_s),
            "cache": self.cache.as_dict(),
            "query_cache": self.query_cache.as_dict(),
            "fault_counters": self.fault_counters,
            "span_rollups": dict(self.span_rollups),
            "obs_metrics": dict(self.obs_metrics),
            "cost": dict(self.cost),
        }


@dataclass
class HarnessResult:
    aggregator: MetricsAggregator
    metrics: list[RunMetrics]
    reports: list = field(default_factory=list)
    perf: HarnessPerf | None = None
    # the merged suite trace (suite root span + every cell's spans, in
    # canonical grid order) and where it was written on disk
    spans: list[dict] = field(default_factory=list)
    trace_path: Path | None = None

    def ranges(self) -> dict[str, tuple[float, float]]:
        """Per-query min/max of the §4.1.3/§4.1.4 resource metrics.

        The paper reports these as ranges over per-question averages
        (tokens 65k–178k, time 96–1412 s, storage 8 MB–4.9 GB).
        """
        per_question: dict[str, list[RunMetrics]] = {}
        for m in self.metrics:
            per_question.setdefault(m.qid, []).append(m)

        def span(metric: str) -> tuple[float, float]:
            averages = [
                sum(getattr(m, metric) for m in runs) / len(runs)
                for runs in per_question.values()
                if runs  # a question bucket with zero kept runs contributes nothing
            ]
            return (min(averages), max(averages)) if averages else (0.0, 0.0)

        return {
            "tokens": span("tokens"),
            "time_s": span("time_s"),
            "storage_bytes": span("storage_bytes"),
        }


def derive_seed(base_seed: int, qid: str, run_index: int) -> int:
    """Stable per-run seed for a (question, run) grid cell.

    Uses ``zlib.crc32`` rather than ``hash()``: Python's string hash is
    salted per interpreter (PYTHONHASHSEED), so the old derivation gave
    different seeds in every invocation — and in every pool worker.
    """
    return base_seed + 1000 * run_index + zlib.crc32(qid.encode("utf-8")) % 997


# ----------------------------------------------------------------------
# pool plumbing: one harness per worker process, built once in the
# initializer (fork or spawn), then driven cell by cell
# ----------------------------------------------------------------------
_WORKER_STATE: dict[str, "EvaluationHarness"] = {}


def _pool_init(ensemble_root: str, workdir: str, config: HarnessConfig) -> None:
    _WORKER_STATE["harness"] = EvaluationHarness(
        Ensemble(ensemble_root), workdir, config
    )


def _pool_execute(
    question: EvalQuestion, run_index: int, ctx: TraceContext | None
) -> RunOutcome:
    return _WORKER_STATE["harness"]._execute_cell(question, run_index, ctx)


class EvaluationHarness:
    def __init__(
        self,
        ensemble: Ensemble,
        workdir: str | Path,
        config: HarnessConfig | None = None,
        clock: WallClock | SimulatedClock | None = None,
    ):
        self.ensemble = ensemble
        self.workdir = Path(workdir)
        self.config = config or HarnessConfig()
        self.clock = clock or WallClock()

    # ------------------------------------------------------------------
    def resolve_workers(self, workers: int | None = None) -> int:
        requested = self.config.workers if workers is None else workers
        if requested <= 0:
            requested = os.cpu_count() or 1
        return max(1, requested)

    def run_suite(
        self,
        questions: tuple[EvalQuestion, ...] = QUESTION_SUITE,
        runs_per_question: int | None = None,
        workers: int | None = None,
    ) -> HarnessResult:
        runs = runs_per_question or self.config.runs_per_question
        n_workers = self.resolve_workers(workers)
        grid = [(question, run_index) for question in questions for run_index in range(runs)]

        # worker parity: pool workers start with empty in-process cache
        # tiers, so the main process must too — otherwise a sequential
        # suite could be served from memory warmed by earlier work in this
        # interpreter and diverge from a parallel run of the same grid.
        # Cross-suite reuse flows through the shared on-disk tier instead.
        from repro.db import cache as query_cache

        query_cache.clear_memory_cache()

        # streaming telemetry: when an event bus is active (repro eval
        # --live, serving layer), the trace file is written incrementally
        # by a JSONL sink as spans end, replacing the end-of-run export
        trace_path = self.workdir / "trace.jsonl"
        bus = get_bus()
        sink: JsonlSink | None = None
        if bus is not NULL_BUS:
            sink = JsonlSink(trace_path)
            bus.subscribe(sink)

        # the suite tracer owns the root span; its TraceContext is handed to
        # every cell — in both modes, so sequential and parallel runs build
        # the same span tree
        tracer = Tracer(clock=self.clock)
        start = tracer.clock.now()
        try:
            with use_tracer(tracer), tracer.span(
                "harness.run_suite",
                questions=len(questions),
                runs_per_question=runs,
                workers=n_workers,
            ):
                ctx = tracer.context()
                if n_workers <= 1 or len(grid) <= 1:
                    outcomes = [self._execute_cell(q, ri, ctx) for q, ri in grid]
                else:
                    outcomes = self._run_parallel(grid, n_workers, ctx)
            total_wall = tracer.clock.now() - start
        finally:
            if sink is not None:
                bus.unsubscribe(sink)
                sink.close()

        # canonical-order merge: outcomes arrive in grid order regardless
        # of which worker finished first, so the row list is identical to
        # a sequential run's
        aggregator = MetricsAggregator()
        kept: list = []
        cache_total = CacheStats()
        query_cache_total = QueryCacheStats()
        suite_ledger = CostLedger()
        per_run_wall: list[float] = []
        all_spans: list[dict] = list(tracer.span_dicts())
        obs_total = empty_snapshot()
        for outcome in outcomes:
            aggregator.add(outcome.metrics)
            cache_total.merge(outcome.cache_stats)
            query_cache_total.merge(outcome.query_cache_stats)
            suite_ledger.merge(outcome.cost)
            per_run_wall.append(outcome.wall_s)
            all_spans.extend(outcome.spans)
            obs_total = merge_snapshots(obs_total, outcome.obs_metrics)
            if outcome.report is not None:
                kept.append(outcome.report)
        if sink is None:
            write_jsonl(all_spans, trace_path)
        suite_cost = suite_ledger.as_dict()
        # persisted beside the trace so `repro cost` / `repro slo check`
        # can read a suite's spend and exact histogram extremes post-hoc
        (self.workdir / "cost_ledger.json").write_text(json.dumps(suite_cost, indent=1))
        (self.workdir / "metrics.json").write_text(json.dumps(obs_total, indent=1))
        perf = HarnessPerf(
            workers=n_workers,
            total_wall_s=total_wall,
            runs_per_s=len(grid) / total_wall if total_wall > 0 else 0.0,
            per_run_wall_s=per_run_wall,
            cache=cache_total,
            query_cache=query_cache_total,
            span_rollups=phase_rollups(all_spans),
            obs_metrics=obs_total,
            cost=suite_cost,
        )
        return HarnessResult(
            aggregator=aggregator,
            metrics=aggregator.rows,
            reports=kept,
            perf=perf,
            spans=all_spans,
            trace_path=trace_path,
        )

    def _run_parallel(
        self,
        grid: list[tuple[EvalQuestion, int]],
        n_workers: int,
        ctx: TraceContext | None,
    ) -> list[RunOutcome]:
        bus = get_bus()
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_pool_init,
            initargs=(str(self.ensemble.root), str(self.workdir), self.config),
        ) as pool:
            futures = [pool.submit(_pool_execute, q, ri, ctx) for q, ri in grid]
            outcomes: list[RunOutcome] = []
            for future in futures:
                outcome = future.result()
                # cross-process propagation: fork children reset their
                # ambient bus (they must not write into inherited sinks),
                # so each cell's spans and counter deltas are re-published
                # here as the future resolves — parenting rides on the
                # span dicts' parent_id, so subscribers see the same
                # canonical tree a sequential in-process run publishes
                if bus is not NULL_BUS:
                    replay_spans(bus, outcome.spans)
                    replay_counters(bus, outcome.obs_metrics.get("counters", {}))
                outcomes.append(outcome)
            return outcomes

    # ------------------------------------------------------------------
    def _execute_cell(
        self,
        question: EvalQuestion,
        run_index: int,
        ctx: TraceContext | None = None,
    ) -> RunOutcome:
        """One grid cell: run, judge, classify, and measure."""
        stats_before = stats_snapshot()
        query_before = query_stats_snapshot()
        obs_before = get_registry().snapshot()
        # a fresh tracer per cell (unique span-id prefix, so merged worker
        # traces never collide) parented under the suite's root span
        cell_tracer = Tracer(clock=self.clock, context=ctx)
        t0 = cell_tracer.clock.now()
        with use_tracer(cell_tracer), cell_tracer.span(
            "harness.cell", qid=question.qid, run_index=run_index
        ):
            report = self.run_once(question, run_index)
        wall = cell_tracer.clock.now() - t0
        data_ok, visual_ok = oracle_assess(report)
        classification = classify_question(question)
        metrics = RunMetrics(
            qid=question.qid,
            run_index=run_index,
            completed=report.completed,
            tasks_fraction=report.run.tasks_completed_fraction,
            data_ok=data_ok and report.run.tasks_completed_fraction > 0,
            visual_ok=visual_ok,
            tokens=report.tokens,
            storage_bytes=report.storage_bytes,
            time_s=report.time_s,
            redo_iterations=report.run.redo_iterations,
            plan_steps=classification.plan_steps,
            semantic_level=classification.semantic_level,
            analysis_level=classification.analysis_level,
            multi_run=classification.multi_run,
            multi_step=classification.multi_step,
        )
        return RunOutcome(
            metrics=metrics,
            cache_stats=stats_snapshot().delta(stats_before),
            query_cache_stats=query_stats_snapshot().delta(query_before),
            wall_s=wall,
            report=report if self.config.keep_reports else None,
            spans=cell_tracer.span_dicts() + list(report.trace_spans),
            obs_metrics=snapshot_delta(get_registry().snapshot(), obs_before),
            cost=report.cost,
        )

    def run_once(self, question: EvalQuestion, run_index: int):
        """One seeded evaluation run of one question."""
        seed = derive_seed(self.config.seed, question.qid, run_index)
        app = InferA(
            self.ensemble,
            self.workdir / question.qid / f"run_{run_index:02d}",
            InferAConfig(
                seed=seed,
                error_model=self.config.error_model,
                llm_latency_s=self.config.llm_latency_s,
                retrieval_cache_dir=str(self.workdir / ".retrieval_cache"),
                query_cache_dir=str(self.workdir / ".query_cache"),
                fault_profile=self.config.fault_profile,
                token_budget=self.config.token_budget,
            ),
            clock=self.clock,
        )
        return app.run_query(question.text, feedback=AutoApprove())
