"""Objective run metrics and the Table 2 aggregator.

§3.3 defines six metrics; the first two need a ground-truth judgment that
the paper made by hand.  Here the oracle is programmatic: it knows, from
the structured intent, which terminal artifact a correct analysis must
produce (e.g. a per-seed-mass scatter table with a best-parameter row for
the SMHM question; a per-(run, step) track of the requested metric for
evolution questions) and checks the run's actual output tables against
that expectation — so valid-but-off-topic outputs (the tool-misuse and
viz-misselection failure modes) are scored unsatisfactory even though the
run completed, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.app import QueryReport
from repro.frame import Frame


@dataclass
class RunMetrics:
    """One evaluation run's outcomes (a row of the raw results)."""

    qid: str
    run_index: int
    completed: bool
    tasks_fraction: float
    data_ok: bool
    visual_ok: bool
    tokens: int
    storage_bytes: int
    time_s: float
    redo_iterations: int
    plan_steps: int
    semantic_level: int
    analysis_level: int
    multi_run: bool
    multi_step: bool


# ----------------------------------------------------------------------
# the oracle
# ----------------------------------------------------------------------
def oracle_assess(report: QueryReport) -> tuple[bool, bool]:
    """Return (data_satisfactory, visual_satisfactory) for one run."""
    intent = report.run.intent
    tables = report.tables
    data_ok = _assess_data(intent, tables, report)
    visual_ok = _assess_visual(intent, report)
    return data_ok, visual_ok


def _nonempty(tables: dict[str, Frame], name: str, columns: list[str] | None = None) -> bool:
    frame = tables.get(name)
    if frame is None or frame.num_rows == 0:
        return False
    if columns:
        return all(c in frame for c in columns)
    return True


def _assess_data(intent: dict, tables: dict[str, Frame], report: QueryReport) -> bool:
    analyses = intent.get("analyses", [])
    checks: list[bool] = []
    metric_terms = [
        t for t in intent.get("metric_terms", []) if t.startswith(("fof_", "sod_", "gal_"))
    ]
    entities = intent.get("entities", ["halos"])
    primary = "halos" if "halos" in entities else (entities[0] if entities else "halos")
    prefixes = ("gal_",) if primary == "galaxies" else ("fof_", "sod_")
    entity_terms = [t for t in metric_terms if t.startswith(prefixes)]
    default_metric = (
        (intent.get("rank_metric") if str(intent.get("rank_metric") or "").startswith(prefixes) else None)
        or (entity_terms[0] if entity_terms else None)
        or ("gal_stellar_mass" if primary == "galaxies" else "fof_halo_count")
    )

    if "relation_by_param" in analyses:
        checks.append(_nonempty(tables, "fit_by_param", ["scatter", "slope"]))
        checks.append(_nonempty(tables, "best_param"))
    elif "relation_fit" in analyses:
        rel = intent.get("relation") or {}
        checks.append(_nonempty(tables, "fit", ["slope", "normalization"]))
        if rel.get("per_step"):
            checks.append(_nonempty(tables, "evolution", ["earliest", "latest"]))
    if "track_evolution" in analyses:
        # the metric column must actually be in the track output: the
        # position-tool misuse produces a track without it
        track_metrics = entity_terms or [default_metric]
        for tm in track_metrics:
            checks.append(_nonempty(tables, f"track_{tm}", [tm, "step"]))
    if "aggregate" in analyses:
        agg = tables.get("aggregated")
        checks.append(
            agg is not None
            and agg.num_rows > 0
            and f"{default_metric}_mean" in agg.columns
        )
    if "interestingness" in analyses:
        checks.append(_nonempty(tables, "scored", ["interestingness"]))
    if "compare_groups" in analyses:
        comparison = tables.get("comparison")
        checks.append(
            comparison is not None
            and comparison.num_rows >= 2
            and "mean" in comparison
            and len(np.unique(comparison["group"])) >= 2
        )
    if "parameter_inference" in analyses:
        checks.append(_nonempty(tables, "inference", ["direction"]))
    if "correlation" in analyses:
        checks.append(
            _nonempty(tables, "alignment", ["alignment_offset"])
            or _nonempty(tables, "correlation")
        )
    if "neighborhood" in analyses:
        checks.append(_nonempty(tables, "neighborhood", ["is_target", "distance"]))
    if "top_k" in analyses and not checks:
        work = tables.get("work")
        k = intent.get("top_k") or 1
        checks.append(work is not None and 0 < work.num_rows)
        if work is not None and not intent.get("runs") and not intent.get("steps"):
            pass  # per-cell counts checked below only for single-cell scope
        elif work is not None and intent.get("runs") and intent.get("steps"):
            checks.append(work.num_rows <= k * 4)
    if not checks:  # pure extraction fallback
        work = tables.get("work")
        checks.append(work is not None and work.num_rows > 0)
    return all(checks)


_COMPATIBLE_FORMS = {
    "line": {"line"},
    "scatter": {"scatter"},
    "hist": {"hist"},
    "umap": {"umap"},
    "paraview3d": {"paraview3d"},
    "heatmap": {"heatmap"},
}


def _assess_visual(intent: dict, report: QueryReport) -> bool:
    viz_steps = [s for s in report.run.steps if s.kind == "viz"]
    planned_viz = sum(1 for s in report.plan.steps if s.get("kind") == "viz")
    if planned_viz == 0:
        return report.completed
    if not viz_steps:
        return False
    ok_steps = [s for s in viz_steps if s.status == "ok"]
    if len(ok_steps) < planned_viz:
        return False
    for s in ok_steps:
        intended = s.form_intended or s.form_used
        if s.form_used not in _COMPATIBLE_FORMS.get(intended, {intended}):
            return False
    return True


# ----------------------------------------------------------------------
# aggregation (the Table 2 machinery)
# ----------------------------------------------------------------------
@dataclass
class AggregateRow:
    label: str
    count: int                  # questions in the bucket
    runs: int
    pct_satisfactory_data: float
    pct_satisfactory_visual: float
    pct_runs_completed: float
    pct_tasks_complete: float
    token_usage: float
    storage_overhead_gb: float
    time_s: float
    redo_iterations: float


@dataclass
class MetricsAggregator:
    rows: list[RunMetrics] = field(default_factory=list)

    def add(self, metrics: RunMetrics) -> None:
        self.rows.append(metrics)

    def merge(self, other: "MetricsAggregator") -> "MetricsAggregator":
        """Fold another aggregator's rows into this one (in its order).

        Sharded evaluation (the parallel harness, future multi-host
        sweeps) aggregates per shard and merges in canonical shard order,
        which yields the exact row list a sequential run produces.
        """
        self.rows.extend(other.rows)
        return self

    @classmethod
    def from_rows(cls, rows: list[RunMetrics]) -> "MetricsAggregator":
        return cls(rows=list(rows))

    def bucket(self, label: str, predicate: Callable[[RunMetrics], bool]) -> AggregateRow:
        selected = [r for r in self.rows if predicate(r)]
        n = len(selected)
        qids = {r.qid for r in selected}
        if n == 0:
            return AggregateRow(label, 0, 0, *([float("nan")] * 8))
        return AggregateRow(
            label=label,
            count=len(qids),
            runs=n,
            pct_satisfactory_data=100.0 * sum(r.data_ok for r in selected) / n,
            pct_satisfactory_visual=100.0 * sum(r.visual_ok for r in selected) / n,
            pct_runs_completed=100.0 * sum(r.completed for r in selected) / n,
            pct_tasks_complete=100.0 * sum(r.tasks_fraction for r in selected) / n,
            token_usage=sum(r.tokens for r in selected) / n,
            storage_overhead_gb=sum(r.storage_bytes for r in selected) / n / 1e9,
            time_s=sum(r.time_s for r in selected) / n,
            redo_iterations=sum(r.redo_iterations for r in selected) / n,
        )

    def table2_rows(self) -> list[AggregateRow]:
        """All row groups of the paper's Table 2, in order."""
        lv = {0: "Easy", 1: "Medium", 2: "Hard"}
        out: list[AggregateRow] = []
        for level in (0, 1, 2):
            out.append(
                self.bucket(
                    f"Analysis {lv[level]}", lambda r, L=level: r.analysis_level == L
                )
            )
        for level in (0, 1, 2):
            out.append(
                self.bucket(
                    f"Semantic {lv[level]}", lambda r, L=level: r.semantic_level == L
                )
            )
        out.append(self.bucket("Single sim / Single step", lambda r: not r.multi_run and not r.multi_step))
        out.append(self.bucket("Single sim / Multi step", lambda r: not r.multi_run and r.multi_step))
        out.append(self.bucket("Multi sim / Single step", lambda r: r.multi_run and not r.multi_step))
        out.append(self.bucket("Multi sim / Multi step", lambda r: r.multi_run and r.multi_step))
        out.append(self.bucket("Total", lambda r: True))
        out.append(self.bucket("Successful runs", lambda r: r.completed))
        out.append(self.bucket("Unsuccessful runs", lambda r: not r.completed))
        return out
