"""Evaluation suite reproducing the paper's §3.3/§4 protocol.

Twenty questions spanning the Table 1 difficulty matrix, ten seeded runs
each with human feedback skipped, six objective metrics, and the grouped
aggregations of Table 2; plus the §4.4 baselines (direct chat,
PandasAI-style full ingestion) and the §4.5 variability study.
"""

from repro.eval.questions import QUESTION_SUITE, EvalQuestion, classify_suite
from repro.eval.metrics import RunMetrics, MetricsAggregator, oracle_assess
from repro.eval.harness import (
    EvaluationHarness,
    HarnessConfig,
    HarnessPerf,
    HarnessResult,
    RunOutcome,
    derive_seed,
)
from repro.eval.reporting import format_table2, format_table1

__all__ = [
    "QUESTION_SUITE",
    "EvalQuestion",
    "classify_suite",
    "RunMetrics",
    "MetricsAggregator",
    "oracle_assess",
    "EvaluationHarness",
    "HarnessConfig",
    "HarnessPerf",
    "HarnessResult",
    "RunOutcome",
    "derive_seed",
    "format_table2",
    "format_table1",
]
