"""The 20-question evaluation suite (Table 1's difficulty matrix).

Seven questions are quoted verbatim from the paper's Table 1/§4.5; the
remaining thirteen are constructed in the same styles to fill out the
paper's reported distribution:

* analysis difficulty (plan-step thresholds 4.5 / 5.5): 6 easy, 6 medium,
  8 hard;
* semantic complexity: 8 easy, 5 medium, 7 hard;
* scope: 7 single-sim/single-step, 5 single-sim/multi-step,
  5 multi-sim/single-step, 3 multi-sim/multi-step.

Categories are *derived*, not asserted: ``classify_suite`` runs the real
planner on each question and classifies from the resulting plan length
and unresolved semantic terms, mirroring the paper's methodology (step
thresholds + metadata-term alignment).  ``tests/test_eval_questions.py``
pins the derived marginals to the paper's counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.interpret import interpret_question
from repro.llm.plan import analysis_level_from_steps, expand_intent, semantic_level


@dataclass(frozen=True)
class EvalQuestion:
    qid: str
    text: str
    from_paper: bool = False


QUESTION_SUITE: tuple[EvalQuestion, ...] = (
    # ------------------------------------------------------ paper verbatim
    EvalQuestion(
        "q01",
        "Across all the simulations, what is the average size (fof_halo_count) "
        "of halos at each time step?",
        from_paper=True,
    ),
    EvalQuestion(
        "q02",
        "Please find the largest 100 galaxies and 100 halos at timestep 498 in "
        "simulation 0. I would like to plot all of them in Paraview and also "
        "see how well aligned those galaxies and halos are to each other.",
        from_paper=True,
    ),
    EvalQuestion(
        "q03",
        "Can you plot the change in mass of the largest friends-of-friends "
        "halos for all timesteps in all simulations? Provide me two plots "
        "using both fof_halo_count and fof_halo_mass as metrics for mass.",
        from_paper=True,
    ),
    EvalQuestion(
        "q04",
        "I would like to find the most unique halos in simulation 0 at "
        "timestep 498. Using velocity, mass, and kinetic energy of the halos, "
        "generate an interestingness score and plot the top 1000 halos as a "
        "UMAP plot, highlighting the top 20 halos in simulation 0 that are "
        "the most interesting.",
        from_paper=True,
    ),
    EvalQuestion(
        "q05",
        "How does the slope and normalization of the gas-mass fraction-mass "
        "relation (sod_halo_MGas500c/sod_halo_M500c) evolve from the earliest "
        "timestep to the latest timestep in simulation 0?",
        from_paper=True,
    ),
    EvalQuestion(
        "q06",
        "First find the two largest halos by their halo count in timestep 624 "
        "of simulation 0. Then find the top 10 galaxies associated to those "
        "two halos (related by fof_halo_tag). What are the differences in "
        "characteristics of the two groups of galaxies? For example, "
        "differences in gas-mass, mass, or kinetic energy?",
        from_paper=True,
    ),
    EvalQuestion(
        "q07",
        "At timestep 624, how does the slope and intrinsic scatter of the "
        "stellar-to-halo mass (SMHM) relation vary as a function of seed "
        "mass? Which seed mass values produce the tightest SMHM correlation, "
        "and is there a threshold seed mass that maximizes stellar-mass "
        "assembly efficiency?",
        from_paper=True,
    ),
    # ------------------------------------------------- constructed fill-in
    EvalQuestion(
        "q08",
        "Can you find me the top 20 largest friends-of-friends halos from "
        "timestep 498 in simulation 0?",
        from_paper=True,  # quoted in §4.5 as the precise control question
    ),
    EvalQuestion(
        "q09",
        "What is the average fof_halo_mass of halos at each time step in "
        "simulation 2?",
    ),
    EvalQuestion(
        "q10",
        "Find the top 50 galaxies by gal_stellar_mass at each time step in "
        "every simulation.",
    ),
    EvalQuestion(
        "q11",
        "What is the average gal_gas_mass of galaxies at each time step in "
        "simulation 0?",
    ),
    EvalQuestion(
        "q12",
        "Show a histogram of fof_halo_mass for halos at timestep 498 in "
        "simulation 3.",
    ),
    EvalQuestion(
        "q13",
        "Plot the trend in gal_stellar_mass of the largest 5 galaxies over "
        "all timesteps in simulation 0.",
    ),
    EvalQuestion(
        "q14",
        "Please find the largest 50 galaxies and 50 halos at timestep 624 in "
        "every simulation and plot them in Paraview. Which simulation "
        "produces the tightest alignment between galaxies and halos?",
    ),
    EvalQuestion(
        "q15",
        "Find the most unique galaxies in simulation 1 at timestep 624: using "
        "gas mass, stellar mass, and kinetic energy, generate an "
        "interestingness score and plot the top 500 galaxies as a UMAP plot, "
        "highlighting the top 20 that are the most interesting.",
    ),
    EvalQuestion(
        "q16",
        "How does the slope and normalization of the gas-mass fraction-mass "
        "relation (sod_halo_MGas500c/sod_halo_M500c) evolve from the earliest "
        "timestep to the latest timestep in simulation 2?",
    ),
    EvalQuestion(
        "q17",
        "First find the two largest halos by their halo count in timestep 498 "
        "of simulation 1. Then find the top 10 galaxies associated to those "
        "two halos (related by fof_halo_tag). What are the differences in "
        "characteristics of the two groups of galaxies, for example in "
        "gas-mass or kinetic energy?",
    ),
    EvalQuestion(
        "q18",
        "At timestep 498, how does the slope and intrinsic scatter of the "
        "stellar-to-halo mass (SMHM) relation vary as a function of seed "
        "mass, and which seed mass gives the tightest relation?",
    ),
    EvalQuestion(
        "q19",
        "Can you make an inference on the direction of the FSN and VEL "
        "parameters in order to increase the halo count of the 100 largest "
        "halos in timestep 624? Also plot a summary of the differences in "
        "halo characteristics between the two simulations.",
        from_paper=True,  # quoted in §4.5 as the ambiguous question
    ),
    EvalQuestion(
        "q20",
        "Across all the simulations at timestep 624, what are the differences "
        "in characteristics between the halos of the simulation with the "
        "largest average halo count and the others? For example velocity "
        "dispersion or kinetic energy.",
    ),
)


@dataclass(frozen=True)
class QuestionClassification:
    qid: str
    plan_steps: int
    analysis_level: int   # 0 easy / 1 medium / 2 hard
    semantic_level: int
    multi_run: bool
    multi_step: bool


def classify_question(question: EvalQuestion) -> QuestionClassification:
    """Derive the Table 1 categories by running the real planner."""
    intent = interpret_question(question.text)
    steps = expand_intent(intent)
    return QuestionClassification(
        qid=question.qid,
        plan_steps=len(steps),
        analysis_level=analysis_level_from_steps(len(steps)),
        semantic_level=semantic_level(intent),
        multi_run=intent.multi_run,
        multi_step=intent.multi_step,
    )


def classify_suite(
    suite: tuple[EvalQuestion, ...] = QUESTION_SUITE,
) -> list[QuestionClassification]:
    return [classify_question(q) for q in suite]
