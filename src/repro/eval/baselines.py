"""Comparative baselines (§4.4).

Two non-agentic comparators the paper contrasts against:

* **Direct chat** — paste the data into the prompt.  Context is finite and
  numeric fidelity degrades with prompt size; the paper found a 20x5
  dataframe "already resulted in hallucinated values and relationships".
  :class:`DirectChatBaseline` models exactly that: values round-trip
  through a token-budgeted prompt with a hallucination probability that
  rises with the fraction of the context window consumed, and anything
  past the window is silently truncated.
* **PandasAI-style full ingestion** — load the whole dataset into memory,
  then analyze.  :class:`FullIngestionBaseline` actually performs the full
  read (every column of every file), so its measured footprint *is* the
  ensemble size; a memory budget makes the paper's infeasibility argument
  quantitative.

Both run against the same synthetic ensemble as InferA, so the benchmark
compares like with like: correctness on matched queries, bytes touched,
and peak in-memory bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.frame import Frame, concat
from repro.sim.ensemble import Ensemble
from repro.util.rngs import SeedSequenceFactory
from repro.util.tokens import count_tokens


class ContextWindowExceeded(RuntimeError):
    """Prompt would not fit the model's context window."""


class MemoryBudgetExceeded(RuntimeError):
    """Full ingestion exceeds the available memory budget."""


def frame_to_prompt(frame: Frame, max_rows: int | None = None) -> str:
    """Serialize a frame the way chat users paste tables."""
    rows = frame.num_rows if max_rows is None else min(max_rows, frame.num_rows)
    lines = [", ".join(frame.columns)]
    cols = [frame.column(c) for c in frame.columns]
    for i in range(rows):
        lines.append(", ".join(str(col[i]) for col in cols))
    return "\n".join(lines)


@dataclass
class DirectChatAnswer:
    value: float
    hallucinated: bool
    prompt_tokens: int
    truncated_rows: int


@dataclass
class DirectChatBaseline:
    """Paste-the-data chat model with context-driven degradation."""

    context_window: int = 128_000
    # hallucination probability grows with context fill; even tiny tables
    # have a floor probability per the paper's 20x5 observation
    base_hallucination: float = 0.35
    seed: int = 0
    _seeds: SeedSequenceFactory = field(init=False)

    def __post_init__(self) -> None:
        self._seeds = SeedSequenceFactory(self.seed)

    def ask_mean(self, frame: Frame, column: str) -> DirectChatAnswer:
        """Ask for the mean of a column over a pasted table."""
        prompt = frame_to_prompt(frame)
        tokens = count_tokens(prompt)
        truncated_rows = 0
        working = frame
        if tokens > self.context_window:
            # silent truncation: the model only sees what fits
            fit_fraction = self.context_window / tokens
            keep = max(1, int(frame.num_rows * fit_fraction))
            truncated_rows = frame.num_rows - keep
            working = frame[:keep]
            tokens = self.context_window
        true_mean = float(np.mean(working.column(column)))
        fill = tokens / self.context_window
        p_hallucinate = min(0.98, self.base_hallucination + 0.6 * fill)
        rng = self._seeds.stream("chat", frame.num_rows, column)
        if rng.uniform() < p_hallucinate:
            # plausible-looking but wrong: right magnitude, wrong digits
            value = true_mean * float(rng.lognormal(0.0, 0.35)) + float(
                rng.normal(0.0, abs(true_mean) * 0.05 + 1e-9)
            )
            return DirectChatAnswer(value, True, tokens, truncated_rows)
        return DirectChatAnswer(true_mean, False, tokens, truncated_rows)


@dataclass
class IngestionReport:
    peak_bytes: int
    rows: int
    answer: float | None
    seconds_estimate: float


@dataclass
class FullIngestionBaseline:
    """PandasAI-style: everything in memory before any analysis."""

    memory_budget_bytes: int = 8 << 30   # one compute node's RAM

    def ingest_and_mean(
        self, ensemble: Ensemble, kind: str, column: str
    ) -> IngestionReport:
        """Load the *entire* ensemble's ``kind`` catalog, then aggregate.

        Raises :class:`MemoryBudgetExceeded` the moment the running total
        passes the budget — mirroring the OOM a real full-ingestion tool
        hits on a terabyte-scale dataset.
        """
        frames: list[Frame] = []
        peak = 0
        for run in range(ensemble.n_runs):
            for step in ensemble.timesteps:
                gio = ensemble.open_file(run, step, kind)
                frame = gio.read()  # all columns: full ingestion by definition
                frames.append(frame)
                peak += frame.nbytes()
                if peak > self.memory_budget_bytes:
                    raise MemoryBudgetExceeded(
                        f"ingested {peak:,} bytes of {kind!r} data; "
                        f"budget is {self.memory_budget_bytes:,}"
                    )
        table = concat(frames)
        return IngestionReport(
            peak_bytes=peak,
            rows=table.num_rows,
            answer=float(np.mean(table.column(column))),
            seconds_estimate=peak / (200e6),  # ~200 MB/s sustained read
        )

    def projected_peak_bytes(self, ensemble: Ensemble) -> int:
        """Bytes a full ingestion would need, without performing it."""
        return ensemble.total_data_bytes()


def static_linear_plan(steps: list[dict]) -> list[dict]:
    """Coerce a dynamic plan into the §4.4.1 "static linear workflow".

    One fixed pipeline — load, one SQL filter, one Python computation, one
    visualization — with no supervisor adaptivity beyond that.  Complex
    questions whose correct decomposition needs several analysis steps
    lose everything past the first, which is exactly the limitation the
    paper attributes to static-workflow designs.
    """
    fixed: list[dict] = []
    seen_kinds: set[str] = set()
    for step in steps:
        kind = step["kind"]
        if kind in ("load", "sql") and kind not in seen_kinds:
            fixed.append(step)
            seen_kinds.add(kind)
        elif kind == "python" and "python" not in seen_kinds:
            fixed.append(step)
            seen_kinds.add("python")
        elif kind == "viz" and "viz" not in seen_kinds:
            fixed.append(step)
            seen_kinds.add("viz")
    return fixed
