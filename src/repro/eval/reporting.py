"""Plain-text rendering of the paper's tables, plus raw-metrics export."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.eval.metrics import AggregateRow, RunMetrics
from repro.eval.questions import EvalQuestion, QuestionClassification
from repro.frame import Frame
from repro.frame.io import write_csv

_LV = {0: "Easy", 1: "Medium", 2: "Hard"}


def format_table1(
    questions: list[EvalQuestion], classifications: list[QuestionClassification]
) -> str:
    """The difficulty matrix: questions bucketed by semantic x analysis."""
    grid: dict[tuple[int, int], list[str]] = {}
    for q, c in zip(questions, classifications):
        grid.setdefault((c.semantic_level, c.analysis_level), []).append(q.qid)
    lines = ["Table 1: difficulty matrix (rows = semantic complexity, cols = analysis difficulty)"]
    header = f"{'':>10} | {'Easy':^18} | {'Medium':^18} | {'Hard':^18}"
    lines.append(header)
    lines.append("-" * len(header))
    for sem in (0, 1, 2):
        cells = []
        for ana in (0, 1, 2):
            qids = grid.get((sem, ana), [])
            cells.append(",".join(qids) if qids else "n/a")
        lines.append(f"{_LV[sem]:>10} | {cells[0]:^18} | {cells[1]:^18} | {cells[2]:^18}")
    return "\n".join(lines)


def metrics_to_frame(metrics: list[RunMetrics]) -> Frame:
    """Raw per-run metrics as a Frame (one row per evaluation run)."""
    if not metrics:
        return Frame()
    fields = [
        "qid", "run_index", "completed", "tasks_fraction", "data_ok", "visual_ok",
        "tokens", "storage_bytes", "time_s", "redo_iterations", "plan_steps",
        "semantic_level", "analysis_level", "multi_run", "multi_step",
    ]
    columns: dict[str, np.ndarray] = {}
    for name in fields:
        values = [getattr(m, name) for m in metrics]
        dtype = object if isinstance(values[0], str) else None
        columns[name] = np.asarray(values, dtype=dtype)
    return Frame(columns)


def save_metrics_csv(metrics: list[RunMetrics], path: str | Path) -> int:
    """Persist raw run metrics for downstream analysis; returns bytes written."""
    return write_csv(metrics_to_frame(metrics), path)


def format_table2(rows: list[AggregateRow]) -> str:
    header = (
        f"{'Group':<28} {'(n)':>4} {'%Data':>6} {'%Vis':>6} {'%Compl':>7} "
        f"{'%Tasks':>7} {'Tokens':>9} {'Stor(GB)':>9} {'Time(s)':>8} {'Redo':>6}"
    )
    lines = ["Table 2: performance evaluation", header, "-" * len(header)]
    for r in rows:
        if r.runs == 0:
            lines.append(f"{r.label:<28} {'0':>4} {'-':>6}")
            continue
        lines.append(
            f"{r.label:<28} {r.count:>4} {r.pct_satisfactory_data:>6.0f} "
            f"{r.pct_satisfactory_visual:>6.0f} {r.pct_runs_completed:>7.0f} "
            f"{r.pct_tasks_complete:>7.0f} {r.token_usage:>9.0f} "
            f"{r.storage_overhead_gb:>9.4f} {r.time_s:>8.1f} {r.redo_iterations:>6.2f}"
        )
    return "\n".join(lines)
