"""Typed-state workflow graph engine (LangGraph substitute).

The paper implements agent routing and "state-based workflow management"
with LangGraph.  This package reproduces the parts InferA relies on:

* a state dict flowing through named nodes, merged by per-key reducers,
* static and conditional edges (the supervisor's routing decisions),
* interrupts for human-in-the-loop pauses (plan approval),
* a checkpointer that snapshots state after every node, enabling the
  paper's stateful branch-from-checkpoint exploration (§4.2.1).
"""

from repro.graph.state import Channel, replace_reducer, append_reducer, merge_reducer, add_reducer
from repro.graph.graph import StateGraph, CompiledGraph, END, GraphError, GraphInterrupt
from repro.graph.checkpoint import Checkpointer, Checkpoint, DurableCheckpointer
from repro.graph.events import ExecutionEvent

__all__ = [
    "Channel",
    "replace_reducer",
    "append_reducer",
    "merge_reducer",
    "add_reducer",
    "StateGraph",
    "CompiledGraph",
    "END",
    "GraphError",
    "GraphInterrupt",
    "Checkpointer",
    "Checkpoint",
    "DurableCheckpointer",
    "ExecutionEvent",
]
