"""State checkpointing and branch-from-checkpoint.

§4.2.1: "by capturing and preserving the exact computational state from
each analysis agent, the system enables efficient workflow branching ...
analysts can load from specific checkpoints and alter follow-up steps."

Checkpoints snapshot the full state dict after every node.  Snapshots are
deep copies, so later mutation cannot corrupt history; branching copies a
checkpoint chain onto a new thread id and execution resumes from there.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Checkpoint:
    checkpoint_id: str
    thread_id: str
    seq: int
    node: str
    next_node: str | None
    state: dict[str, Any]
    # serialized ExecutionEvent dicts up to this point; restored tolerantly
    # on resume so event history (including timing fields) survives the
    # round-trip even across schema evolution
    events: list[dict[str, Any]] = field(default_factory=list)


@dataclass
class Checkpointer:
    """In-memory checkpoint store keyed by thread id."""

    _threads: dict[str, list[Checkpoint]] = field(default_factory=dict)

    def save(
        self,
        thread_id: str,
        seq: int,
        node: str,
        next_node: str | None,
        state: dict[str, Any],
        events: list[dict[str, Any]] | None = None,
    ) -> Checkpoint:
        cp = Checkpoint(
            checkpoint_id=f"{thread_id}:{seq}",
            thread_id=thread_id,
            seq=seq,
            node=node,
            next_node=next_node,
            state=copy.deepcopy(state),
            events=copy.deepcopy(events or []),
        )
        self._threads.setdefault(thread_id, []).append(cp)
        return cp

    def history(self, thread_id: str) -> list[Checkpoint]:
        return list(self._threads.get(thread_id, []))

    def latest(self, thread_id: str) -> Checkpoint | None:
        chain = self._threads.get(thread_id)
        return chain[-1] if chain else None

    def get(self, checkpoint_id: str) -> Checkpoint:
        thread_id = checkpoint_id.rsplit(":", 1)[0]
        for cp in self._threads.get(thread_id, []):
            if cp.checkpoint_id == checkpoint_id:
                return cp
        raise KeyError(f"no checkpoint {checkpoint_id!r}")

    def branch(self, checkpoint_id: str, new_thread_id: str) -> Checkpoint:
        """Copy history up to ``checkpoint_id`` onto a fresh thread.

        The returned checkpoint is the new thread's head; resuming a graph
        with this thread id continues from the branched state without
        re-running any earlier step (the paper's cost-saving exploration).
        """
        source = self.get(checkpoint_id)
        if new_thread_id in self._threads:
            raise ValueError(f"thread {new_thread_id!r} already exists")
        chain = []
        for cp in self._threads[source.thread_id]:
            if cp.seq > source.seq:
                break
            chain.append(
                Checkpoint(
                    checkpoint_id=f"{new_thread_id}:{cp.seq}",
                    thread_id=new_thread_id,
                    seq=cp.seq,
                    node=cp.node,
                    next_node=cp.next_node,
                    state=copy.deepcopy(cp.state),
                    events=copy.deepcopy(cp.events),
                )
            )
        self._threads[new_thread_id] = chain
        return chain[-1]

    def threads(self) -> list[str]:
        return sorted(self._threads)
