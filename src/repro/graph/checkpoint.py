"""State checkpointing and branch-from-checkpoint.

§4.2.1: "by capturing and preserving the exact computational state from
each analysis agent, the system enables efficient workflow branching ...
analysts can load from specific checkpoints and alter follow-up steps."

Checkpoints snapshot the full state dict after every node.  Snapshots are
deep copies, so later mutation cannot corrupt history; branching copies a
checkpoint chain onto a new thread id and execution resumes from there.

:class:`DurableCheckpointer` additionally persists every checkpoint as a
CRC-framed blob under a workdir directory — one file per checkpoint,
published atomically (temp file + ``os.replace``), hydrated lazily per
thread on first access.  Resume is *tolerant*: a truncated or bit-flipped
tail (a process killed mid-write, media corruption, or the chaos suite's
``checkpoint.corrupt`` fault) is quarantined and counted, and the thread
restarts from the last checkpoint that verifies — never a raw unpickling
traceback.
"""

from __future__ import annotations

import copy
import os
import pickle
import re
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import faults
from repro.obs.logsetup import get_logger
from repro.obs.metrics import get_registry

log = get_logger("graph.checkpoint")

# blob framing: magic + 4-byte little-endian CRC32 of the pickle payload
_MAGIC = b"RCKP1\n"


@dataclass
class Checkpoint:
    checkpoint_id: str
    thread_id: str
    seq: int
    node: str
    next_node: str | None
    state: dict[str, Any]
    # serialized ExecutionEvent dicts up to this point; restored tolerantly
    # on resume so event history (including timing fields) survives the
    # round-trip even across schema evolution
    events: list[dict[str, Any]] = field(default_factory=list)


@dataclass
class Checkpointer:
    """In-memory checkpoint store keyed by thread id."""

    _threads: dict[str, list[Checkpoint]] = field(default_factory=dict)

    def save(
        self,
        thread_id: str,
        seq: int,
        node: str,
        next_node: str | None,
        state: dict[str, Any],
        events: list[dict[str, Any]] | None = None,
    ) -> Checkpoint:
        cp = Checkpoint(
            checkpoint_id=f"{thread_id}:{seq}",
            thread_id=thread_id,
            seq=seq,
            node=node,
            next_node=next_node,
            state=copy.deepcopy(state),
            events=copy.deepcopy(events or []),
        )
        self._threads.setdefault(thread_id, []).append(cp)
        return cp

    def history(self, thread_id: str) -> list[Checkpoint]:
        return list(self._threads.get(thread_id, []))

    def latest(self, thread_id: str) -> Checkpoint | None:
        chain = self._threads.get(thread_id)
        return chain[-1] if chain else None

    def get(self, checkpoint_id: str) -> Checkpoint:
        thread_id = checkpoint_id.rsplit(":", 1)[0]
        for cp in self._threads.get(thread_id, []):
            if cp.checkpoint_id == checkpoint_id:
                return cp
        raise KeyError(f"no checkpoint {checkpoint_id!r}")

    def branch(self, checkpoint_id: str, new_thread_id: str) -> Checkpoint:
        """Copy history up to ``checkpoint_id`` onto a fresh thread.

        The returned checkpoint is the new thread's head; resuming a graph
        with this thread id continues from the branched state without
        re-running any earlier step (the paper's cost-saving exploration).
        """
        source = self.get(checkpoint_id)
        if new_thread_id in self._threads:
            raise ValueError(f"thread {new_thread_id!r} already exists")
        chain = []
        for cp in self._threads[source.thread_id]:
            if cp.seq > source.seq:
                break
            chain.append(
                Checkpoint(
                    checkpoint_id=f"{new_thread_id}:{cp.seq}",
                    thread_id=new_thread_id,
                    seq=cp.seq,
                    node=cp.node,
                    next_node=cp.next_node,
                    state=copy.deepcopy(cp.state),
                    events=copy.deepcopy(cp.events),
                )
            )
        self._threads[new_thread_id] = chain
        return chain[-1]

    def threads(self) -> list[str]:
        return sorted(self._threads)


# ----------------------------------------------------------------------
# durable store
# ----------------------------------------------------------------------
def _encode_checkpoint(cp: Checkpoint) -> bytes:
    payload = pickle.dumps(
        {
            "checkpoint_id": cp.checkpoint_id,
            "thread_id": cp.thread_id,
            "seq": cp.seq,
            "node": cp.node,
            "next_node": cp.next_node,
            "state": cp.state,
            "events": cp.events,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return _MAGIC + zlib.crc32(payload).to_bytes(4, "little") + payload


def _decode_checkpoint(blob: bytes) -> Checkpoint:
    """Decode a framed blob; raises ``ValueError`` on any corruption."""
    if not blob.startswith(_MAGIC) or len(blob) < len(_MAGIC) + 4:
        raise ValueError("bad checkpoint framing")
    crc = int.from_bytes(blob[len(_MAGIC) : len(_MAGIC) + 4], "little")
    payload = blob[len(_MAGIC) + 4 :]
    if zlib.crc32(payload) != crc:
        raise ValueError("checkpoint CRC mismatch")
    try:
        doc = pickle.loads(payload)
    except Exception as exc:  # corrupt pickles raise many exception types
        raise ValueError(f"checkpoint unpickle failed: {exc}") from exc
    return Checkpoint(**doc)


def _thread_dirname(thread_id: str) -> str:
    """Filesystem-safe, collision-resistant directory name for a thread."""
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", thread_id)[:80]
    return f"{safe}-{zlib.crc32(thread_id.encode('utf-8')) & 0xFFFFFFFF:08x}"


class DurableCheckpointer(Checkpointer):
    """On-disk checkpoint store: survives process restarts.

    ``root`` holds one directory per thread (``thread.txt`` records the
    raw thread id; ``ckpt_<seq>.bin`` files hold the framed blobs).  The
    in-memory chain remains authoritative within a process — faults that
    corrupt the on-disk copy never perturb a live run, only what a
    *restarted* process can recover.
    """

    def __init__(self, root: str | Path):
        super().__init__()
        self.root = Path(root)
        self.dropped_corrupt = 0       # corrupt/truncated tail blobs skipped
        self._hydrated: set[str] = set()

    # -- persistence ----------------------------------------------------
    def _thread_dir(self, thread_id: str) -> Path:
        return self.root / _thread_dirname(thread_id)

    def _persist(self, cp: Checkpoint) -> None:
        blob = _encode_checkpoint(cp)
        injector = faults.get_injector()
        if injector.fire(faults.CHECKPOINT_CORRUPT):
            # media corruption on the durable copy only: the in-memory run
            # continues untouched, but a restarted process must exercise
            # tolerant resume (CRC catches the flip, tail is dropped)
            blob = injector.flip_bit(faults.CHECKPOINT_CORRUPT, blob)
        tdir = self._thread_dir(cp.thread_id)
        try:
            tdir.mkdir(parents=True, exist_ok=True)
            marker = tdir / "thread.txt"
            if not marker.exists():
                marker.write_text(cp.thread_id)
            fd, tmp_name = tempfile.mkstemp(dir=tdir, prefix=".ckpt_", suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp_name, tdir / f"ckpt_{cp.seq:06d}.bin")
        except OSError as exc:
            # a read-only workdir degrades to in-memory checkpointing
            log.warning("checkpoint persist failed for %s: %s", cp.checkpoint_id, exc)

    def _hydrate(self, thread_id: str) -> None:
        """Load a thread's chain from disk, dropping the corrupt tail."""
        if thread_id in self._hydrated:
            return
        self._hydrated.add(thread_id)
        if thread_id in self._threads:
            return  # live in-memory chain wins over its own disk copy
        tdir = self._thread_dir(thread_id)
        if not tdir.is_dir():
            return
        chain: list[Checkpoint] = []
        for path in sorted(tdir.glob("ckpt_*.bin")):
            try:
                chain.append(_decode_checkpoint(path.read_bytes()))
            except (OSError, ValueError) as exc:
                # tolerant tail: everything from the first bad blob on is
                # unrecoverable — resume from the last checkpoint that
                # verified, and say so
                self.dropped_corrupt += 1
                get_registry().counter("checkpoint.corrupt_dropped").inc()
                log.warning(
                    "dropping corrupt checkpoint tail of thread %r at %s: %s",
                    thread_id, path.name, exc,
                )
                break
        if chain:
            self._threads[thread_id] = chain

    def _hydrate_all(self) -> None:
        if not self.root.is_dir():
            return
        for tdir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            marker = tdir / "thread.txt"
            if marker.is_file():
                self._hydrate(marker.read_text())

    # -- overridden accessors -------------------------------------------
    def save(
        self,
        thread_id: str,
        seq: int,
        node: str,
        next_node: str | None,
        state: dict[str, Any],
        events: list[dict[str, Any]] | None = None,
    ) -> Checkpoint:
        cp = super().save(thread_id, seq, node, next_node, state, events)
        self._persist(cp)
        return cp

    def history(self, thread_id: str) -> list[Checkpoint]:
        self._hydrate(thread_id)
        return super().history(thread_id)

    def latest(self, thread_id: str) -> Checkpoint | None:
        self._hydrate(thread_id)
        return super().latest(thread_id)

    def get(self, checkpoint_id: str) -> Checkpoint:
        self._hydrate(checkpoint_id.rsplit(":", 1)[0])
        return super().get(checkpoint_id)

    def branch(self, checkpoint_id: str, new_thread_id: str) -> Checkpoint:
        self._hydrate(checkpoint_id.rsplit(":", 1)[0])
        self._hydrate(new_thread_id)
        head = super().branch(checkpoint_id, new_thread_id)
        for cp in self._threads[new_thread_id]:
            self._persist(cp)
        return head

    def threads(self) -> list[str]:
        self._hydrate_all()
        return super().threads()
