"""Execution trace events emitted by the graph engine."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any


@dataclass
class ExecutionEvent:
    """One node execution in a graph run.

    ``started_at``/``duration`` come from the graph's injected clock
    (``None`` for events that carry no timing, e.g. interrupts, or events
    decoded from a checkpoint written before timing existed).
    """

    seq: int
    node: str
    status: str                 # 'ok' | 'error' | 'interrupt'
    updated_keys: list[str] = field(default_factory=list)
    detail: str = ""
    checkpoint_id: str | None = None
    started_at: float | None = None
    duration: float | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "node": self.node,
            "status": self.status,
            "updated_keys": self.updated_keys,
            "detail": self.detail,
            "checkpoint_id": self.checkpoint_id,
            "started_at": self.started_at,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ExecutionEvent":
        """Tolerant decode for checkpoint round-trips.

        Unknown keys (from newer writers) are ignored and missing keys
        (from older checkpoints) fall back to field defaults, so events
        survive schema evolution in either direction.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in doc.items() if k in known}
        kwargs.setdefault("seq", 0)
        kwargs.setdefault("node", "")
        kwargs.setdefault("status", "ok")
        if kwargs.get("updated_keys") is not None:
            kwargs["updated_keys"] = list(kwargs.get("updated_keys") or [])
        return cls(**kwargs)
