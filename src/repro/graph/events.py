"""Execution trace events emitted by the graph engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExecutionEvent:
    """One node execution in a graph run."""

    seq: int
    node: str
    status: str                 # 'ok' | 'error' | 'interrupt'
    updated_keys: list[str] = field(default_factory=list)
    detail: str = ""
    checkpoint_id: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "node": self.node,
            "status": self.status,
            "updated_keys": self.updated_keys,
            "detail": self.detail,
            "checkpoint_id": self.checkpoint_id,
        }
