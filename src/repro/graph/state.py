"""State channels and reducers.

A graph's state is a flat dict of named channels.  Each node returns a
*partial* state; the engine folds it into the current state with the
channel's reducer.  Default is replacement; lists can accumulate
(message histories, provenance events), dicts merge (named tables),
numbers add (token counters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

Reducer = Callable[[Any, Any], Any]


def replace_reducer(old: Any, new: Any) -> Any:
    return new


def append_reducer(old: Any, new: Any) -> Any:
    base = list(old) if old is not None else []
    if isinstance(new, list):
        base.extend(new)
    else:
        base.append(new)
    return base


def merge_reducer(old: Any, new: Any) -> Any:
    base = dict(old) if old is not None else {}
    base.update(new or {})
    return base


def add_reducer(old: Any, new: Any) -> Any:
    return (old or 0) + (new or 0)


@dataclass(frozen=True)
class Channel:
    """Declaration of one state key."""

    name: str
    reducer: Reducer = replace_reducer
    default: Any = None

    def fold(self, old: Any, new: Any) -> Any:
        return self.reducer(old, new)


def apply_update(
    channels: dict[str, Channel], state: dict[str, Any], update: dict[str, Any]
) -> dict[str, Any]:
    """Fold a node's partial update into the state (returns a new dict)."""
    merged = dict(state)
    for key, value in update.items():
        channel = channels.get(key)
        if channel is None:
            merged[key] = value
        else:
            merged[key] = channel.fold(merged.get(key, channel.default), value)
    return merged


def initial_state(channels: dict[str, Channel], overrides: dict[str, Any] | None = None) -> dict[str, Any]:
    state = {name: ch.default for name, ch in channels.items()}
    state.update(overrides or {})
    return state
