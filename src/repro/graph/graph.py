"""StateGraph definition and execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.graph.checkpoint import Checkpointer
from repro.graph.events import ExecutionEvent
from repro.graph.state import Channel, apply_update, initial_state
from repro.obs.cost import cost_attribution
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

END = "__end__"

NodeFn = Callable[[dict[str, Any]], dict[str, Any]]
RouterFn = Callable[[dict[str, Any]], str]


class GraphError(RuntimeError):
    """Structural or runtime graph failure."""


class GraphInterrupt(Exception):
    """Raised internally when execution pauses at an interrupt node."""

    def __init__(self, node: str, state: dict[str, Any]):
        super().__init__(f"interrupted before node {node!r}")
        self.node = node
        self.state = state


class StateGraph:
    """Mutable graph builder; ``compile()`` freezes it for execution."""

    def __init__(self, channels: list[Channel] | None = None):
        self.channels: dict[str, Channel] = {c.name: c for c in channels or []}
        self.nodes: dict[str, NodeFn] = {}
        self.edges: dict[str, str] = {}
        self.routers: dict[str, RouterFn] = {}
        self.entry: str | None = None

    def add_channel(self, channel: Channel) -> "StateGraph":
        self.channels[channel.name] = channel
        return self

    def add_node(self, name: str, fn: NodeFn) -> "StateGraph":
        if name in self.nodes:
            raise GraphError(f"node {name!r} already defined")
        if name == END:
            raise GraphError(f"{END!r} is reserved")
        self.nodes[name] = fn
        return self

    def add_edge(self, source: str, target: str) -> "StateGraph":
        if source in self.edges or source in self.routers:
            raise GraphError(f"node {source!r} already has an outgoing edge")
        self.edges[source] = target
        return self

    def add_conditional_edges(self, source: str, router: RouterFn) -> "StateGraph":
        if source in self.edges or source in self.routers:
            raise GraphError(f"node {source!r} already has an outgoing edge")
        self.routers[source] = router
        return self

    def set_entry_point(self, name: str) -> "StateGraph":
        self.entry = name
        return self

    def compile(
        self,
        checkpointer: Checkpointer | None = None,
        interrupt_before: list[str] | None = None,
        max_steps: int = 500,
        tracer: Tracer | NullTracer | None = None,
    ) -> "CompiledGraph":
        if self.entry is None:
            raise GraphError("no entry point set")
        if self.entry not in self.nodes:
            raise GraphError(f"entry point {self.entry!r} is not a node")
        for src, dst in self.edges.items():
            if src not in self.nodes:
                raise GraphError(f"edge source {src!r} is not a node")
            if dst != END and dst not in self.nodes:
                raise GraphError(f"edge target {dst!r} is not a node")
        for src in self.routers:
            if src not in self.nodes:
                raise GraphError(f"router source {src!r} is not a node")
        return CompiledGraph(
            channels=dict(self.channels),
            nodes=dict(self.nodes),
            edges=dict(self.edges),
            routers=dict(self.routers),
            entry=self.entry,
            checkpointer=checkpointer,
            interrupt_before=set(interrupt_before or []),
            max_steps=max_steps,
            tracer=tracer or NULL_TRACER,
        )


@dataclass
class RunResult:
    state: dict[str, Any]
    events: list[ExecutionEvent]
    interrupted_at: str | None = None
    thread_id: str = "main"

    @property
    def completed(self) -> bool:
        return self.interrupted_at is None


@dataclass
class CompiledGraph:
    channels: dict[str, Channel]
    nodes: dict[str, NodeFn]
    edges: dict[str, str]
    routers: dict[str, RouterFn]
    entry: str
    checkpointer: Checkpointer | None = None
    interrupt_before: set[str] = field(default_factory=set)
    max_steps: int = 500
    tracer: Tracer | NullTracer = field(default_factory=lambda: NULL_TRACER)
    _seq: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def invoke(
        self,
        state: dict[str, Any] | None = None,
        thread_id: str = "main",
        resume: bool = False,
    ) -> RunResult:
        """Run from the entry point (or resume a paused/branched thread).

        ``resume=True`` continues from the thread's latest checkpoint,
        skipping the interrupt that paused it.
        """
        events: list[ExecutionEvent] = []
        if resume:
            if self.checkpointer is None:
                raise GraphError("resume requires a checkpointer")
            cp = self.checkpointer.latest(thread_id)
            if cp is None:
                raise GraphError(f"nothing to resume for thread {thread_id!r}")
            current = cp.next_node or END
            run_state = dict(cp.state)
            # restore event history tolerantly: events written by older or
            # newer engine versions decode with defaults / ignored extras
            events = [ExecutionEvent.from_dict(d) for d in cp.events]
            skip_interrupt_at = current
        else:
            run_state = initial_state(self.channels, state)
            current = self.entry
            skip_interrupt_at = None
            self._seq[thread_id] = 0

        steps = 0
        while current != END:
            if steps >= self.max_steps:
                raise GraphError(f"exceeded max_steps={self.max_steps}")
            steps += 1
            if current in self.interrupt_before and current != skip_interrupt_at:
                events.append(
                    ExecutionEvent(self._next_seq(thread_id), current, "interrupt")
                )
                self._checkpoint(thread_id, current, current, run_state, events)
                return RunResult(run_state, events, interrupted_at=current, thread_id=thread_id)
            skip_interrupt_at = None

            fn = self.nodes.get(current)
            if fn is None:
                raise GraphError(f"unknown node {current!r}")
            started_at = self.tracer.clock.now()
            # LLM spend inside the node is attributed to it in the ledger
            with self.tracer.span(
                f"graph.node.{current}", thread=thread_id, seq=self._seq.get(thread_id, 0)
            ), cost_attribution(node=current):
                update = fn(run_state) or {}
                if not isinstance(update, dict):
                    raise GraphError(f"node {current!r} must return a dict update")
                run_state = apply_update(self.channels, run_state, update)
            duration = self.tracer.clock.now() - started_at

            next_node = self._route(current, run_state)
            event = ExecutionEvent(
                self._next_seq(thread_id),
                current,
                "ok",
                updated_keys=sorted(update.keys()),
                started_at=started_at,
                duration=duration,
            )
            events.append(event)
            self._checkpoint(thread_id, current, next_node, run_state, events, event)
            current = next_node
        return RunResult(run_state, events, thread_id=thread_id)

    # ------------------------------------------------------------------
    def _route(self, node: str, state: dict[str, Any]) -> str:
        if node in self.edges:
            return self.edges[node]
        if node in self.routers:
            target = self.routers[node](state)
            if target != END and target not in self.nodes:
                raise GraphError(f"router at {node!r} returned unknown node {target!r}")
            return target
        return END

    def _next_seq(self, thread_id: str) -> int:
        seq = self._seq.get(thread_id, 0)
        self._seq[thread_id] = seq + 1
        return seq

    def _checkpoint(
        self,
        thread_id: str,
        node: str,
        next_node: str | None,
        state: dict[str, Any],
        events: list[ExecutionEvent],
        event: ExecutionEvent | None = None,
    ) -> None:
        if self.checkpointer is None:
            return
        cp = self.checkpointer.save(
            thread_id,
            self._seq.get(thread_id, 0),
            node,
            next_node,
            state,
            events=[e.as_dict() for e in events],
        )
        if event is not None:
            event.checkpoint_id = cp.checkpoint_id
            if cp.events:
                # the serialized copy was taken before the id existed
                cp.events[-1]["checkpoint_id"] = cp.checkpoint_id

    # ------------------------------------------------------------------
    def resume_from_branch(self, checkpoint_id: str, new_thread_id: str) -> RunResult:
        """Branch at a checkpoint and continue execution on the new thread."""
        if self.checkpointer is None:
            raise GraphError("branching requires a checkpointer")
        cp = self.checkpointer.branch(checkpoint_id, new_thread_id)
        self._seq[new_thread_id] = cp.seq
        return self.invoke(thread_id=new_thread_id, resume=True)
