"""Per-row-group bloom filters for equality segment pruning.

Zone maps refute range predicates, but an equality probe against a row
group whose [min, max] interval happens to straddle the probe value — or
against a *string* column, which has no interval at all — always falls
through to a full segment read.  A small fixed-size bloom filter per
(row group, column), built over the group's **distinct** values at append
time and persisted in ``meta.json`` next to the zone maps, lets the
pruner refute ``col = literal`` and ``col IN (...)`` without touching the
segment's bytes.

**Soundness.**  A bloom filter has false positives, never false
negatives: ``might_contain`` returning False is a *proof* the value is
absent (both the build and the probe canonicalize values through the same
:func:`value_token`), so pruning on it can never change results — the
same conservative contract as the zone maps.

**Sizing.**  With ``m`` bits, ``k`` hashes and ``n`` distinct values the
false-positive rate is ``(1 - e^(-kn/m))^k``.  The defaults (m=4096,
k=4) give ~0.0003 at 128 distinct values and ~0.012 at 512.  Filters
whose expected load would exceed 1-1/e (``k*n > m``), or whose measured
load exceeds :data:`MAX_LOAD`, are not persisted at all: a saturated
filter refutes nothing and would only burn probe time and metadata bytes.
High-cardinality columns therefore simply opt out, while low-cardinality
ones (category/kind-style strings, timestep sets) prune aggressively.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

DEFAULT_BITS = 4096
DEFAULT_HASHES = 4
# filters more than half full are dropped: refutation power has decayed
# past usefulness (worst-case persisted FP rate is 0.5^k ≈ 6%)
MAX_LOAD = 0.5


def value_token(value) -> bytes | None:
    """Canonical hash token for a value, or None for unhashable-by-design.

    Numbers of every width collapse to their float64 bytes so a probe for
    the literal ``42`` matches int64 and float64 columns alike (equality
    in the executor compares through NumPy promotion the same way).
    Strings hash their UTF-8 bytes.  NaN returns None — SQL equality is
    always false for NaN, so it is never added and never refuted.
    """
    if isinstance(value, (bool, np.bool_)):
        return struct.pack("<d", float(value))
    if isinstance(value, (int, float, np.integer, np.floating)):
        f = float(value)
        if f != f:  # NaN
            return None
        return struct.pack("<d", f)
    return str(value).encode("utf-8")


def _positions(token: bytes, k: int, m: int) -> list[int]:
    """k bit positions via double hashing over one blake2b digest."""
    digest = hashlib.blake2b(token, digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:], "little") | 1
    return [(h1 + i * h2) % m for i in range(k)]


class BloomFilter:
    """Fixed-size bitset with k double-hashed probe positions."""

    __slots__ = ("m", "k", "bits")

    def __init__(self, m: int = DEFAULT_BITS, k: int = DEFAULT_HASHES,
                 bits: bytes | bytearray | None = None):
        self.m = int(m)
        self.k = int(k)
        nbytes = (self.m + 7) // 8
        if bits is None:
            self.bits = bytearray(nbytes)
        else:
            self.bits = bytearray(bits)
            if len(self.bits) != nbytes:
                raise ValueError(f"bloom bitset is {len(self.bits)} bytes, want {nbytes}")

    # ------------------------------------------------------------------
    def add(self, value) -> None:
        token = value_token(value)
        if token is None:
            return
        for pos in _positions(token, self.k, self.m):
            self.bits[pos >> 3] |= 1 << (pos & 7)

    def might_contain(self, value) -> bool:
        """False is a proof of absence; True means "cannot refute"."""
        token = value_token(value)
        if token is None:
            return True
        return all(
            self.bits[pos >> 3] & (1 << (pos & 7))
            for pos in _positions(token, self.k, self.m)
        )

    @property
    def load(self) -> float:
        """Fraction of bits set (refutation power decays as this grows)."""
        return sum(bin(b).count("1") for b in self.bits) / self.m

    # ------------------------------------------------------------------
    # persistence (meta.json-embeddable)
    # ------------------------------------------------------------------
    def to_meta(self) -> dict:
        return {"m": self.m, "k": self.k, "bits": bytes(self.bits).hex()}

    @classmethod
    def from_meta(cls, doc) -> "BloomFilter | None":
        """Parse a persisted filter; tolerant of foreign/corrupt docs
        (pruning just proceeds without the filter)."""
        try:
            return cls(int(doc["m"]), int(doc["k"]), bytes.fromhex(doc["bits"]))
        except (KeyError, TypeError, ValueError):
            return None

    @classmethod
    def build(cls, values: np.ndarray, m: int = DEFAULT_BITS,
              k: int = DEFAULT_HASHES) -> "BloomFilter | None":
        """Build over the distinct values of one segment column.

        Returns None when the column's cardinality saturates the bitset —
        callers persist nothing and the pruner falls back to zone maps.
        """
        if values.size == 0:
            return cls(m, k)  # empty segment: refutes every probe
        try:
            distinct = np.unique(values)
        except TypeError:
            return None  # unsortable object column: no filter
        if len(distinct) * k > m:
            return None  # expected load beyond 1 - 1/e: saturated
        bf = cls(m, k)
        for v in distinct.tolist():
            bf.add(v)
        if bf.load > MAX_LOAD:
            return None
        return bf
