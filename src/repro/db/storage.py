"""Row-group columnar storage.

A table lives in its own directory::

    <db>/<table>/
      meta.json                 # columns, dtypes, row-group row counts
      rg00000/<column>.npy      # one contiguous array per column per group

Row groups bound executor memory: a scan yields one group at a time, so a
filter over a table of any size peaks at ``row_group_size`` rows — the
"on disk rather than in memory" property the paper gets from DuckDB.
``.npy`` is used as the segment container because NumPy memory-maps it for
free, giving zero-copy selective column reads.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import shutil
import tempfile
import zlib
from collections.abc import Iterator, Sequence
from pathlib import Path

import numpy as np

from repro import faults
from repro.db.bloom import BloomFilter
from repro.db.errors import DBError, IngestKilled, UnknownColumnError
from repro.frame import Frame
from repro.obs.logsetup import get_logger
from repro.obs.metrics import get_registry

log = get_logger("db.storage")

DEFAULT_ROW_GROUP_SIZE = 65536
_PUBLISH_ATTEMPTS = 3


def publish_json_verified(
    dir_path: Path, final_name: str, obj, what: str, indent: int | None = None
) -> None:
    """Atomic JSON publish hardened with write-verify-retry.

    Catalog and table metadata are re-read from disk by *fresh* objects on
    every ``Database.store()`` call, so — unlike cache entries, which heal
    on read — a torn publish here cannot be deferred to a read-side check:
    the temp file is read back and compared against the intended bytes
    before ``os.replace`` makes it visible, and a mismatch (the
    ``storage.torn_write`` fault point, or a genuinely short write) is
    rewritten.  After ``_PUBLISH_ATTEMPTS`` failures the publish raises a
    classified :class:`DBError` instead of silently shipping garbage.
    """
    dir_path.mkdir(parents=True, exist_ok=True)
    expected = json.dumps(obj, indent=indent).encode("utf-8")
    injector = faults.get_injector()
    fd, tmp_name = tempfile.mkstemp(dir=dir_path, prefix=final_name + ".", suffix=".tmp")
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        for attempt in range(1, _PUBLISH_ATTEMPTS + 1):
            data = expected
            if injector.fire(faults.STORAGE_TORN_WRITE):
                data = injector.truncate(faults.STORAGE_TORN_WRITE, data)
            tmp.write_bytes(data)
            if tmp.read_bytes() == expected:
                os.replace(tmp, dir_path / final_name)
                return
            get_registry().counter("storage.write_verify_retry").inc()
            log.warning(
                "torn write publishing %s (attempt %d/%d); rewriting",
                what, attempt, _PUBLISH_ATTEMPTS,
            )
        raise DBError(
            f"could not publish intact {what} after {_PUBLISH_ATTEMPTS} attempts"
        )
    finally:
        tmp.unlink(missing_ok=True)


class TableStore:
    """On-disk storage of one table.

    ``clamp_row_groups`` bounds the *visible* row-group prefix: a snapshot
    reader constructed with the catalog's ``committed_row_groups`` sees
    exactly the committed prefix — scans, zone maps, blooms, row counts
    and the content signature all stop there — even while a concurrent
    writer stages further groups on disk.  Committed segment directories
    are immutable (appends only ever add higher-numbered groups), which is
    what makes a clamped prefix a consistent snapshot rather than a racy
    window.  ``None`` (the default, and the writer's view) clamps nothing.
    """

    def __init__(self, path: Path, clamp_row_groups: int | None = None):
        self.path = Path(path)
        self._meta: dict = {"columns": {}, "row_groups": []}
        self._bloom_cache: dict[int, dict[str, BloomFilter]] = {}
        self._clamp = clamp_row_groups
        meta_path = self.path / "meta.json"
        if meta_path.exists():
            try:
                self._meta = json.loads(meta_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise DBError(
                    f"corrupt table metadata at {meta_path}: {exc}"
                ) from exc

    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        return list(self._meta["columns"])

    @property
    def num_rows(self) -> int:
        return int(sum(self._meta["row_groups"][: self.num_row_groups]))

    @property
    def num_row_groups(self) -> int:
        n = len(self._meta["row_groups"])
        if self._clamp is not None:
            n = min(n, self._clamp)
        return n

    @property
    def version(self) -> int:
        """Monotonic content version; bumped on every append."""
        return int(self._meta.get("version", 0))

    def content_signature(self) -> str | None:
        """Content hash over schema + per-segment checksums.

        The query-result cache keys cached frames on this signature, which
        makes results shareable across databases (and across harness
        worker processes) that hold byte-identical tables.  Tables written
        before checksums existed return None; callers must then fall back
        to a path-scoped key.

        Computed over the *visible* (clamped) prefix, so a snapshot's
        signature never changes while a writer stages new groups.
        """
        n = self.num_row_groups
        checksums = self._meta.get("checksums", [])
        if len(checksums) < n:
            return None
        doc = json.dumps(
            [self._meta["columns"], self._meta["row_groups"][:n], checksums[:n]],
            sort_keys=True,
        )
        return hashlib.blake2b(doc.encode(), digest_size=16).hexdigest()

    def dtype_of(self, name: str) -> np.dtype:
        try:
            return np.dtype(self._meta["columns"][name])
        except KeyError:
            raise UnknownColumnError(name, self.columns) from None

    def nbytes(self) -> int:
        """Bytes on disk across all segments (storage-overhead metric)."""
        return sum(f.stat().st_size for f in self.path.rglob("*.npy"))

    # ------------------------------------------------------------------
    def append(self, frame: Frame, row_group_size: int = DEFAULT_ROW_GROUP_SIZE) -> None:
        """Append a frame, splitting into row groups.

        Stage + publish in one step — the standalone path for callers
        without a catalog.  :class:`repro.db.database.Database` instead
        drives :meth:`stage_append` / :meth:`publish_staged` separately so
        its WAL commit protocol controls exactly when the new groups
        become durable metadata.
        """
        staged = self.stage_append(frame, row_group_size)
        if staged is not None:
            self.publish_staged(staged)

    def stage_append(
        self, frame: Frame, row_group_size: int = DEFAULT_ROW_GROUP_SIZE
    ) -> dict | None:
        """Write the new row-group segments; return the updated metadata
        doc *without publishing it*.

        Until :meth:`publish_staged` (and, above it, the catalog commit)
        runs, the staged groups are invisible: readers clamp to the
        catalog's committed prefix and the on-disk ``meta.json`` is
        untouched.  A crash mid-stage leaves only orphan segment
        directories, which recovery discards or overwrites.
        """
        if frame.num_columns == 0:
            return None
        staged = copy.deepcopy(self._meta)
        if not staged["columns"]:
            staged["columns"] = {
                n: np.asarray(frame.column(n)).dtype.str for n in frame.columns
            }
        else:
            expected = set(staged["columns"])
            got = set(frame.columns)
            if expected != got:
                raise DBError(
                    f"append schema mismatch: table has {sorted(expected)}, "
                    f"frame has {sorted(got)}"
                )
        self.path.mkdir(parents=True, exist_ok=True)
        staged.setdefault("zone_maps", [])
        staged.setdefault("blooms", [])
        staged.setdefault("checksums", [])
        # legacy tables written before a stats kind existed: pad the
        # per-row-group list with empty docs so indexes stay aligned with
        # the groups being appended now (an empty doc never prunes)
        for stats_key in ("zone_maps", "blooms"):
            while len(staged[stats_key]) < len(staged["row_groups"]):
                staged[stats_key].append({})
        for start in range(0, frame.num_rows, row_group_size):
            chunk = frame[start : start + row_group_size]
            rg_index = len(staged["row_groups"])
            rg_dir = self.path / f"rg{rg_index:05d}"
            rg_dir.mkdir(parents=True, exist_ok=True)
            zone_map: dict[str, list[float]] = {}
            blooms: dict[str, dict] = {}
            checksums: dict[str, int] = {}
            last_path: Path | None = None
            for name in staged["columns"]:
                col = np.asarray(chunk.column(name))
                if col.dtype == object:
                    col = col.astype(str)
                elif np.issubdtype(col.dtype, np.number) and len(col):
                    # a zone map is only sound when it bounds EVERY row:
                    # NaN/inf escape [min(finite), max(finite)], so groups
                    # holding any non-finite value publish no stats and
                    # are never pruned (see repro.db.sql.pruning)
                    as_float = col.astype(np.float64)
                    if np.isfinite(as_float).all():
                        zone_map[name] = [float(as_float.min()), float(as_float.max())]
                # equality-pruning bloom filter over the group's distinct
                # values; saturated (high-cardinality) columns persist none
                bloom = BloomFilter.build(col)
                if bloom is not None:
                    blooms[name] = bloom.to_meta()
                checksums[name] = zlib.crc32(np.ascontiguousarray(col).tobytes())
                last_path = rg_dir / f"{name}.npy"
                np.save(last_path, col, allow_pickle=False)
            if last_path is not None and faults.fire_ingest_kill(
                faults.INGEST_PARTIAL_ROW_GROUP
            ):
                # die mid-segment: the last column file survives as a torn
                # prefix, an orphan the commit never covers
                injector = faults.get_injector()
                data = last_path.read_bytes()
                last_path.write_bytes(
                    injector.truncate(faults.INGEST_PARTIAL_ROW_GROUP, data)
                )
                raise IngestKilled(
                    "stage-row-group", f"torn segment {last_path.name} in rg{rg_index:05d}"
                )
            staged["row_groups"].append(chunk.num_rows)
            staged["zone_maps"].append(zone_map)
            staged["blooms"].append(blooms)
            staged["checksums"].append(checksums)
        return staged

    def publish_staged(self, staged: dict) -> None:
        """Atomically publish a staged metadata doc with a version bump."""
        staged["version"] = self.version + 1
        self._meta = staged
        self._bloom_cache.clear()
        self._flush_meta()

    def discard_uncommitted(self, committed_groups: int) -> int:
        """Drop row groups beyond the catalog's committed prefix.

        Used by WAL recovery when a crash left ``meta.json`` (or orphan
        segment directories) running ahead of the catalog commit point.
        Returns the number of orphan segment directories removed.
        """
        raw_groups = self._meta.get("row_groups", [])
        if committed_groups < len(raw_groups):
            for key in ("row_groups", "zone_maps", "blooms", "checksums"):
                if key in self._meta:
                    del self._meta[key][committed_groups:]
            self._bloom_cache.clear()
            self._flush_meta()
        dropped = 0
        for rg_dir in self.path.glob("rg*"):
            try:
                index = int(rg_dir.name[2:])
            except ValueError:
                continue
            if index >= committed_groups and rg_dir.is_dir():
                shutil.rmtree(rg_dir)
                dropped += 1
        return dropped

    def _flush_meta(self) -> None:
        """Crash-safe metadata publish: temp file + verify + atomic rename.

        A process dying mid-write must never leave a truncated meta.json
        behind — that would corrupt the whole table, not just the append
        (or the cache-invalidating version bump) in flight.
        """
        publish_json_verified(
            self.path, "meta.json", self._meta, what=f"meta.json of {self.path.name!r}"
        )

    # ------------------------------------------------------------------
    def read_row_group(
        self, index: int, columns: Sequence[str] | None = None, mmap: bool = True
    ) -> Frame:
        """Read one row group; columns not requested are never touched."""
        if not (0 <= index < self.num_row_groups):
            raise DBError(f"row group {index} out of range [0, {self.num_row_groups})")
        names = list(columns) if columns is not None else self.columns
        for n in names:
            self.dtype_of(n)  # validate with a helpful error
        rg_dir = self.path / f"rg{index:05d}"
        mode = "r" if mmap else None
        return Frame(
            {n: np.load(rg_dir / f"{n}.npy", mmap_mode=mode, allow_pickle=False) for n in names}
        )

    def zone_map(self, index: int) -> dict[str, tuple[float, float]]:
        """Per-column (min, max) of one row group (empty for legacy tables)."""
        maps = self._meta.get("zone_maps", [])
        if index >= len(maps):
            return {}
        return {k: (v[0], v[1]) for k, v in maps[index].items()}

    def blooms(self, index: int) -> dict[str, BloomFilter]:
        """Per-column equality bloom filters of one row group.

        Empty for tables written before filters existed (legacy tables
        stay readable, they just never bloom-prune) and for columns whose
        cardinality saturated the bitset at append time.
        """
        docs = self._meta.get("blooms", [])
        if index >= len(docs):
            return {}
        cached = self._bloom_cache.get(index)
        if cached is None:
            cached = {}
            for name, doc in docs[index].items():
                bloom = BloomFilter.from_meta(doc)
                if bloom is not None:
                    cached[name] = bloom
            self._bloom_cache[index] = cached
        return cached

    def scan(self, columns: Sequence[str] | None = None) -> Iterator[Frame]:
        """Stream the table one row group at a time."""
        for i in range(self.num_row_groups):
            yield self.read_row_group(i, columns)

    def read_all(self, columns: Sequence[str] | None = None) -> Frame:
        """Materialize the whole table (only for result-sized tables)."""
        from repro.frame import concat

        groups = list(self.scan(columns))
        if not groups:
            return Frame()
        return concat([Frame({n: np.asarray(g.column(n)) for n in g.columns}) for g in groups])

    def drop(self) -> None:
        if self.path.exists():
            shutil.rmtree(self.path)
