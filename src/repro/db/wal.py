"""Crash-safe write-ahead log for live table appends.

Every mutation that flows through :meth:`repro.db.database.Database.append`
(or a populated ``create_table``) is made durable here *before* any table
bytes move, using the same framing discipline as
:class:`repro.graph.checkpoint.DurableCheckpointer`::

    RWAL1\\n | payload_len (8 bytes LE) | crc32 (4 bytes LE) | pickle payload

The commit protocol (driven by the database, not this module):

1. frame + fsync the WAL record — the intent is durable;
2. stage the new row-group segment directories (no metadata publish);
3. publish the table's ``meta.json`` (atomic, may run *ahead* of commit);
4. publish ``catalog.json`` with the bumped version and the new
   ``committed_row_groups`` clamp — **this single atomic rename is the
   commit point**;
5. truncate the WAL.

A kill at any byte offset therefore leaves one of exactly two observable
tables: the pre-append state (catalog untouched; recovery replays or drops
the WAL record) or the post-append state (catalog published; recovery
skips the already-committed record).  Readers never see a hybrid because
they clamp every scan to ``committed_row_groups`` (see
:class:`repro.db.storage.TableStore`).

Recovery scans the log sequentially and stops at the first frame that is
short (torn tail — counted as ``wal.torn_tail_dropped``) or fails its CRC
(counted as ``wal.corrupt_record_dropped``); everything before the bad
frame replays, everything from it on is truncated away.
"""

from __future__ import annotations

import io
import os
import pickle
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.db.errors import DBError, IngestKilled
from repro.obs import names as obs_names
from repro.obs.logsetup import get_logger
from repro.obs.metrics import get_registry

log = get_logger("db.wal")

_MAGIC = b"RWAL1\n"
_LEN_BYTES = 8
_CRC_BYTES = 4
_HEADER_BYTES = len(_MAGIC) + _LEN_BYTES + _CRC_BYTES


def _frame_record(payload: bytes) -> bytes:
    return (
        _MAGIC
        + len(payload).to_bytes(_LEN_BYTES, "little")
        + zlib.crc32(payload).to_bytes(_CRC_BYTES, "little")
        + payload
    )


@dataclass
class WalScanResult:
    """Outcome of one sequential recovery scan."""

    records: list[dict] = field(default_factory=list)
    good_bytes: int = 0          # offset of the first bad byte (log is valid up to here)
    torn_tail: bool = False      # trailing frame shorter than its header promised
    corrupt_record: bool = False  # complete frame whose payload failed CRC
    dropped_bytes: int = 0       # bytes discarded after good_bytes


class WriteAheadLog:
    """Append-only redo log for one database directory.

    ``fsync`` discipline: every appended record is flushed and fsynced
    before :meth:`append` returns, so a record's presence in the log is a
    durable promise.  Benchmarks may relax this (``fsync=False``) to
    measure the protocol without the disk in the loop.
    """

    def __init__(self, path: str | Path, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync

    # ------------------------------------------------------------------
    def exists_nonempty(self) -> bool:
        try:
            return self.path.stat().st_size > 0
        except OSError:
            return False

    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Frame, append and fsync one record; the armed ``wal_torn_tail``
        fault dies mid-write, leaving a durable-but-torn tail behind."""
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        framed = _frame_record(payload)
        torn = None
        if faults.fire_ingest_kill(faults.WAL_TORN_TAIL):
            injector = faults.get_injector()
            torn = injector.truncate(faults.WAL_TORN_TAIL, framed)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as fh:
            fh.write(framed if torn is None else torn)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        if torn is not None:
            raise IngestKilled("wal-append", f"torn tail at {len(torn)}/{len(framed)} bytes")
        get_registry().counter(obs_names.WAL_APPENDS).inc()

    # ------------------------------------------------------------------
    def scan(self) -> WalScanResult:
        """Sequential validity scan; classifies why the scan stopped."""
        result = WalScanResult()
        try:
            data = self.path.read_bytes()
        except OSError:
            return result
        total = len(data)
        buf = io.BytesIO(data)
        while True:
            offset = buf.tell()
            header = buf.read(_HEADER_BYTES)
            if not header:
                result.good_bytes = offset
                return result
            if len(header) < _HEADER_BYTES:
                result.torn_tail = True
                break
            if not header.startswith(_MAGIC):
                # a full-length header with bad magic is corruption (e.g. a
                # flipped bit), not an in-flight write that ran short
                result.corrupt_record = True
                break
            length = int.from_bytes(header[len(_MAGIC):len(_MAGIC) + _LEN_BYTES], "little")
            crc = int.from_bytes(header[len(_MAGIC) + _LEN_BYTES:], "little")
            payload = buf.read(length)
            if len(payload) < length:
                result.torn_tail = True
                break
            if zlib.crc32(payload) != crc:
                result.corrupt_record = True
                break
            try:
                record = pickle.loads(payload)
            except Exception:
                # CRC passed but the payload does not decode — treat as
                # corruption, not a torn tail (the frame was complete)
                result.corrupt_record = True
                break
            result.records.append(record)
        result.good_bytes = offset
        result.dropped_bytes = total - offset
        return result

    def truncate_to(self, size: int) -> None:
        """Cut the log at ``size`` bytes (drop a torn/corrupt tail)."""
        with open(self.path, "ab") as fh:
            fh.truncate(size)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())

    def clear(self) -> None:
        """Empty the log after a successful commit (or recovery pass)."""
        if self.path.exists():
            self.truncate_to(0)

    # ------------------------------------------------------------------
    def pending(self) -> tuple[list[dict], WalScanResult]:
        """Scan, count classified drops, and truncate any bad tail.

        Returns the complete records (in append order) plus the scan
        verdict.  After this call the log on disk contains exactly the
        returned records.
        """
        result = self.scan()
        registry = get_registry()
        if result.torn_tail:
            registry.counter(obs_names.WAL_TORN_TAIL_DROPPED).inc()
            log.warning(
                "WAL torn tail: dropping %d bytes after offset %d of %s",
                result.dropped_bytes, result.good_bytes, self.path,
            )
        if result.corrupt_record:
            registry.counter(obs_names.WAL_CORRUPT_DROPPED).inc()
            log.warning(
                "WAL corrupt record: dropping %d bytes after offset %d of %s",
                result.dropped_bytes, result.good_bytes, self.path,
            )
        if result.dropped_bytes:
            self.truncate_to(result.good_bytes)
        return result.records, result


def make_append_record(
    table: str, kind: str, base_version: int, row_group_size: int, columns: dict
) -> dict:
    """The WAL payload for one create/append; arrays are pickled verbatim."""
    if kind not in ("create", "append"):
        raise DBError(f"unknown WAL record kind {kind!r}")
    return {
        "kind": kind,
        "table": table,
        "base_version": int(base_version),
        "row_group_size": int(row_group_size),
        "columns": columns,
    }
