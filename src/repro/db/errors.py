"""Database error hierarchy.

Error messages are deliberately detailed: the sandboxed execution gateway
forwards them verbatim to the quality-assurance agent, whose error-guided
repair loop needs to see the candidate identifiers (the paper: "these
syntactic errors are quickly identified and easily resolved").
"""

from __future__ import annotations

from collections.abc import Sequence


class DBError(RuntimeError):
    """Base class for all database errors."""


class SQLSyntaxError(DBError):
    """Raised by the lexer/parser with position information."""

    def __init__(self, message: str, sql: str = "", position: int | None = None):
        self.sql = sql
        self.position = position
        if position is not None and sql:
            pointer = sql[:position].count("\n")
            message = f"{message} (at offset {position}, line {pointer + 1})"
        super().__init__(message)


class UnknownColumnError(DBError):
    """Unknown column reference, with the valid candidates attached."""

    def __init__(self, name: str, known: Sequence[str]):
        self.name = name
        self.known = list(known)
        super().__init__(
            f"no column named {name!r}; available columns: {', '.join(self.known)}"
        )


class UnknownTableError(DBError):
    """Unknown table reference, with the catalog contents attached."""

    def __init__(self, name: str, known: Sequence[str]):
        self.name = name
        self.known = list(known)
        super().__init__(
            f"no table named {name!r}; available tables: {', '.join(self.known) or '(none)'}"
        )


class UnsupportedSQLError(DBError):
    """A syntactically valid construct the engine does not implement."""
