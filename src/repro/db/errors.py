"""Database error hierarchy.

Error messages are deliberately detailed: the sandboxed execution gateway
forwards them verbatim to the quality-assurance agent, whose error-guided
repair loop needs to see the candidate identifiers (the paper: "these
syntactic errors are quickly identified and easily resolved").
"""

from __future__ import annotations

from collections.abc import Sequence


class DBError(RuntimeError):
    """Base class for all database errors."""


class SQLSyntaxError(DBError):
    """Raised by the lexer/parser with position information."""

    def __init__(self, message: str, sql: str = "", position: int | None = None):
        self.sql = sql
        self.position = position
        if position is not None and sql:
            pointer = sql[:position].count("\n")
            message = f"{message} (at offset {position}, line {pointer + 1})"
        super().__init__(message)


class UnknownColumnError(DBError):
    """Unknown column reference, with the valid candidates attached."""

    def __init__(self, name: str, known: Sequence[str]):
        self.name = name
        self.known = list(known)
        super().__init__(
            f"no column named {name!r}; available columns: {', '.join(self.known)}"
        )


class UnknownTableError(DBError):
    """Unknown table reference, with the catalog contents attached."""

    def __init__(self, name: str, known: Sequence[str]):
        self.name = name
        self.known = list(known)
        super().__init__(
            f"no table named {name!r}; available tables: {', '.join(self.known) or '(none)'}"
        )


class UnsupportedSQLError(DBError):
    """A syntactically valid construct the engine does not implement."""


class IngestKilled(DBError):
    """A simulated ingester death at a named point of the WAL commit protocol.

    Raised by the commit path when an armed ingest kill fault fires (see
    :func:`repro.faults.arm_ingest_kills`).  The exception *is* the crash:
    the operation stops exactly where a SIGKILL would have stopped it, with
    whatever bytes were already durable left on disk for recovery to judge.
    """

    def __init__(self, stage: str, detail: str = ""):
        self.stage = stage
        super().__init__(
            f"ingester killed at stage {stage!r}" + (f": {detail}" if detail else "")
        )
