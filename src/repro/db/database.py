"""Public Database façade.

Usage::

    db = Database(workdir / "analysis.db")
    db.create_table("halos", frame)            # or append multiple frames
    top = db.query("SELECT fof_halo_tag, fof_halo_count FROM halos "
                   "ORDER BY fof_halo_count DESC LIMIT 20")

The database is a directory; every table is a column-segmented subdirectory
(see :mod:`repro.db.storage`).  All query execution streams from disk.
``nbytes()`` reports exact on-disk footprint — the paper's storage-overhead
metric counts these bytes.

Every catalog entry carries a monotonic ``version`` bumped on
create/append/drop; combined with the store's content signature it forms
the per-table state that keys the semantic query-result cache
(:mod:`repro.db.cache`), so appending rows provably invalidates every
cached result computed over the old contents.

Writes are crash-safe and reads are snapshot-isolated (MVCC-lite):

* every populated create/append first lands in a CRC-framed, fsynced
  write-ahead log (:mod:`repro.db.wal`), then stages its row-group
  segments, and only *commits* via a single atomic ``catalog.json``
  publish carrying the bumped version and a ``committed_row_groups``
  clamp — a kill at any byte offset recovers to exactly the pre- or
  post-append table, never a hybrid;
* readers pin a :class:`CatalogSnapshot` — an immutable catalog image
  whose stores clamp every scan, zone map, bloom and cache key to the
  committed row-group prefix — for the duration of a query (automatic)
  or a whole session (:meth:`Database.pinned`), so concurrent appends
  land new groups without perturbing in-flight work.
"""

from __future__ import annotations

import copy
import json
import re
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro import faults
from repro.db.errors import DBError, IngestKilled, UnknownTableError
from repro.db.sql.ast import CreateTableAs, SelectStatement
from repro.db.sql.executor import execute
from repro.db.sql.parser import parse_sql
from repro.db.storage import (
    DEFAULT_ROW_GROUP_SIZE,
    TableStore,
    publish_json_verified,
)
from repro.db.wal import WriteAheadLog, make_append_record
from repro.frame import Frame
from repro.obs import names as obs_names
from repro.obs.logsetup import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer

log = get_logger("db.database")

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z_0-9]*$")


class CatalogSnapshot:
    """An immutable catalog image: table → version + committed row groups.

    Reads through a snapshot are repeatable for its whole lifetime even
    while a writer appends: committed segment directories are immutable,
    so clamping every store to the snapshot's ``committed_row_groups``
    yields byte-identical scans no matter how far the live table has
    advanced.  ``table_state`` is likewise computed over the clamp, so
    query-result cache keys taken under a pin match exactly the results
    a quiescent database at this version would produce.
    """

    def __init__(self, db_path: Path, tables: dict[str, dict]):
        self.db_path = Path(db_path)
        self._tables = copy.deepcopy(tables)
        self._stores: dict[str, TableStore] = {}
        self._states: dict[str, str] = {}

    # -- catalog ----------------------------------------------------------
    def list_tables(self) -> list[str]:
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def entry(self, name: str) -> dict:
        meta = self._tables.get(name)
        if meta is None:
            raise UnknownTableError(name, self.list_tables())
        return meta

    def table_version(self, name: str) -> int:
        return int(self.entry(name).get("version", 0))

    def committed_row_groups(self, name: str) -> int | None:
        """The clamp for this table, or None for pre-WAL legacy entries
        (which are only ever written quiescently, so every group counts)."""
        value = self.entry(name).get("committed_row_groups")
        return None if value is None else int(value)

    def versions(self) -> dict[str, int]:
        return {name: self.table_version(name) for name in self._tables}

    # -- reads ------------------------------------------------------------
    def store(self, name: str) -> TableStore:
        cached = self._stores.get(name)
        if cached is None:
            self.entry(name)  # raise with suggestions if unknown
            cached = self._stores[name] = TableStore(
                self.db_path / name, clamp_row_groups=self.committed_row_groups(name)
            )
        return cached

    def table_state(self, name: str) -> str:
        cached = self._states.get(name)
        if cached is None:
            signature = self.store(name).content_signature()
            if signature is None:
                signature = f"path={self.db_path.resolve()}"
            cached = self._states[name] = (
                f"{name}@v{self.table_version(name)}:{signature}"
            )
        return cached


class Database:
    """An embedded, directory-backed columnar SQL database.

    ``cache_dir`` enables the on-disk tier of the query-result cache
    (shared across processes pointing at the same directory); the
    in-process memoization tier is always active unless ``result_cache``
    is False.

    ``num_threads`` sets the morsel-driven engine's thread count for
    queries against this database (None defers to ``REPRO_SQL_THREADS``,
    then 1; 0 means one thread per core).  Parallel execution is
    byte-identical to sequential, so this is purely a throughput knob.

    ``wal`` (default on) routes populated creates and appends through the
    write-ahead log's commit protocol; ``wal_fsync=False`` keeps the
    protocol but drops the per-record fsync (benchmark use only — it
    trades the durable-intent guarantee for disk-free latency).
    """

    def __init__(
        self,
        path: str | Path,
        cache_dir: str | Path | None = None,
        result_cache: bool = True,
        num_threads: int | None = None,
        wal: bool = True,
        wal_fsync: bool = True,
    ):
        self.path = Path(path)
        self.num_threads = num_threads
        self.path.mkdir(parents=True, exist_ok=True)
        self._catalog_path = self.path / "catalog.json"
        self._tables = self._read_catalog()
        self._wal = (
            WriteAheadLog(self.path / "wal.log", fsync=wal_fsync) if wal else None
        )
        self._write_lock = threading.Lock()
        self._pins = threading.local()
        if result_cache:
            from repro.db.cache import QueryResultCache

            self._result_cache = QueryResultCache(cache_dir)
        else:
            self._result_cache = None

    def _read_catalog(self) -> dict[str, dict]:
        if self._catalog_path.exists():
            try:
                return json.loads(self._catalog_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise DBError(
                    f"corrupt catalog at {self._catalog_path}: {exc}"
                ) from exc
        return {}

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def list_tables(self) -> list[str]:
        snap = self._active_snapshot()
        if snap is not None:
            return snap.list_tables()
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        snap = self._active_snapshot()
        if snap is not None:
            return snap.has_table(name)
        return name in self._tables

    def store(self, name: str) -> TableStore:
        snap = self._active_snapshot()
        if snap is not None:
            return snap.store(name)
        meta = self._tables.get(name)
        if meta is None:
            raise UnknownTableError(name, self.list_tables())
        clamp = meta.get("committed_row_groups")
        return TableStore(
            self.path / name,
            clamp_row_groups=None if clamp is None else int(clamp),
        )

    def schema(self, name: str) -> dict[str, str]:
        """Column name -> dtype string for a table."""
        store = self.store(name)
        return {c: store.dtype_of(c).name for c in store.columns}

    def table_version(self, name: str) -> int:
        """Monotonic catalog version of a table (bumped on create/append)."""
        snap = self._active_snapshot()
        if snap is not None:
            return snap.table_version(name)
        meta = self._tables.get(name)
        if meta is None:
            raise UnknownTableError(name, self.list_tables())
        return int(meta.get("version", 0))

    def table_state(self, name: str) -> str:
        """Cache-key component identifying a table's exact contents.

        Prefers the store's content signature (schema + per-segment
        checksums), which is identical across databases holding the same
        bytes — that is what lets harness worker processes share one
        on-disk result cache.  Legacy tables without checksums fall back
        to a path-scoped state, which is always safe, never shared.
        """
        snap = self._active_snapshot()
        if snap is not None:
            return snap.table_state(name)
        version = self.table_version(name)
        signature = self.store(name).content_signature()
        if signature is None:
            signature = f"path={self.path.resolve()}"
        return f"{name}@v{version}:{signature}"

    def _flush_catalog(self) -> None:
        """Crash-safe catalog publish: temp file + verify + atomic rename
        (a cache-invalidation version bump that dies mid-write must not
        corrupt the catalog).  Under the WAL protocol this rename *is*
        the commit point of an append."""
        publish_json_verified(
            self.path, "catalog.json", self._tables, what="catalog.json", indent=1
        )

    # ------------------------------------------------------------------
    # snapshots (MVCC-lite)
    # ------------------------------------------------------------------
    def snapshot(self) -> CatalogSnapshot:
        """Pin the current committed catalog as an immutable snapshot.

        Re-reads ``catalog.json`` so a long-lived handle observes appends
        committed by other handles/threads since it was opened (the
        snapshot is taken at *call* time; it never moves afterwards).
        """
        tables = self._read_catalog() if self._catalog_path.exists() else self._tables
        return CatalogSnapshot(self.path, tables)

    def _pin_stack(self) -> list[CatalogSnapshot]:
        stack = getattr(self._pins, "stack", None)
        if stack is None:
            stack = self._pins.stack = []
        return stack

    def _active_snapshot(self) -> CatalogSnapshot | None:
        stack = self._pin_stack()
        return stack[-1] if stack else None

    @contextmanager
    def pinned(self, snap: CatalogSnapshot | None = None) -> Iterator[CatalogSnapshot]:
        """Route this thread's reads through one snapshot for the block.

        Serve sessions wrap whole requests in a pin so every query of the
        request sees one consistent catalog; ``query()`` pins per
        statement automatically when no outer pin is active.
        """
        snap = snap if snap is not None else self.snapshot()
        stack = self._pin_stack()
        stack.append(snap)
        try:
            yield snap
        finally:
            stack.pop()

    @contextmanager
    def _statement_pin(self) -> Iterator[CatalogSnapshot]:
        """Reuse the session's pin when one is active, else pin per statement."""
        active = self._active_snapshot()
        if active is not None:
            yield active
        else:
            with self.pinned() as snap:
                yield snap

    # ------------------------------------------------------------------
    # WAL commit protocol + recovery
    # ------------------------------------------------------------------
    def recover(self) -> dict:
        """Replay the WAL: truncate torn tails, finish or discard
        interrupted commits, drop orphan row groups.

        Idempotent and safe to call any time a writer (re)opens the
        database; read paths never trigger it.  Returns an accounting doc
        (also stamped on a ``wal.recover`` span).
        """
        if self._wal is None:
            return {"replayed": 0, "skipped": 0, "torn_tail": 0, "corrupt": 0,
                    "orphan_groups": 0}
        with self._write_lock:
            return self._recover_locked()

    def _recover_locked(self) -> dict:
        registry = get_registry()
        with get_tracer().span(obs_names.WAL_RECOVER_SPAN) as span:
            # a restarted process must judge the durable state, not a
            # stale in-memory image
            self._tables = self._read_catalog()
            records, scan = self._wal.pending()
            replayed = skipped = orphans = 0
            for record in records:
                name = record.get("table")
                kind = record.get("kind")
                entry = self._tables.get(name)
                base = int(record.get("base_version", 0))
                if kind == "create":
                    if entry is not None:
                        skipped += 1  # commit already published
                        continue
                    # a crashed create may have staged segments or even
                    # published meta.json; replay restarts from nothing so
                    # the staged groups cannot double up
                    crashed = TableStore(self.path / name)
                    if crashed.path.exists():
                        orphans += max(crashed.num_row_groups, 1)
                        crashed.drop()
                elif kind == "append":
                    if entry is None:
                        skipped += 1  # table dropped after the record landed
                        continue
                    if int(entry.get("version", 0)) > base:
                        skipped += 1  # commit already published
                        continue
                else:
                    skipped += 1
                    continue
                orphans += self._discard_uncommitted(name)
                frame = Frame(dict(record["columns"]))
                self._commit(
                    name,
                    frame,
                    kind=kind,
                    row_group_size=int(record["row_group_size"]),
                    allow_kills=False,
                )
                replayed += 1
                registry.counter(obs_names.WAL_REPLAYED).inc()
            if skipped:
                registry.counter(obs_names.WAL_SKIPPED_COMMITTED).inc(skipped)
            # even with no replayable record, a crashed stage may have left
            # meta.json or segment dirs ahead of the committed clamp
            for name in list(self._tables):
                orphans += self._discard_uncommitted(name)
            if orphans:
                registry.counter(obs_names.WAL_ORPHAN_GROUPS_DROPPED).inc(orphans)
            self._wal.clear()
            report = {
                "replayed": replayed,
                "skipped": skipped,
                "torn_tail": int(scan.torn_tail),
                "corrupt": int(scan.corrupt_record),
                "orphan_groups": orphans,
            }
            span.set(**{f"wal_{k}": v for k, v in report.items()})
            if replayed or scan.torn_tail or scan.corrupt_record or orphans:
                log.info("WAL recovery at %s: %s", self.path, report)
            return report

    def _discard_uncommitted(self, name: str) -> int:
        """Trim one table back to its committed prefix (recovery helper)."""
        entry = self._tables.get(name)
        if entry is None:
            return 0
        committed = entry.get("committed_row_groups")
        if committed is None:
            return 0
        return TableStore(self.path / name).discard_uncommitted(int(committed))

    def _commit(
        self,
        name: str,
        frame: Frame,
        kind: str,
        row_group_size: int,
        allow_kills: bool = True,
    ) -> None:
        """Stage segments, publish meta, then commit via the catalog.

        ``allow_kills=False`` disarms the simulated-death fault points —
        recovery replays must run to completion deterministically (replay
        is idempotent, so a *real* crash during recovery still only loses
        the in-flight record to the next recovery pass).
        """
        def fire(point: str) -> bool:
            return allow_kills and faults.fire_ingest_kill(point)

        if fire(faults.INGEST_KILL_APPLY):
            raise IngestKilled("apply", f"before staging row groups of {name!r}")
        store = TableStore(self.path / name)
        if allow_kills:
            staged = store.stage_append(frame, row_group_size)
        else:
            with faults.use_faults(faults.NULL_INJECTOR):
                staged = store.stage_append(frame, row_group_size)
        if staged is not None:
            store.publish_staged(staged)
        if fire(faults.INGEST_KILL_PUBLISH):
            raise IngestKilled(
                "publish", f"meta.json of {name!r} published, catalog commit pending"
            )
        committed_groups = len(staged["row_groups"]) if staged is not None else 0
        committed_rows = int(sum(staged["row_groups"])) if staged is not None else 0
        if kind == "create":
            entry = self._tables[name] = {
                "row_group_size": row_group_size,
                "version": 1,
            }
        else:
            entry = self._tables[name]
            entry["version"] = int(entry.get("version", 0)) + 1
        entry["committed_row_groups"] = committed_groups
        entry["committed_rows"] = committed_rows
        self._flush_catalog()

    # ------------------------------------------------------------------
    # DDL / loading
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        frame: Frame | None = None,
        row_group_size: int = DEFAULT_ROW_GROUP_SIZE,
    ) -> None:
        """Create (and optionally populate) a table."""
        if not _NAME_RE.match(name):
            raise DBError(f"invalid table name {name!r}")
        if name in self._tables:
            raise DBError(f"table {name!r} already exists")
        if frame is None or not frame.num_columns:
            # nothing to stage: the single catalog publish is already atomic
            with self._write_lock:
                self._tables[name] = {
                    "row_group_size": row_group_size,
                    "version": 1,
                    "committed_row_groups": 0,
                    "committed_rows": 0,
                }
                self._flush_catalog()
            return
        self._write(name, frame, kind="create", row_group_size=row_group_size)

    def append(self, name: str, frame: Frame) -> None:
        """Append rows to an existing table (schema must match).

        Crash-safe: the frame is WAL-logged before any table bytes move,
        and becomes visible only at the atomic catalog publish.
        """
        meta = self._tables.get(name)
        if meta is None:
            raise UnknownTableError(name, self.list_tables())
        self._write(name, frame, kind="append", row_group_size=int(meta["row_group_size"]))

    def _write(self, name: str, frame: Frame, kind: str, row_group_size: int) -> None:
        with self._write_lock:
            if self._wal is None:
                # direct path (WAL disabled): still commit-ordered — the
                # catalog publish carries the clamp covering the new groups
                self._commit(name, frame, kind=kind, row_group_size=row_group_size,
                             allow_kills=False)
                return
            if self._wal.exists_nonempty():
                # a previous writer died mid-commit; settle its state first
                self._recover_locked()
                if kind == "append" and name not in self._tables:
                    raise UnknownTableError(name, sorted(self._tables))
                if kind == "create" and name in self._tables:
                    raise DBError(f"table {name!r} already exists")
            if kind == "append" and "committed_row_groups" not in self._tables[name]:
                # first WAL-protected append to a pre-WAL table: publish a
                # clamp covering today's quiescent contents, so a crash in
                # the upcoming commit cannot expose its staged tail
                legacy = TableStore(self.path / name)
                self._tables[name]["committed_row_groups"] = legacy.num_row_groups
                self._tables[name]["committed_rows"] = legacy.num_rows
                self._flush_catalog()
            base = (
                int(self._tables[name].get("version", 0))
                if name in self._tables
                else 0
            )
            self._wal.append(
                make_append_record(
                    name,
                    kind,
                    base_version=base,
                    row_group_size=row_group_size,
                    columns={c: frame.column(c) for c in frame.columns},
                )
            )
            self._commit(name, frame, kind=kind, row_group_size=row_group_size)
            self._wal.clear()
            get_registry().counter(obs_names.WAL_COMMITS).inc()

    def drop_table(self, name: str) -> None:
        with self._write_lock:
            if name not in self._tables:
                raise UnknownTableError(name, sorted(self._tables))
            TableStore(self.path / name).drop()
            del self._tables[name]
            self._flush_catalog()

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, sql: str) -> Frame:
        """Parse and execute one SQL statement.

        ``CREATE TABLE name AS SELECT ...`` persists the result and returns
        it; a bare SELECT just returns the result frame.  Zone-map pruning
        accounting for the scan is exposed as ``last_scan_stats``; SELECT
        results flow through the semantic query-result cache when enabled.

        Reads run under a pinned catalog snapshot (the session's, if one
        is active, else one taken for this statement), so a SELECT racing
        a concurrent append is byte-identical to the same SELECT against
        the quiescent pre- or post-append table.
        """
        from repro.db.sql.executor import ScanStats

        stmt = parse_sql(sql)
        self.last_scan_stats = ScanStats()
        if isinstance(stmt, CreateTableAs):
            with self._statement_pin():
                result = self._execute_select(stmt.select)
            self.create_table(stmt.name, result)
            return result
        assert isinstance(stmt, SelectStatement)
        with self._statement_pin():
            return self._execute_select(stmt)

    def _execute_select(self, stmt: SelectStatement) -> Frame:
        if self._result_cache is None:
            return execute(self, stmt, self.last_scan_stats)
        return self._result_cache.execute(self, stmt, self.last_scan_stats)

    def table_frame(self, name: str) -> Frame:
        """Materialize a whole table (result-sized tables only)."""
        return self.store(name).read_all()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Total on-disk bytes across all tables."""
        return sum(TableStore(self.path / n).nbytes() for n in self._tables)

    def describe(self) -> str:
        lines = [f"Database at {self.path} ({self.nbytes():,} bytes)"]
        for name in self.list_tables():
            store = self.store(name)
            lines.append(
                f"  {name}: {store.num_rows} rows x {len(store.columns)} cols "
                f"({store.nbytes():,} bytes, {store.num_row_groups} row groups)"
            )
        return "\n".join(lines)
