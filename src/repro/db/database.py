"""Public Database façade.

Usage::

    db = Database(workdir / "analysis.db")
    db.create_table("halos", frame)            # or append multiple frames
    top = db.query("SELECT fof_halo_tag, fof_halo_count FROM halos "
                   "ORDER BY fof_halo_count DESC LIMIT 20")

The database is a directory; every table is a column-segmented subdirectory
(see :mod:`repro.db.storage`).  All query execution streams from disk.
``nbytes()`` reports exact on-disk footprint — the paper's storage-overhead
metric counts these bytes.

Every catalog entry carries a monotonic ``version`` bumped on
create/append/drop; combined with the store's content signature it forms
the per-table state that keys the semantic query-result cache
(:mod:`repro.db.cache`), so appending rows provably invalidates every
cached result computed over the old contents.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.db.errors import DBError, UnknownTableError
from repro.db.sql.ast import CreateTableAs, SelectStatement
from repro.db.sql.executor import execute
from repro.db.sql.parser import parse_sql
from repro.db.storage import (
    DEFAULT_ROW_GROUP_SIZE,
    TableStore,
    publish_json_verified,
)
from repro.frame import Frame

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z_0-9]*$")


class Database:
    """An embedded, directory-backed columnar SQL database.

    ``cache_dir`` enables the on-disk tier of the query-result cache
    (shared across processes pointing at the same directory); the
    in-process memoization tier is always active unless ``result_cache``
    is False.

    ``num_threads`` sets the morsel-driven engine's thread count for
    queries against this database (None defers to ``REPRO_SQL_THREADS``,
    then 1; 0 means one thread per core).  Parallel execution is
    byte-identical to sequential, so this is purely a throughput knob.
    """

    def __init__(
        self,
        path: str | Path,
        cache_dir: str | Path | None = None,
        result_cache: bool = True,
        num_threads: int | None = None,
    ):
        self.path = Path(path)
        self.num_threads = num_threads
        self.path.mkdir(parents=True, exist_ok=True)
        self._catalog_path = self.path / "catalog.json"
        if self._catalog_path.exists():
            try:
                self._tables: dict[str, dict] = json.loads(
                    self._catalog_path.read_text()
                )
            except (OSError, json.JSONDecodeError) as exc:
                raise DBError(
                    f"corrupt catalog at {self._catalog_path}: {exc}"
                ) from exc
        else:
            self._tables = {}
        if result_cache:
            from repro.db.cache import QueryResultCache

            self._result_cache = QueryResultCache(cache_dir)
        else:
            self._result_cache = None

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def list_tables(self) -> list[str]:
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def store(self, name: str) -> TableStore:
        if name not in self._tables:
            raise UnknownTableError(name, self.list_tables())
        return TableStore(self.path / name)

    def schema(self, name: str) -> dict[str, str]:
        """Column name -> dtype string for a table."""
        store = self.store(name)
        return {c: store.dtype_of(c).name for c in store.columns}

    def table_version(self, name: str) -> int:
        """Monotonic catalog version of a table (bumped on create/append)."""
        meta = self._tables.get(name)
        if meta is None:
            raise UnknownTableError(name, self.list_tables())
        return int(meta.get("version", 0))

    def table_state(self, name: str) -> str:
        """Cache-key component identifying a table's exact contents.

        Prefers the store's content signature (schema + per-segment
        checksums), which is identical across databases holding the same
        bytes — that is what lets harness worker processes share one
        on-disk result cache.  Legacy tables without checksums fall back
        to a path-scoped state, which is always safe, never shared.
        """
        version = self.table_version(name)
        signature = self.store(name).content_signature()
        if signature is None:
            signature = f"path={self.path.resolve()}"
        return f"{name}@v{version}:{signature}"

    def _flush_catalog(self) -> None:
        """Crash-safe catalog publish: temp file + verify + atomic rename
        (a cache-invalidation version bump that dies mid-write must not
        corrupt the catalog)."""
        publish_json_verified(
            self.path, "catalog.json", self._tables, what="catalog.json", indent=1
        )

    # ------------------------------------------------------------------
    # DDL / loading
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        frame: Frame | None = None,
        row_group_size: int = DEFAULT_ROW_GROUP_SIZE,
    ) -> None:
        """Create (and optionally populate) a table."""
        if not _NAME_RE.match(name):
            raise DBError(f"invalid table name {name!r}")
        if name in self._tables:
            raise DBError(f"table {name!r} already exists")
        self._tables[name] = {"row_group_size": row_group_size, "version": 1}
        if frame is not None and frame.num_columns:
            TableStore(self.path / name).append(frame, row_group_size)
        self._flush_catalog()

    def append(self, name: str, frame: Frame) -> None:
        """Append rows to an existing table (schema must match)."""
        meta = self._tables.get(name)
        if meta is None:
            raise UnknownTableError(name, self.list_tables())
        TableStore(self.path / name).append(frame, meta["row_group_size"])
        meta["version"] = int(meta.get("version", 0)) + 1
        self._flush_catalog()

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise UnknownTableError(name, self.list_tables())
        TableStore(self.path / name).drop()
        del self._tables[name]
        self._flush_catalog()

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, sql: str) -> Frame:
        """Parse and execute one SQL statement.

        ``CREATE TABLE name AS SELECT ...`` persists the result and returns
        it; a bare SELECT just returns the result frame.  Zone-map pruning
        accounting for the scan is exposed as ``last_scan_stats``; SELECT
        results flow through the semantic query-result cache when enabled.
        """
        from repro.db.sql.executor import ScanStats

        stmt = parse_sql(sql)
        self.last_scan_stats = ScanStats()
        if isinstance(stmt, CreateTableAs):
            result = self._execute_select(stmt.select)
            self.create_table(stmt.name, result)
            return result
        assert isinstance(stmt, SelectStatement)
        return self._execute_select(stmt)

    def _execute_select(self, stmt: SelectStatement) -> Frame:
        if self._result_cache is None:
            return execute(self, stmt, self.last_scan_stats)
        return self._result_cache.execute(self, stmt, self.last_scan_stats)

    def table_frame(self, name: str) -> Frame:
        """Materialize a whole table (result-sized tables only)."""
        return self.store(name).read_all()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Total on-disk bytes across all tables."""
        return sum(TableStore(self.path / n).nbytes() for n in self._tables)

    def describe(self) -> str:
        lines = [f"Database at {self.path} ({self.nbytes():,} bytes)"]
        for name in self.list_tables():
            store = self.store(name)
            lines.append(
                f"  {name}: {store.num_rows} rows x {len(store.columns)} cols "
                f"({store.nbytes():,} bytes, {store.num_row_groups} row groups)"
            )
        return "\n".join(lines)
