"""SQL tokenizer.

A small hand-written scanner producing a flat token list for the
recursive-descent parser.  Keywords are case-insensitive; identifiers keep
their case (HACC columns are case-sensitive, e.g. ``sod_halo_MGas500c``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto

from repro.db.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "ASC", "DESC", "JOIN", "INNER", "LEFT", "ON",
    "IN", "BETWEEN", "DISTINCT", "CREATE", "TABLE", "NULL", "LIKE", "IS",
    "CASE", "WHEN", "THEN", "ELSE", "END", "OFFSET",
}


class TokType(Enum):
    KEYWORD = auto()
    IDENT = auto()
    NUMBER = auto()
    STRING = auto()
    OP = auto()
    PUNCT = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    type: TokType
    value: str
    pos: int

    def is_kw(self, *names: str) -> bool:
        return self.type is TokType.KEYWORD and self.value in names


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<string>'(?:[^']|'')*')
  | (?P<dquoted>"(?:[^"])*")
  | (?P<op><=|>=|<>|!=|=|<|>|\|\|)
  | (?P<punct>[(),.*/+\-%;])
    """,
    re.VERBOSE,
)


def lex(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SQLSyntaxError` on junk."""
    tokens: list[Token] = []
    pos = 0
    n = len(sql)
    while pos < n:
        m = _TOKEN_RE.match(sql, pos)
        if m is None:
            raise SQLSyntaxError(f"unexpected character {sql[pos]!r}", sql, pos)
        if m.lastgroup == "ws":
            pos = m.end()
            continue
        text = m.group(0)
        if m.lastgroup == "number":
            tokens.append(Token(TokType.NUMBER, text, pos))
        elif m.lastgroup == "ident":
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokType.KEYWORD, upper, pos))
            else:
                tokens.append(Token(TokType.IDENT, text, pos))
        elif m.lastgroup == "string":
            tokens.append(Token(TokType.STRING, text[1:-1].replace("''", "'"), pos))
        elif m.lastgroup == "dquoted":
            tokens.append(Token(TokType.IDENT, text[1:-1], pos))
        elif m.lastgroup == "op":
            tokens.append(Token(TokType.OP, text, pos))
        else:
            tokens.append(Token(TokType.PUNCT, text, pos))
        pos = m.end()
    tokens.append(Token(TokType.EOF, "", n))
    return tokens
