"""Zone-map predicate pushdown.

Each row group stores per-column min/max statistics ("zone maps").  Before
a filtered scan touches a row group's bytes, the WHERE predicate is
evaluated against the zone map with interval logic; a row group whose
predicate is *provably false for every row* is skipped without any I/O.
This is the classic segment-skipping optimization of columnar engines
(DuckDB, Parquet readers) and is what makes highly selective queries —
e.g. ``WHERE step = 624`` over a table holding every timestep — touch a
fraction of the table.

The analysis is conservative: anything it cannot prove returns
"might match", never the reverse, so pruning can never change results.
"""

from __future__ import annotations

from repro.db.sql import ast

Stats = dict[str, tuple[float, float]]


def can_skip_row_group(where: ast.Expr | None, stats: Stats) -> bool:
    """True iff ``where`` is provably false for every row of the group."""
    if where is None or not stats:
        return False
    return _always_false(where, stats)


def _bounds(expr: ast.Expr, stats: Stats) -> tuple[float, float] | None:
    """Value interval of an expression over the row group, if derivable."""
    if isinstance(expr, ast.Literal) and isinstance(expr.value, (int, float)):
        v = float(expr.value)
        return (v, v)
    if isinstance(expr, ast.Column):
        return stats.get(expr.name)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _bounds(expr.operand, stats)
        if inner is not None:
            return (-inner[1], -inner[0])
    if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
        left = _bounds(expr.left, stats)
        right = _bounds(expr.right, stats)
        if left is not None and right is not None:
            if expr.op == "+":
                return (left[0] + right[0], left[1] + right[1])
            return (left[0] - right[1], left[1] - right[0])
    return None


def _always_false(expr: ast.Expr, stats: Stats) -> bool:
    if isinstance(expr, ast.Binary):
        op = expr.op
        if op == "AND":
            return _always_false(expr.left, stats) or _always_false(expr.right, stats)
        if op == "OR":
            return _always_false(expr.left, stats) and _always_false(expr.right, stats)
        left = _bounds(expr.left, stats)
        right = _bounds(expr.right, stats)
        if left is None or right is None:
            return False
        l_lo, l_hi = left
        r_lo, r_hi = right
        if op == "=":
            return l_hi < r_lo or l_lo > r_hi
        if op == "!=":
            return l_lo == l_hi == r_lo == r_hi
        if op == "<":
            return l_lo >= r_hi
        if op == "<=":
            return l_lo > r_hi
        if op == ">":
            return l_hi <= r_lo
        if op == ">=":
            return l_hi < r_lo
        return False
    if isinstance(expr, ast.InList):
        if expr.negated:
            return False
        operand = _bounds(expr.operand, stats)
        if operand is None:
            return False
        lo, hi = operand
        for option in expr.options:
            b = _bounds(option, stats)
            if b is None:
                return False  # non-numeric option: cannot prove anything
            v_lo, v_hi = b
            if not (v_hi < lo or v_lo > hi):
                return False  # this option might match
        return True
    if isinstance(expr, ast.Between):
        if expr.negated:
            return False
        operand = _bounds(expr.operand, stats)
        low = _bounds(expr.low, stats)
        high = _bounds(expr.high, stats)
        if operand is None or low is None or high is None:
            return False
        return operand[1] < low[0] or operand[0] > high[1]
    return False
