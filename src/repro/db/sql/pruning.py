"""Zone-map + bloom-filter predicate pushdown.

Each row group stores per-column min/max statistics ("zone maps") and,
for low-cardinality columns, fixed-size bloom filters over the group's
distinct values (:mod:`repro.db.bloom`).  Before a filtered scan touches
a row group's bytes, the WHERE predicate is evaluated against those
statistics; a row group whose predicate is *provably false for every
row* is skipped without any I/O.  This is the classic segment-skipping
optimization of columnar engines (DuckDB, Parquet readers) and is what
makes highly selective queries — e.g. ``WHERE step = 624`` over a table
holding every timestep — touch a fraction of the table.

Zone maps refute through interval logic (ranges, comparisons); bloom
filters refute equality and ``IN`` membership, including over *string*
columns, which have no interval statistics at all.  The two compose
through AND/OR recursion: a conjunct refuted by either statistic kills
the whole conjunction.

The analysis is conservative: anything it cannot prove returns
"might match", never the reverse, so pruning can never change results.
:func:`skip_reason` attributes each skip to the statistic that proved it
("zone" when intervals alone suffice, "bloom" when a filter was needed)
so the engine's counters report the marginal value of each index kind.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.db.sql import ast

Stats = dict[str, tuple[float, float]]
# column name -> object with might_contain(value) -> bool (see repro.db.bloom)
Blooms = Mapping[str, object]


def can_skip_row_group(
    where: ast.Expr | None, stats: Stats, blooms: Blooms | None = None
) -> bool:
    """True iff ``where`` is provably false for every row of the group."""
    return skip_reason(where, stats, blooms) is not None


def skip_reason(
    where: ast.Expr | None, stats: Stats, blooms: Blooms | None = None
) -> str | None:
    """Why this row group can be skipped: "zone", "bloom", or None.

    "zone" means interval logic alone refutes the predicate; "bloom"
    means the bloom filters were needed (the marginal skip a zone map
    could not prove).
    """
    if where is None:
        return None
    if stats and _always_false(where, stats, None):
        return "zone"
    if blooms and _always_false(where, stats, blooms):
        return "bloom"
    return None


def _bounds(expr: ast.Expr, stats: Stats) -> tuple[float, float] | None:
    """Value interval of an expression over the row group, if derivable."""
    if isinstance(expr, ast.Literal) and isinstance(expr.value, (int, float)):
        v = float(expr.value)
        return (v, v)
    if isinstance(expr, ast.Column):
        return stats.get(expr.name)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _bounds(expr.operand, stats)
        if inner is not None:
            return (-inner[1], -inner[0])
    if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
        left = _bounds(expr.left, stats)
        right = _bounds(expr.right, stats)
        if left is not None and right is not None:
            if expr.op == "+":
                return (left[0] + right[0], left[1] + right[1])
            return (left[0] - right[1], left[1] - right[0])
    return None


def _bloom_refutes(
    column: ast.Expr, literal: ast.Expr, blooms: Blooms | None
) -> bool:
    """True iff a bloom filter proves ``column = literal`` matches no row."""
    if not blooms:
        return False
    if not isinstance(column, ast.Column) or not isinstance(literal, ast.Literal):
        return False
    if literal.value is None:
        return False  # NULL equality is its own semantics; never prune
    bloom = blooms.get(column.name)
    if bloom is None:
        return False
    return not bloom.might_contain(literal.value)


def _always_false(expr: ast.Expr, stats: Stats, blooms: Blooms | None) -> bool:
    if isinstance(expr, ast.Binary):
        op = expr.op
        if op == "AND":
            return _always_false(expr.left, stats, blooms) or _always_false(
                expr.right, stats, blooms
            )
        if op == "OR":
            return _always_false(expr.left, stats, blooms) and _always_false(
                expr.right, stats, blooms
            )
        if op == "=" and (
            _bloom_refutes(expr.left, expr.right, blooms)
            or _bloom_refutes(expr.right, expr.left, blooms)
        ):
            return True
        left = _bounds(expr.left, stats)
        right = _bounds(expr.right, stats)
        if left is None or right is None:
            return False
        l_lo, l_hi = left
        r_lo, r_hi = right
        if op == "=":
            return l_hi < r_lo or l_lo > r_hi
        if op == "!=":
            return l_lo == l_hi == r_lo == r_hi
        if op == "<":
            return l_lo >= r_hi
        if op == "<=":
            return l_lo > r_hi
        if op == ">":
            return l_hi <= r_lo
        if op == ">=":
            return l_hi < r_lo
        return False
    if isinstance(expr, ast.InList):
        if expr.negated:
            return False
        operand_bounds = _bounds(expr.operand, stats)
        for option in expr.options:
            if _bloom_refutes(expr.operand, option, blooms):
                continue  # this option is provably absent
            if operand_bounds is None:
                return False
            b = _bounds(option, stats)
            if b is None:
                return False  # non-numeric option with no bloom proof
            v_lo, v_hi = b
            lo, hi = operand_bounds
            if not (v_hi < lo or v_lo > hi):
                return False  # this option might match
        return True
    if isinstance(expr, ast.Between):
        if expr.negated:
            return False
        operand = _bounds(expr.operand, stats)
        low = _bounds(expr.low, stats)
        high = _bounds(expr.high, stats)
        if operand is None or low is None or high is None:
            return False
        return operand[1] < low[0] or operand[0] > high[1]
    return False
