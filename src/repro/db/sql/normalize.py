"""Semantic canonicalization of parsed SELECT statements.

The QA redo loop re-issues queries that are semantically identical up to
surface noise — a renamed table alias, reordered AND conjuncts, swapped
operands of a commutative operator.  This module folds that noise away:

* :func:`normalize` reduces a :class:`~repro.db.sql.ast.SelectStatement`
  to a :class:`NormalizedPlan` whose ``fingerprint`` is stable under

  - table-alias renaming (``FROM halos h WHERE h.x`` ≡ ``FROM halos
    WHERE x`` — aliases are resolved to real table names, and the
    qualifier is dropped entirely for single-table queries),
  - AND/OR conjunct/disjunct order (chains are flattened and sorted by
    canonical form),
  - operand order of symmetric operators (``=``, ``!=``, ``+``, ``*``)
    and direction of comparisons (``a > b`` ≡ ``b < a``),
  - literal spelling (values are hash-folded with a type tag, so ``1.0``
    and ``1`` stay distinct but formatting does not).

* the WHERE clause is exposed as a set of canonical *conjunct keys* plus
  a map back to the original expressions, which is what lets the result
  cache recognise a redo whose WHERE is strictly narrower than a cached
  parent's and re-filter the cached frame instead of re-scanning disk
  (see :mod:`repro.db.cache`).

Fingerprints are purely syntactic-semantic: they never look at table
*content*.  Content identity enters the cache key separately through the
per-table version/checksum state (``Database.table_state``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

from repro.db.sql import ast

# operators whose operand order never changes the result
_SYMMETRIC_OPS = {"=", "!=", "+", "*", "AND", "OR"}
# comparison directions normalized to their mirrored twin
_MIRROR_OPS = {">": "<", ">=": "<="}


def _alias_map(stmt: ast.SelectStatement) -> dict[str, str]:
    """Binding name -> real table name for every FROM/JOIN table."""
    mapping: dict[str, str] = {}
    for ref in (stmt.table, *(j.table for j in stmt.joins)):
        if ref.name is not None:
            mapping[ref.binding] = ref.name
    return mapping


def _resolve_column(col: ast.Column, aliases: dict[str, str], single_table: bool) -> ast.Column:
    if col.table is None:
        return col
    real = aliases.get(col.table, col.table)
    if single_table:
        return ast.Column(col.name)
    return ast.Column(col.name, table=real)


def normalize_expr(
    expr: ast.Expr, aliases: dict[str, str] | None = None, single_table: bool = True
) -> ast.Expr:
    """Canonical form of an expression (alias-resolved, order-normalized)."""
    aliases = aliases or {}

    def norm(e: ast.Expr) -> ast.Expr:
        if isinstance(e, ast.Column):
            return _resolve_column(e, aliases, single_table)
        if isinstance(e, ast.Unary):
            return replace(e, operand=norm(e.operand))
        if isinstance(e, ast.Binary):
            op, left, right = e.op, norm(e.left), norm(e.right)
            if op in _MIRROR_OPS:
                op, left, right = _MIRROR_OPS[op], right, left
            if op in _SYMMETRIC_OPS and canonical(left) > canonical(right):
                left, right = right, left
            return ast.Binary(op, left, right)
        if isinstance(e, ast.FuncCall):
            return replace(e, args=tuple(norm(a) for a in e.args))
        if isinstance(e, ast.InList):
            options = tuple(sorted((norm(o) for o in e.options), key=canonical))
            return replace(e, operand=norm(e.operand), options=options)
        if isinstance(e, ast.Between):
            return replace(e, operand=norm(e.operand), low=norm(e.low), high=norm(e.high))
        if isinstance(e, ast.Case):
            return replace(
                e,
                whens=tuple((norm(c), norm(v)) for c, v in e.whens),
                default=norm(e.default) if e.default is not None else None,
            )
        return e

    return norm(expr)


def canonical(expr: ast.Expr) -> str:
    """Deterministic S-expression string of an expression tree.

    Literal values are folded with a type tag so ``'624'`` (string) and
    ``624`` (int) canonicalize differently while float/int numeric
    equality (``624`` vs ``624.0``) is preserved.
    """
    if isinstance(expr, ast.Literal):
        v = expr.value
        if v is None:
            return "(lit null)"
        if isinstance(v, str):
            return f"(lit s:{hashlib.blake2b(v.encode(), digest_size=8).hexdigest()})"
        return f"(lit n:{float(v)!r})"
    if isinstance(expr, ast.Column):
        return f"(col {expr.qualified})"
    if isinstance(expr, ast.Star):
        return "(star)"
    if isinstance(expr, ast.Unary):
        return f"(u {expr.op} {canonical(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"(b {expr.op} {canonical(expr.left)} {canonical(expr.right)})"
    if isinstance(expr, ast.FuncCall):
        args = " ".join(canonical(a) for a in expr.args)
        return f"(f {expr.name}{' distinct' if expr.distinct else ''} {args})"
    if isinstance(expr, ast.InList):
        opts = " ".join(canonical(o) for o in expr.options)
        return f"(in{' not' if expr.negated else ''} {canonical(expr.operand)} [{opts}])"
    if isinstance(expr, ast.Between):
        return (
            f"(between{' not' if expr.negated else ''} {canonical(expr.operand)} "
            f"{canonical(expr.low)} {canonical(expr.high)})"
        )
    if isinstance(expr, ast.Case):
        whens = " ".join(f"({canonical(c)} {canonical(v)})" for c, v in expr.whens)
        default = canonical(expr.default) if expr.default is not None else "null"
        return f"(case {whens} {default})"
    return f"(?{type(expr).__name__})"


def conjuncts(where: ast.Expr | None) -> list[ast.Expr]:
    """Flatten an AND tree into its conjunct list (empty for None)."""
    if where is None:
        return []
    if isinstance(where, ast.Binary) and where.op == "AND":
        return conjuncts(where.left) + conjuncts(where.right)
    return [where]


def conjoin(parts: list[ast.Expr]) -> ast.Expr | None:
    """Re-assemble conjuncts into an AND tree (None for an empty list)."""
    if not parts:
        return None
    out = parts[0]
    for p in parts[1:]:
        out = ast.Binary("AND", out, p)
    return out


def table_names(stmt: ast.SelectStatement) -> tuple[str, ...]:
    """Every real table the statement touches, subqueries included."""
    names: list[str] = []

    def visit(s: ast.SelectStatement) -> None:
        for ref in (s.table, *(j.table for j in s.joins)):
            if ref.is_subquery:
                visit(ref.subquery)
            elif ref.name is not None and ref.name not in names:
                names.append(ref.name)

    visit(stmt)
    return tuple(names)


@dataclass(frozen=True)
class NormalizedPlan:
    """A statement reduced to cache-relevant identity."""

    statement: ast.SelectStatement
    canonical: str                    # full canonical form (debuggable)
    fingerprint: str                  # blake2b of `canonical`
    tables: tuple[str, ...]           # real table names, FROM order
    scaffold: str                     # canonical FROM/JOIN shape only
    conjunct_keys: frozenset[str]     # canonical keys of WHERE conjuncts
    conjunct_map: dict[str, ast.Expr]  # canonical key -> ORIGINAL conjunct

    @property
    def single_table(self) -> bool:
        return (
            not self.statement.joins
            and not self.statement.table.is_subquery
            and self.statement.table.name is not None
        )


def _canonical_table_ref(ref: ast.TableRef) -> str:
    if ref.is_subquery:
        return f"(subq {normalize(ref.subquery).canonical})"
    return f"(table {ref.name})"


def normalize(stmt: ast.SelectStatement) -> NormalizedPlan:
    """Reduce a SELECT to its alias/order/literal-insensitive identity."""
    aliases = _alias_map(stmt)
    single = not stmt.joins and not stmt.table.is_subquery

    def norm(e: ast.Expr) -> ast.Expr:
        return normalize_expr(e, aliases, single)

    where_parts = conjuncts(stmt.where)
    conjunct_map: dict[str, ast.Expr] = {}
    for part in where_parts:
        conjunct_map.setdefault(canonical(norm(part)), part)
    conjunct_keys = frozenset(conjunct_map)

    scaffold_bits = [_canonical_table_ref(stmt.table)]
    for join in stmt.joins:
        keys = " ".join(
            f"({canonical(norm(lk))} {canonical(norm(rk))})" for lk, rk in join.keys
        )
        scaffold_bits.append(f"(join {join.kind} {_canonical_table_ref(join.table)} {keys})")
    scaffold = " ".join(scaffold_bits)

    items = " ".join(
        f"(item {canonical(norm(i.expr))} as:{i.alias or ''})" for i in stmt.items
    )
    group = " ".join(sorted(canonical(norm(g)) for g in stmt.group_by))
    having = canonical(norm(stmt.having)) if stmt.having is not None else ""
    order = " ".join(
        f"({canonical(norm(o.expr))} {'asc' if o.ascending else 'desc'})"
        for o in stmt.order_by
    )
    canon = (
        f"(select{' distinct' if stmt.distinct else ''} [{items}] from [{scaffold}] "
        f"where [{' '.join(sorted(conjunct_keys))}] group [{group}] having [{having}] "
        f"order [{order}] limit {stmt.limit} offset {stmt.offset})"
    )
    return NormalizedPlan(
        statement=stmt,
        canonical=canon,
        fingerprint=hashlib.blake2b(canon.encode(), digest_size=16).hexdigest(),
        tables=table_names(stmt),
        scaffold=scaffold,
        conjunct_keys=conjunct_keys,
        conjunct_map=conjunct_map,
    )


def residual_conjuncts(plan: NormalizedPlan, parent_keys: frozenset[str]) -> list[ast.Expr] | None:
    """Original conjuncts of ``plan`` not already applied by a parent.

    Returns None unless the parent's conjunct set is a subset of the
    plan's (i.e. the plan's WHERE is equal or strictly narrower); an
    empty list means the WHEREs are semantically identical.
    """
    if not parent_keys <= plan.conjunct_keys:
        return None
    return [plan.conjunct_map[k] for k in sorted(plan.conjunct_keys - parent_keys)]


def referenced_column_names(stmt: ast.SelectStatement) -> set[str] | None:
    """Bare column names the statement reads; None when it needs all (``*``).

    A ``*`` inside an aggregate call (``COUNT(*)``) counts rows without
    reading any column, so it adds no requirement; only a projection-level
    ``*`` demands the full row.
    """
    names: set[str] = set()
    exprs: list[ast.Expr] = [item.expr for item in stmt.items]
    if stmt.where is not None:
        exprs.append(stmt.where)
    if stmt.having is not None:
        exprs.append(stmt.having)
    exprs.extend(stmt.group_by)
    exprs.extend(o.expr for o in stmt.order_by)
    for j in stmt.joins:
        for lk, rk in j.keys:
            exprs.extend((lk, rk))

    in_call: list[ast.Expr] = []
    for e in exprs:
        for node in ast.walk(e):
            if isinstance(node, ast.FuncCall):
                in_call.extend(a for a in node.args if isinstance(a, ast.Star))
    for e in exprs:
        for node in ast.walk(e):
            if isinstance(node, ast.Star) and not any(node is s for s in in_call):
                return None
            if isinstance(node, ast.Column):
                names.add(node.name)
    return names
