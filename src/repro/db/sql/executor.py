"""Vectorized streaming executor for the SQL subset.

Execution strategy by query shape:

* plain SELECT (no grouping): stream row groups through WHERE + projection,
  with early termination when an un-ordered LIMIT is satisfied;
* grouped / aggregate SELECT: each row group yields *partial* per-group
  accumulators keyed by chunk-local dense codes, folded into the global
  accumulators (via :meth:`Accumulator.merge`) in row-group order, then
  SELECT expressions evaluate over the per-group frame (aggregate nodes
  substituted for materialized columns) and HAVING applies;
* JOIN queries materialize both sides column-pruned, merge via the Frame
  sort-merge join, then follow one of the two paths above in-memory.

ORDER BY / LIMIT run last over the (result-sized) output.

**Morsel-driven parallelism.**  When ``num_threads > 1`` (the Database's
``num_threads``, or the ``REPRO_SQL_THREADS`` environment variable), the
per-row-group work — segment read, WHERE, projection, partial
aggregation — is dispatched as (row group index) morsels onto a shared
thread pool.  Threads, not processes: the mmap'd ``.npy`` segments are
shared zero-copy instead of pickled, and NumPy releases the GIL across
the kernels doing the real work.  The coordinator consumes results in
**row-group order** through a bounded reorder window, and the sequential
path runs the *same* per-chunk functions through the same fold, so
parallel execution is byte-identical to sequential by construction — the
invariant the query-result cache, the chaos suite, and canonical traces
all depend on.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

import numpy as np

from dataclasses import dataclass as _dataclass

from repro.db.errors import UnsupportedSQLError
from repro.db.sql import ast
from repro.db.sql.aggregates import Accumulator, make_accumulator
from repro.db.sql.expressions import evaluate, expr_name
from repro.db.sql.pruning import skip_reason
from repro.frame import Frame, concat
from repro.frame.join import merge
from repro.obs.events import NULL_BUS, get_bus
from repro.obs.metrics import get_registry
from repro.obs.names import MORSEL_EVENT, SQL_EXECUTE_SPAN
from repro.obs.tracer import get_tracer


@_dataclass
class ScanStats:
    """Row-group pruning and morsel accounting for one query."""

    row_groups_total: int = 0
    row_groups_skipped_zone: int = 0
    row_groups_skipped_bloom: int = 0
    morsels_executed: int = 0
    threads: int = 1

    @property
    def row_groups_skipped(self) -> int:
        return self.row_groups_skipped_zone + self.row_groups_skipped_bloom

    @property
    def skip_fraction(self) -> float:
        if not self.row_groups_total:
            return 0.0
        return self.row_groups_skipped / self.row_groups_total


# ----------------------------------------------------------------------
# thread-pool plumbing
# ----------------------------------------------------------------------
def resolve_num_threads(explicit: int | None = None) -> int:
    """Engine thread count: explicit knob > REPRO_SQL_THREADS > 1.

    A value of 0 (or negative) means one thread per core.  The result is
    clamped to the host's core count — the engine is CPU-bound, so
    oversubscribing cores only adds scheduler overhead — unless
    ``REPRO_SQL_FORCE_PARALLEL=1`` is set (a test/bench hook so the
    parallel merge path can be exercised on small hosts).
    """
    cores = max(1, os.cpu_count() or 1)
    if explicit is None:
        env = os.environ.get("REPRO_SQL_THREADS", "").strip()
        if not env:
            return 1
        try:
            explicit = int(env)
        except ValueError:
            return 1
    if explicit <= 0:
        return cores
    threads = int(explicit)
    if os.environ.get("REPRO_SQL_FORCE_PARALLEL", "") != "1":
        threads = min(threads, cores)
    return threads


_POOLS: dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _shared_pool(threads: int) -> ThreadPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="repro-sql"
            )
            _POOLS[threads] = pool
        return pool


if hasattr(os, "register_at_fork"):
    # the evaluation harness forks worker processes; a pool's threads do
    # not survive fork, so children must drop the parent's dead pools
    os.register_at_fork(after_in_child=_POOLS.clear)


def _ordered_map(
    fn: Callable, items: list, pool: ThreadPoolExecutor, window: int
) -> Iterator:
    """Map ``fn`` over ``items`` on ``pool``, yielding results *in order*.

    At most ``window`` futures are in flight, so an early-terminating
    consumer (un-ordered LIMIT) never schedules the whole table; pending
    futures are cancelled when the consumer stops.
    """
    futures: dict[int, object] = {}
    next_submit = 0
    try:
        for next_yield in range(len(items)):
            while next_submit < len(items) and next_submit < next_yield + window:
                futures[next_submit] = pool.submit(fn, items[next_submit])
                next_submit += 1
            yield futures.pop(next_yield).result()
    finally:
        for fut in futures.values():
            fut.cancel()


def execute(
    db,
    stmt: ast.SelectStatement,
    scan_stats: ScanStats | None = None,
    cache_outcome: str | None = None,
    num_threads: int | None = None,
) -> Frame:
    """Run a SELECT against ``db`` (a :class:`repro.db.database.Database`).

    Traced as span ``sql.execute`` with the result size, thread count and
    the segment-pruning outcome (zone-map vs bloom-filter skips, morsels
    executed) as attributes, correlating each supervisor step with the
    exact scan it triggered.  ``cache_outcome`` is stamped onto the span
    by the query-result cache (``"miss"`` on a full execution; hits never
    reach this function — see :mod:`repro.db.cache`).

    ``num_threads=None`` defers to ``db.num_threads`` and then to the
    ``REPRO_SQL_THREADS`` environment variable.
    """
    if num_threads is None:
        num_threads = getattr(db, "num_threads", None)
    threads = resolve_num_threads(num_threads)
    stats = scan_stats if scan_stats is not None else ScanStats()
    stats.threads = max(stats.threads, threads)
    with get_tracer().span(
        SQL_EXECUTE_SPAN,
        grouped=bool(stmt.group_by)
        or any(ast.contains_aggregate(item.expr) for item in stmt.items),
        joins=len(stmt.joins),
    ) as sp:
        result = _execute_statement(db, stmt, stats, threads)
        sp.set(rows=result.num_rows)
        if cache_outcome is not None:
            sp.set(cache=cache_outcome)
        sp.set(
            threads=threads,
            morsels=stats.morsels_executed,
            row_groups_total=stats.row_groups_total,
            row_groups_skipped=stats.row_groups_skipped,
            row_groups_skipped_zone=stats.row_groups_skipped_zone,
            row_groups_skipped_bloom=stats.row_groups_skipped_bloom,
        )
    registry = get_registry()
    registry.counter("sql.queries").inc()
    registry.counter("sql.engine.morsels").inc(stats.morsels_executed)
    registry.counter("sql.engine.skipped.zone").inc(stats.row_groups_skipped_zone)
    registry.counter("sql.engine.skipped.bloom").inc(stats.row_groups_skipped_bloom)
    return result


def execute_over_frame(stmt: ast.SelectStatement, frame: Frame) -> Frame:
    """Run a SELECT over one in-memory frame instead of stored tables.

    The incremental re-execution path of the query-result cache: a redo
    whose WHERE is strictly narrower than a cached parent's re-filters
    the parent's result frame through the ordinary grouped/plain pipeline
    (the statement's residual WHERE, projection, GROUP BY, ORDER BY and
    LIMIT all apply) without touching row groups on disk.
    """
    return _execute_over_source(stmt, _FrameSource([frame]), 1, None)


def _execute_statement(
    db, stmt: ast.SelectStatement, stats: ScanStats | None, threads: int
) -> Frame:
    return _execute_over_source(
        stmt, _resolve_source(db, stmt, stats, threads), threads, stats
    )


# ----------------------------------------------------------------------
# source resolution
# ----------------------------------------------------------------------
class _FrameSource:
    """Chunk source over already-materialized frames (subquery, join,
    cache incremental re-execution)."""

    def __init__(self, frames: list[Frame]):
        self.frames = frames

    @property
    def schema(self) -> dict[str, np.dtype]:
        sch: dict[str, np.dtype] = {}
        for f in self.frames:
            for n in f.columns:
                sch.setdefault(n, np.asarray(f.column(n)).dtype)
        return sch

    def morsels(self) -> None:
        return None  # frames are in memory already; nothing to parallelize

    def chunks(self) -> Iterator[Frame]:
        return iter(self.frames)


class _StoreSource:
    """Chunk source over an on-disk table: prunes row groups through zone
    maps and bloom filters, then serves survivors sequentially or as
    parallel morsels (``read()`` is thread-safe: segment reads mmap)."""

    def __init__(self, store, columns, where, stats: ScanStats | None):
        self.store = store
        self.columns = columns
        self.survivors: list[int] = []
        for i in range(store.num_row_groups):
            if stats is not None:
                stats.row_groups_total += 1
            if where is not None:
                reason = skip_reason(where, store.zone_map(i), store.blooms(i))
                if reason is not None:
                    if stats is not None:
                        if reason == "zone":
                            stats.row_groups_skipped_zone += 1
                        else:
                            stats.row_groups_skipped_bloom += 1
                    continue
            self.survivors.append(i)

    @property
    def schema(self) -> dict[str, np.dtype]:
        names = self.columns if self.columns is not None else self.store.columns
        return {n: self.store.dtype_of(n) for n in names}

    def morsels(self) -> list[int]:
        return self.survivors

    def read(self, index: int) -> Frame:
        return self.store.read_row_group(index, self.columns)

    def chunks(self) -> Iterator[Frame]:
        for i in self.survivors:
            yield self.read(i)


def _referenced_columns(stmt: ast.SelectStatement) -> set[str] | None:
    """Bare column names the query touches; None means SELECT * (all)."""
    names: set[str] = set()
    exprs: list[ast.Expr] = [item.expr for item in stmt.items]
    if stmt.where is not None:
        exprs.append(stmt.where)
    if stmt.having is not None:
        exprs.append(stmt.having)
    exprs.extend(stmt.group_by)
    exprs.extend(o.expr for o in stmt.order_by)
    for j in stmt.joins:
        for lk, rk in j.keys:
            exprs.append(lk)
            exprs.append(rk)
    for e in exprs:
        for node in ast.walk(e):
            if isinstance(node, ast.Star):
                return None
            if isinstance(node, ast.Column):
                names.add(node.name)
    return names


def _resolve_source(
    db, stmt: ast.SelectStatement, stats: ScanStats | None, threads: int
):
    needed = _referenced_columns(stmt)
    if stmt.table.is_subquery and not stmt.joins:
        inner = execute(db, stmt.table.subquery, stats, num_threads=threads)
        return _FrameSource([inner])
    if not stmt.joins:
        store = db.store(stmt.table.name)
        columns = None if needed is None else [c for c in store.columns if c in needed]
        if columns is not None and not columns:
            # pure COUNT(*)-style query: stream the cheapest column
            columns = store.columns[:1]
        return _StoreSource(store, columns, stmt.where, stats)
    return _FrameSource([_materialize_join(db, stmt, needed)])


def _materialize_join(db, stmt: ast.SelectStatement, needed: set[str] | None) -> Frame:
    """Column-pruned two-or-more-way equijoin through Frame merge."""
    def load(table: ast.TableRef, extra: set[str]) -> Frame:
        if table.is_subquery:
            inner = execute(db, table.subquery)
            if needed is None:
                return inner
            keep = [c for c in inner.columns if c in needed or c in extra]
            return inner.select(keep) if keep else inner
        store = db.store(table.name)
        if needed is None:
            columns = store.columns
        else:
            columns = [c for c in store.columns if c in needed or c in extra]
        return store.read_all(columns)

    left_keys = {lk.name for j in stmt.joins for lk, _ in j.keys}
    current = load(stmt.table, left_keys)
    for join in stmt.joins:
        right = load(join.table, {rk.name for _, rk in join.keys})
        renames = {rk.name: lk.name for lk, rk in join.keys if rk.name != lk.name}
        if renames:
            right = right.rename(renames)
        on = [lk.name for lk, _ in join.keys]
        current = merge(current, right, on=on, how=join.kind)
    return current


# ----------------------------------------------------------------------
# morsel dispatch
# ----------------------------------------------------------------------
def _piece_stream(source, work: Callable, threads: int, stats: ScanStats | None):
    """Per-chunk results of ``work``, always yielded in row-group order.

    Parallel dispatch only for store-backed sources with more than one
    surviving row group; everything else (frames, joins, subqueries) is
    already materialized and runs inline.
    """
    bus = get_bus()
    if bus is not NULL_BUS:
        # live telemetry: each morsel completion publishes a counter event
        # carrying the enclosing sql.execute span id, captured here on the
        # coordinator thread (worker threads have no span stack), so
        # subscribers see per-morsel progress parented on the right query
        enclosing = get_tracer().current()
        enclosing_id = getattr(enclosing, "span_id", None)
        inner_work = work

        def work(chunk, _inner=inner_work, _sid=enclosing_id, _bus=bus):
            piece = _inner(chunk)
            _bus.publish_counter(MORSEL_EVENT, 1, span_id=_sid)
            return piece

    morsels = source.morsels()
    if threads > 1 and morsels is not None and len(morsels) > 1:
        pool = _shared_pool(threads)
        stream = _ordered_map(
            lambda i: work(source.read(i)), morsels, pool, window=2 * threads
        )
    else:
        stream = (work(chunk) for chunk in source.chunks())
    for piece in stream:
        if stats is not None:
            stats.morsels_executed += 1
        yield piece


def _execute_over_source(
    stmt: ast.SelectStatement, source, threads: int, stats: ScanStats | None
) -> Frame:
    needs_group = bool(stmt.group_by) or any(
        ast.contains_aggregate(item.expr) for item in stmt.items
    )
    schema = source.schema
    if needs_group:
        agg_calls = _collect_aggregates(stmt)
        group_exprs = list(stmt.group_by)
        pieces = _piece_stream(
            source,
            lambda chunk: _grouped_partial(stmt, chunk, agg_calls, group_exprs),
            threads,
            stats,
        )
        result = _merge_grouped(stmt, pieces, agg_calls, group_exprs, schema)
    else:
        pieces = _piece_stream(
            source, lambda chunk: _plain_piece(stmt, chunk), threads, stats
        )
        topk_key = _streaming_topk_key(stmt)
        if topk_key is not None:
            result = _fold_topk(stmt, pieces, topk_key, schema)
        else:
            result = _gather_plain(stmt, pieces, schema)
    if stmt.distinct:
        result = result.drop_duplicates()
    return _order_and_limit(stmt, result)


def _filter_chunk(stmt: ast.SelectStatement, chunk: Frame) -> Frame:
    if stmt.where is not None:
        mask = evaluate(stmt.where, chunk).astype(bool)
        chunk = chunk.filter(mask)
    return chunk


# ----------------------------------------------------------------------
# plain (non-grouped) path
# ----------------------------------------------------------------------
def _streaming_topk_key(stmt: ast.SelectStatement) -> str | None:
    """Column name usable for streaming top-k, or None if ineligible.

    Eligible shape: single ORDER BY key that is a bare column also present
    in the projection (directly or via alias), a LIMIT, and no DISTINCT.
    Then only limit+offset rows ever need to be held in memory.
    """
    if stmt.limit is None or stmt.distinct or len(stmt.order_by) != 1:
        return None
    key = stmt.order_by[0].expr
    if not isinstance(key, ast.Column):
        return None
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            return key.name
        name = item.alias or expr_name(item.expr)
        if isinstance(item.expr, ast.Column) and item.expr.name == key.name:
            return name
    return None


def _plain_piece(stmt: ast.SelectStatement, chunk: Frame) -> tuple[Frame | None, int]:
    """Per-morsel work of the non-grouped path: WHERE + projection."""
    chunk = _filter_chunk(stmt, chunk)
    if chunk.num_rows == 0:
        return None, 0
    return _densify(_project(stmt, chunk)), chunk.num_rows


def _gather_plain(stmt: ast.SelectStatement, pieces, schema) -> Frame:
    out: list[Frame] = []
    gathered = 0
    want = None
    if stmt.limit is not None and not stmt.order_by and not stmt.distinct:
        want = stmt.limit + (stmt.offset or 0)
    for piece, nrows in pieces:
        if piece is None:
            continue
        out.append(piece)
        gathered += nrows
        if want is not None and gathered >= want:
            break
    if not out:
        return _empty_projection(stmt, schema)
    return concat(out)


def _fold_topk(stmt: ast.SelectStatement, pieces, key: str, schema) -> Frame:
    """ORDER BY <col> LIMIT k with O(k) memory: fold morsels through a
    running top-k buffer instead of materializing the whole filtered set."""
    k = stmt.limit + (stmt.offset or 0)
    ascending = stmt.order_by[0].ascending
    running: Frame | None = None
    for piece, _nrows in pieces:
        if piece is None:
            continue
        merged = piece if running is None else concat([running, piece])
        if merged.num_rows > k:
            # keep order stability: sort, then truncate
            merged = merged.sort_values(key, ascending=ascending)[:k]
        running = merged
    return running if running is not None else _empty_projection(stmt, schema)


def _is_mmap_backed(arr: np.ndarray) -> bool:
    base = arr
    while base is not None:
        if isinstance(base, np.memmap):
            return True
        base = getattr(base, "base", None)
    return False


def _densify(frame: Frame) -> Frame:
    """Copy memory-mapped columns so downstream results own their data
    (no file handles pinned past the scan); owned arrays pass through."""
    out: dict[str, np.ndarray] = {}
    changed = False
    for n in frame.columns:
        col = np.asarray(frame.column(n))
        if _is_mmap_backed(col):
            col = np.array(col)
            changed = True
        out[n] = col
    return Frame(out) if changed else frame


def _project(stmt: ast.SelectStatement, chunk: Frame) -> Frame:
    out: dict[str, np.ndarray] = {}
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            for n in chunk.columns:
                out[n] = chunk.column(n)
            continue
        name = item.alias or expr_name(item.expr)
        out[name] = evaluate(item.expr, chunk)
    return Frame(out)


def _empty_projection(
    stmt: ast.SelectStatement, schema: dict[str, np.dtype] | None = None
) -> Frame:
    """Zero-row result frame with *schema-stable* column dtypes.

    Each SELECT item is evaluated over a zero-row probe frame typed from
    the source schema (aggregate calls substituted by typed probe columns:
    COUNT is int64, every other aggregate float64), so an empty result has
    the same dtypes a non-empty one would — which keeps cached zero-row
    results byte-identical across execution modes.  Items the probe cannot
    type (e.g. referencing columns absent from the schema) fall back to
    empty float64.
    """
    agg_names: dict[ast.FuncCall, str] = {}
    for item in stmt.items:
        for node in ast.walk(item.expr):
            if isinstance(node, ast.FuncCall) and node.is_aggregate:
                agg_names.setdefault(node, f"__probe{len(agg_names)}")
    probe_cols: dict[str, np.ndarray] = {
        n: np.empty(0, dtype=np.dtype(dt)) for n, dt in (schema or {}).items()
    }
    for call, name in agg_names.items():
        dt = np.int64 if call.name.upper() == "COUNT" else np.float64
        probe_cols[name] = np.empty(0, dtype=dt)
    probe = Frame(probe_cols)
    cols: dict[str, np.ndarray] = {}
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            for n, dt in (schema or {}).items():
                cols[n] = np.empty(0, dtype=np.dtype(dt))
            continue
        name = item.alias or expr_name(item.expr)
        try:
            arr = np.asarray(evaluate(_substitute(item.expr, agg_names), probe))
            cols[name] = np.empty(0, dtype=arr.dtype) if arr.ndim == 0 else arr[:0]
        except Exception:
            cols[name] = np.empty(0)
    return Frame(cols)


# ----------------------------------------------------------------------
# grouped / aggregate path
# ----------------------------------------------------------------------
def _pykey(value):
    """Python-native key element (matches what ``ndarray.tolist`` yields)."""
    return value.item() if isinstance(value, np.generic) else value


def _local_codes_slow(key_arrays: list[np.ndarray]) -> tuple[list[tuple], np.ndarray]:
    """Dict-loop fallback for key columns ``np.unique`` cannot factorize."""
    n = len(key_arrays[0]) if key_arrays else 0
    index: dict[tuple, int] = {}
    keys: list[tuple] = []
    codes = np.empty(n, dtype=np.int64)
    for i, key in enumerate(zip(*[a.tolist() for a in key_arrays])):
        idx = index.get(key)
        if idx is None:
            idx = len(keys)
            index[key] = idx
            keys.append(key)
        codes[i] = idx
    return keys, codes


def _local_codes(key_arrays: list[np.ndarray]) -> tuple[list[tuple], np.ndarray]:
    """Chunk-local dense group coding, vectorized.

    Factorizes each key column with ``np.unique``, combines the per-column
    codes into one int64 word, and ranks combined codes by *first
    appearance* so local code assignment matches the order a sequential
    row-by-row registry would produce (NaN keys stay distinct per row,
    like dict keys).  One Python-level step per *distinct* key, not per
    row.
    """
    try:
        inverses: list[np.ndarray] = []
        capacity = 1
        for arr in key_arrays:
            uniq, inv = np.unique(arr, return_inverse=True, equal_nan=False)
            inverses.append(inv.astype(np.int64))
            capacity *= max(len(uniq), 1)
            if capacity > 2**62:
                return _local_codes_slow(key_arrays)
        combined = inverses[0]
        for arr, inv in zip(key_arrays[1:], inverses[1:]):
            combined = combined * (int(inv.max(initial=-1)) + 1 or 1) + inv
        uniq, first_idx, inverse = np.unique(
            combined, return_index=True, return_inverse=True
        )
    except (TypeError, ValueError):
        return _local_codes_slow(key_arrays)
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq), dtype=np.int64)
    codes = rank[inverse]
    keys = [
        tuple(_pykey(a[int(first_idx[j])]) for a in key_arrays) for j in order
    ]
    return keys, codes


class _GroupRegistry:
    """Maps group-key tuples to stable dense indices across row groups."""

    def __init__(self) -> None:
        self.index: dict[tuple, int] = {}
        self.keys: list[tuple] = []

    def codes_for_keys(self, local_keys: Iterable[tuple]) -> np.ndarray:
        """Register chunk-local keys; returns the local→global remap."""
        mapping = np.empty(len(local_keys), dtype=np.int64)
        for i, key in enumerate(local_keys):
            idx = self.index.get(key)
            if idx is None:
                idx = len(self.keys)
                self.index[key] = idx
                self.keys.append(key)
            mapping[i] = idx
        return mapping

    def codes_for(self, key_arrays: list[np.ndarray]) -> np.ndarray:
        local_keys, local_codes = _local_codes(key_arrays)
        mapping = self.codes_for_keys(local_keys)
        return mapping[local_codes]

    @property
    def n_groups(self) -> int:
        return len(self.keys)


def _collect_aggregates(stmt: ast.SelectStatement) -> list[ast.FuncCall]:
    """Distinct aggregate calls across SELECT items, HAVING and ORDER BY."""
    seen: dict[ast.FuncCall, None] = {}
    exprs = [item.expr for item in stmt.items]
    if stmt.having is not None:
        exprs.append(stmt.having)
    exprs.extend(o.expr for o in stmt.order_by)
    for e in exprs:
        for node in ast.walk(e):
            if isinstance(node, ast.FuncCall) and node.is_aggregate:
                if node.distinct and node.name != "COUNT":
                    raise UnsupportedSQLError(
                        "DISTINCT aggregates are only supported for COUNT"
                    )
                seen.setdefault(node)
    return list(seen)


def _substitute(expr: ast.Expr, mapping: dict[ast.FuncCall, str]) -> ast.Expr:
    """Rewrite aggregate calls to references of materialized agg columns."""
    if isinstance(expr, ast.FuncCall) and expr in mapping:
        return ast.Column(mapping[expr])
    if isinstance(expr, ast.Unary):
        return replace(expr, operand=_substitute(expr.operand, mapping))
    if isinstance(expr, ast.Binary):
        return replace(
            expr,
            left=_substitute(expr.left, mapping),
            right=_substitute(expr.right, mapping),
        )
    if isinstance(expr, ast.FuncCall):
        return replace(expr, args=tuple(_substitute(a, mapping) for a in expr.args))
    if isinstance(expr, ast.InList):
        return replace(
            expr,
            operand=_substitute(expr.operand, mapping),
            options=tuple(_substitute(o, mapping) for o in expr.options),
        )
    if isinstance(expr, ast.Between):
        return replace(
            expr,
            operand=_substitute(expr.operand, mapping),
            low=_substitute(expr.low, mapping),
            high=_substitute(expr.high, mapping),
        )
    return expr


def _grouped_partial(
    stmt: ast.SelectStatement,
    chunk: Frame,
    agg_calls: list[ast.FuncCall],
    group_exprs: list[ast.Expr],
) -> tuple[list[tuple], list[Accumulator]] | None:
    """Per-morsel work of the grouped path: one partial accumulator per
    aggregate, keyed by chunk-local dense codes.  Returns None for chunks
    the WHERE clause empties."""
    chunk = _filter_chunk(stmt, chunk)
    if chunk.num_rows == 0:
        return None
    if group_exprs:
        key_arrays = [np.asarray(evaluate(g, chunk)) for g in group_exprs]
        local_keys, local_codes = _local_codes(key_arrays)
    else:
        local_keys = [()]
        local_codes = np.zeros(chunk.num_rows, dtype=np.int64)
    n_local = len(local_keys)
    partials: list[Accumulator] = []
    for call in agg_calls:
        acc = make_accumulator(call.name, distinct=call.distinct)
        if call.args and not isinstance(call.args[0], ast.Star):
            values = np.asarray(evaluate(call.args[0], chunk))
        else:
            values = None
        if values is None and call.name != "COUNT":
            raise UnsupportedSQLError(f"{call.name}(*) is not valid")
        acc.update(local_codes, values, n_local)
        partials.append(acc)
    return local_keys, partials


def _merge_grouped(
    stmt: ast.SelectStatement,
    pieces,
    agg_calls: list[ast.FuncCall],
    group_exprs: list[ast.Expr],
    schema,
) -> Frame:
    """Fold per-morsel partials (consumed in row-group order) into the
    global registry + accumulators, then finalize/project/HAVING."""
    agg_names = {call: f"__agg{k}" for k, call in enumerate(agg_calls)}
    accumulators: dict[ast.FuncCall, Accumulator] = {
        call: make_accumulator(call.name, distinct=call.distinct)
        for call in agg_calls
    }
    registry = _GroupRegistry()

    saw_rows = False
    for piece in pieces:
        if piece is None:
            continue
        saw_rows = True
        local_keys, partials = piece
        mapping = registry.codes_for_keys(local_keys)
        n_groups = registry.n_groups
        for call, partial in zip(agg_calls, partials):
            accumulators[call].merge(partial, mapping, n_groups)

    n_groups = registry.n_groups
    if n_groups == 0:
        if group_exprs or saw_rows:
            return _empty_projection(stmt, schema)
        # global aggregate over an empty table still yields one row
        registry.index[()] = 0
        registry.keys.append(())
        n_groups = 1

    # per-group frame: group-key columns + materialized aggregate columns
    group_cols: dict[str, np.ndarray] = {}
    for gi, gexpr in enumerate(group_exprs):
        name = expr_name(gexpr)
        group_cols[name] = np.asarray([key[gi] for key in registry.keys])
    for call, acc in accumulators.items():
        group_cols[agg_names[call]] = acc.finalize(n_groups)
    group_frame = Frame(group_cols)

    if stmt.having is not None:
        mask = evaluate(_substitute(stmt.having, agg_names), group_frame).astype(bool)
        group_frame = group_frame.filter(mask)

    out: dict[str, np.ndarray] = {}
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            raise UnsupportedSQLError("SELECT * cannot be combined with GROUP BY")
        name = item.alias or expr_name(item.expr)
        out[name] = evaluate(_substitute(item.expr, agg_names), group_frame)
    result = Frame(out)
    # stash substituted order-by keys for _order_and_limit
    result = _attach_order_keys(stmt, agg_names, group_frame, result)
    return result


_ORDER_PREFIX = "__order"


def _attach_order_keys(stmt, agg_names, group_frame, result: Frame) -> Frame:
    extra = {}
    for k, item in enumerate(stmt.order_by):
        if ast.contains_aggregate(item.expr):
            extra[f"{_ORDER_PREFIX}{k}"] = evaluate(
                _substitute(item.expr, agg_names), group_frame
            )
    return result.assign(**extra) if extra else result


def _order_and_limit(stmt: ast.SelectStatement, result: Frame) -> Frame:
    if stmt.order_by:
        keys: list[str] = []
        orders: list[bool] = []
        helper = result
        for k, item in enumerate(stmt.order_by):
            hidden = f"{_ORDER_PREFIX}{k}"
            if hidden in helper:
                keys.append(hidden)
            else:
                name = expr_name(item.expr)
                if name not in helper:
                    # ORDER BY may reference a source column that the
                    # projection exposed under an alias
                    alias_hit = None
                    if isinstance(item.expr, ast.Column):
                        if item.expr.name in helper:
                            alias_hit = item.expr.name
                        else:
                            for sel in stmt.items:
                                if (
                                    isinstance(sel.expr, ast.Column)
                                    and sel.expr.name == item.expr.name
                                    and sel.alias
                                    and sel.alias in helper
                                ):
                                    alias_hit = sel.alias
                                    break
                    if alias_hit is None:
                        helper = helper.assign(**{hidden: evaluate(item.expr, helper)})
                        name = hidden
                    else:
                        name = alias_hit
                keys.append(name)
            orders.append(item.ascending)
        helper = helper.sort_values(keys, ascending=orders)
        result = helper.drop([c for c in helper.columns if c.startswith(_ORDER_PREFIX)]) \
            if any(c.startswith(_ORDER_PREFIX) for c in helper.columns) else helper
    elif any(c.startswith(_ORDER_PREFIX) for c in result.columns):
        result = result.drop([c for c in result.columns if c.startswith(_ORDER_PREFIX)])
    start = stmt.offset or 0
    if stmt.limit is not None:
        return result[start : start + stmt.limit]
    if start:
        return result[start:]
    return result
