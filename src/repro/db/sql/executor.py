"""Vectorized streaming executor for the SQL subset.

Execution strategy by query shape:

* plain SELECT (no grouping): stream row groups through WHERE + projection,
  with early termination when an un-ordered LIMIT is satisfied;
* grouped / aggregate SELECT: stream row groups through WHERE into
  per-aggregate accumulators keyed by a global dense group registry, then
  evaluate SELECT expressions over the per-group frame (aggregate nodes
  substituted for materialized columns) and apply HAVING;
* JOIN queries materialize both sides column-pruned, merge via the Frame
  sort-merge join, then follow one of the two paths above in-memory.

ORDER BY / LIMIT run last over the (result-sized) output.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import replace

import numpy as np

from dataclasses import dataclass as _dataclass

from repro.db.errors import UnsupportedSQLError
from repro.db.sql import ast
from repro.db.sql.aggregates import Accumulator, make_accumulator
from repro.db.sql.expressions import evaluate, expr_name
from repro.db.sql.pruning import can_skip_row_group
from repro.frame import Frame, concat
from repro.frame.join import merge
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer


@_dataclass
class ScanStats:
    """Row-group pruning accounting for one query."""

    row_groups_total: int = 0
    row_groups_skipped: int = 0

    @property
    def skip_fraction(self) -> float:
        if not self.row_groups_total:
            return 0.0
        return self.row_groups_skipped / self.row_groups_total


def execute(
    db,
    stmt: ast.SelectStatement,
    scan_stats: ScanStats | None = None,
    cache_outcome: str | None = None,
) -> Frame:
    """Run a SELECT against ``db`` (a :class:`repro.db.database.Database`).

    Traced as span ``sql.execute`` with the result size and the zone-map
    pruning outcome as attributes, correlating each supervisor step with
    the exact scan it triggered.  ``cache_outcome`` is stamped onto the
    span by the query-result cache (``"miss"`` on a full execution; hits
    never reach this function — see :mod:`repro.db.cache`).
    """
    with get_tracer().span(
        "sql.execute",
        grouped=bool(stmt.group_by)
        or any(ast.contains_aggregate(item.expr) for item in stmt.items),
        joins=len(stmt.joins),
    ) as sp:
        result = _execute_statement(db, stmt, scan_stats)
        sp.set(rows=result.num_rows)
        if cache_outcome is not None:
            sp.set(cache=cache_outcome)
        if scan_stats is not None:
            sp.set(
                row_groups_total=scan_stats.row_groups_total,
                row_groups_skipped=scan_stats.row_groups_skipped,
            )
    get_registry().counter("sql.queries").inc()
    return result


def execute_over_frame(stmt: ast.SelectStatement, frame: Frame) -> Frame:
    """Run a SELECT over one in-memory frame instead of stored tables.

    The incremental re-execution path of the query-result cache: a redo
    whose WHERE is strictly narrower than a cached parent's re-filters
    the parent's result frame through the ordinary grouped/plain pipeline
    (the statement's residual WHERE, projection, GROUP BY, ORDER BY and
    LIMIT all apply) without touching row groups on disk.
    """
    return _execute_over_chunks(stmt, iter([frame]))


def _execute_statement(
    db, stmt: ast.SelectStatement, scan_stats: ScanStats | None = None
) -> Frame:
    return _execute_over_chunks(stmt, _source_chunks(db, stmt, scan_stats))


def _execute_over_chunks(stmt: ast.SelectStatement, chunks: Iterator[Frame]) -> Frame:
    needs_group = bool(stmt.group_by) or any(
        ast.contains_aggregate(item.expr) for item in stmt.items
    )
    if needs_group:
        result = _execute_grouped(stmt, chunks)
    else:
        result = _execute_plain(stmt, chunks)
    if stmt.distinct:
        result = result.drop_duplicates()
    result = _order_and_limit(stmt, result)
    return result


# ----------------------------------------------------------------------
# source resolution
# ----------------------------------------------------------------------
def _referenced_columns(stmt: ast.SelectStatement) -> set[str] | None:
    """Bare column names the query touches; None means SELECT * (all)."""
    names: set[str] = set()
    exprs: list[ast.Expr] = [item.expr for item in stmt.items]
    if stmt.where is not None:
        exprs.append(stmt.where)
    if stmt.having is not None:
        exprs.append(stmt.having)
    exprs.extend(stmt.group_by)
    exprs.extend(o.expr for o in stmt.order_by)
    for j in stmt.joins:
        for lk, rk in j.keys:
            exprs.append(lk)
            exprs.append(rk)
    for e in exprs:
        for node in ast.walk(e):
            if isinstance(node, ast.Star):
                return None
            if isinstance(node, ast.Column):
                names.add(node.name)
    return names


def _source_chunks(
    db, stmt: ast.SelectStatement, scan_stats: ScanStats | None = None
) -> Iterator[Frame]:
    needed = _referenced_columns(stmt)
    if stmt.table.is_subquery and not stmt.joins:
        inner = execute(db, stmt.table.subquery, scan_stats)
        return iter([inner])
    if not stmt.joins:
        store = db.store(stmt.table.name)
        columns = None if needed is None else [c for c in store.columns if c in needed]
        if columns is not None and not columns:
            # pure COUNT(*)-style query: stream the cheapest column
            columns = store.columns[:1]
        return _pruned_scan(store, columns, stmt.where, scan_stats)
    return iter([_materialize_join(db, stmt, needed)])


def _pruned_scan(store, columns, where, scan_stats: ScanStats | None) -> Iterator[Frame]:
    """Scan skipping row groups whose zone maps refute the WHERE clause."""
    for i in range(store.num_row_groups):
        if scan_stats is not None:
            scan_stats.row_groups_total += 1
        if where is not None and can_skip_row_group(where, store.zone_map(i)):
            if scan_stats is not None:
                scan_stats.row_groups_skipped += 1
            continue
        yield store.read_row_group(i, columns)


def _materialize_join(db, stmt: ast.SelectStatement, needed: set[str] | None) -> Frame:
    """Column-pruned two-or-more-way equijoin through Frame merge."""
    def load(table: ast.TableRef, extra: set[str]) -> Frame:
        if table.is_subquery:
            inner = execute(db, table.subquery)
            if needed is None:
                return inner
            keep = [c for c in inner.columns if c in needed or c in extra]
            return inner.select(keep) if keep else inner
        store = db.store(table.name)
        if needed is None:
            columns = store.columns
        else:
            columns = [c for c in store.columns if c in needed or c in extra]
        return store.read_all(columns)

    left_keys = {lk.name for j in stmt.joins for lk, _ in j.keys}
    current = load(stmt.table, left_keys)
    for join in stmt.joins:
        right = load(join.table, {rk.name for _, rk in join.keys})
        renames = {rk.name: lk.name for lk, rk in join.keys if rk.name != lk.name}
        if renames:
            right = right.rename(renames)
        on = [lk.name for lk, _ in join.keys]
        current = merge(current, right, on=on, how=join.kind)
    return current


# ----------------------------------------------------------------------
# plain (non-grouped) path
# ----------------------------------------------------------------------
def _streaming_topk_key(stmt: ast.SelectStatement) -> str | None:
    """Column name usable for streaming top-k, or None if ineligible.

    Eligible shape: single ORDER BY key that is a bare column also present
    in the projection (directly or via alias), a LIMIT, and no DISTINCT.
    Then only limit+offset rows ever need to be held in memory.
    """
    if stmt.limit is None or stmt.distinct or len(stmt.order_by) != 1:
        return None
    key = stmt.order_by[0].expr
    if not isinstance(key, ast.Column):
        return None
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            return key.name
        name = item.alias or expr_name(item.expr)
        if isinstance(item.expr, ast.Column) and item.expr.name == key.name:
            return name
    return None


def _execute_plain(stmt: ast.SelectStatement, chunks: Iterator[Frame]) -> Frame:
    topk_key = _streaming_topk_key(stmt)
    if topk_key is not None:
        return _execute_streaming_topk(stmt, chunks, topk_key)
    pieces: list[Frame] = []
    gathered = 0
    want = None
    if stmt.limit is not None and not stmt.order_by and not stmt.distinct:
        want = stmt.limit + (stmt.offset or 0)
    for chunk in chunks:
        if stmt.where is not None:
            mask = evaluate(stmt.where, chunk).astype(bool)
            chunk = chunk.filter(mask)
        if chunk.num_rows == 0:
            continue
        pieces.append(_project(stmt, chunk))
        gathered += chunk.num_rows
        if want is not None and gathered >= want:
            break
    if not pieces:
        return _empty_projection(stmt)
    return concat([_densify(p) for p in pieces])


def _execute_streaming_topk(
    stmt: ast.SelectStatement, chunks: Iterator[Frame], key: str
) -> Frame:
    """ORDER BY <col> LIMIT k with O(k) memory: fold chunks through a
    running top-k buffer instead of materializing the whole filtered set."""
    k = stmt.limit + (stmt.offset or 0)
    ascending = stmt.order_by[0].ascending
    running: Frame | None = None
    for chunk in chunks:
        if stmt.where is not None:
            mask = evaluate(stmt.where, chunk).astype(bool)
            chunk = chunk.filter(mask)
        if chunk.num_rows == 0:
            continue
        projected = _densify(_project(stmt, chunk))
        merged = projected if running is None else concat([running, projected])
        if merged.num_rows > k:
            # keep order stability: sort, then truncate
            merged = merged.sort_values(key, ascending=ascending)[:k]
        running = merged
    return running if running is not None else _empty_projection(stmt)


def _densify(frame: Frame) -> Frame:
    """Copy memory-mapped columns so downstream concat owns its data."""
    return Frame({n: np.asarray(frame.column(n)) for n in frame.columns})


def _project(stmt: ast.SelectStatement, chunk: Frame) -> Frame:
    out: dict[str, np.ndarray] = {}
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            for n in chunk.columns:
                out[n] = chunk.column(n)
            continue
        name = item.alias or expr_name(item.expr)
        out[name] = evaluate(item.expr, chunk)
    return Frame(out)


def _empty_projection(stmt: ast.SelectStatement) -> Frame:
    cols: dict[str, np.ndarray] = {}
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            continue
        cols[item.alias or expr_name(item.expr)] = np.empty(0)
    return Frame(cols)


# ----------------------------------------------------------------------
# grouped / aggregate path
# ----------------------------------------------------------------------
class _GroupRegistry:
    """Maps group-key tuples to stable dense indices across row groups."""

    def __init__(self) -> None:
        self.index: dict[tuple, int] = {}
        self.keys: list[tuple] = []

    def codes_for(self, key_arrays: list[np.ndarray]) -> np.ndarray:
        n = len(key_arrays[0]) if key_arrays else 0
        codes = np.empty(n, dtype=np.int64)
        # chunk-local unique first, then one dict probe per unique key
        stacked = list(zip(*[a.tolist() for a in key_arrays]))
        for i, key in enumerate(stacked):
            idx = self.index.get(key)
            if idx is None:
                idx = len(self.keys)
                self.index[key] = idx
                self.keys.append(key)
            codes[i] = idx
        return codes

    @property
    def n_groups(self) -> int:
        return len(self.keys)


def _collect_aggregates(stmt: ast.SelectStatement) -> list[ast.FuncCall]:
    """Distinct aggregate calls across SELECT items, HAVING and ORDER BY."""
    seen: dict[ast.FuncCall, None] = {}
    exprs = [item.expr for item in stmt.items]
    if stmt.having is not None:
        exprs.append(stmt.having)
    exprs.extend(o.expr for o in stmt.order_by)
    for e in exprs:
        for node in ast.walk(e):
            if isinstance(node, ast.FuncCall) and node.is_aggregate:
                if node.distinct and node.name != "COUNT":
                    raise UnsupportedSQLError(
                        "DISTINCT aggregates are only supported for COUNT"
                    )
                seen.setdefault(node)
    return list(seen)


def _substitute(expr: ast.Expr, mapping: dict[ast.FuncCall, str]) -> ast.Expr:
    """Rewrite aggregate calls to references of materialized agg columns."""
    if isinstance(expr, ast.FuncCall) and expr in mapping:
        return ast.Column(mapping[expr])
    if isinstance(expr, ast.Unary):
        return replace(expr, operand=_substitute(expr.operand, mapping))
    if isinstance(expr, ast.Binary):
        return replace(
            expr,
            left=_substitute(expr.left, mapping),
            right=_substitute(expr.right, mapping),
        )
    if isinstance(expr, ast.FuncCall):
        return replace(expr, args=tuple(_substitute(a, mapping) for a in expr.args))
    if isinstance(expr, ast.InList):
        return replace(
            expr,
            operand=_substitute(expr.operand, mapping),
            options=tuple(_substitute(o, mapping) for o in expr.options),
        )
    if isinstance(expr, ast.Between):
        return replace(
            expr,
            operand=_substitute(expr.operand, mapping),
            low=_substitute(expr.low, mapping),
            high=_substitute(expr.high, mapping),
        )
    return expr


def _execute_grouped(stmt: ast.SelectStatement, chunks: Iterator[Frame]) -> Frame:
    agg_calls = _collect_aggregates(stmt)
    agg_names = {call: f"__agg{k}" for k, call in enumerate(agg_calls)}
    accumulators: dict[ast.FuncCall, Accumulator] = {
        call: make_accumulator(call.name, distinct=call.distinct) for call in agg_calls
    }
    registry = _GroupRegistry()
    group_exprs = list(stmt.group_by)

    saw_rows = False
    for chunk in chunks:
        if stmt.where is not None:
            mask = evaluate(stmt.where, chunk).astype(bool)
            chunk = chunk.filter(mask)
        if chunk.num_rows == 0:
            continue
        saw_rows = True
        if group_exprs:
            key_arrays = [np.asarray(evaluate(g, chunk)) for g in group_exprs]
            codes = registry.codes_for(key_arrays)
        else:
            codes = np.zeros(chunk.num_rows, dtype=np.int64)
            if registry.n_groups == 0:
                registry.index[()] = 0
                registry.keys.append(())
        n_groups = registry.n_groups
        for call, acc in accumulators.items():
            if call.args and not isinstance(call.args[0], ast.Star):
                values = np.asarray(evaluate(call.args[0], chunk))
            else:
                values = None
            if values is None and call.name != "COUNT":
                raise UnsupportedSQLError(f"{call.name}(*) is not valid")
            acc.update(codes, values, n_groups)

    n_groups = registry.n_groups
    if n_groups == 0:
        if group_exprs or saw_rows:
            return _empty_projection(stmt)
        # global aggregate over an empty table still yields one row
        registry.index[()] = 0
        registry.keys.append(())
        n_groups = 1

    # per-group frame: group-key columns + materialized aggregate columns
    group_cols: dict[str, np.ndarray] = {}
    for gi, gexpr in enumerate(group_exprs):
        name = expr_name(gexpr)
        group_cols[name] = np.asarray([key[gi] for key in registry.keys])
    for call, acc in accumulators.items():
        group_cols[agg_names[call]] = acc.finalize(n_groups)
    group_frame = Frame(group_cols)

    if stmt.having is not None:
        mask = evaluate(_substitute(stmt.having, agg_names), group_frame).astype(bool)
        group_frame = group_frame.filter(mask)

    out: dict[str, np.ndarray] = {}
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            raise UnsupportedSQLError("SELECT * cannot be combined with GROUP BY")
        name = item.alias or expr_name(item.expr)
        out[name] = evaluate(_substitute(item.expr, agg_names), group_frame)
    result = Frame(out)
    # stash substituted order-by keys for _order_and_limit
    result = _attach_order_keys(stmt, agg_names, group_frame, result)
    return result


_ORDER_PREFIX = "__order"


def _attach_order_keys(stmt, agg_names, group_frame, result: Frame) -> Frame:
    extra = {}
    for k, item in enumerate(stmt.order_by):
        if ast.contains_aggregate(item.expr):
            extra[f"{_ORDER_PREFIX}{k}"] = evaluate(
                _substitute(item.expr, agg_names), group_frame
            )
    return result.assign(**extra) if extra else result


def _order_and_limit(stmt: ast.SelectStatement, result: Frame) -> Frame:
    if stmt.order_by:
        keys: list[str] = []
        orders: list[bool] = []
        helper = result
        for k, item in enumerate(stmt.order_by):
            hidden = f"{_ORDER_PREFIX}{k}"
            if hidden in helper:
                keys.append(hidden)
            else:
                name = expr_name(item.expr)
                if name not in helper:
                    # ORDER BY may reference a source column that the
                    # projection exposed under an alias
                    alias_hit = None
                    if isinstance(item.expr, ast.Column):
                        if item.expr.name in helper:
                            alias_hit = item.expr.name
                        else:
                            for sel in stmt.items:
                                if (
                                    isinstance(sel.expr, ast.Column)
                                    and sel.expr.name == item.expr.name
                                    and sel.alias
                                    and sel.alias in helper
                                ):
                                    alias_hit = sel.alias
                                    break
                    if alias_hit is None:
                        helper = helper.assign(**{hidden: evaluate(item.expr, helper)})
                        name = hidden
                    else:
                        name = alias_hit
                keys.append(name)
            orders.append(item.ascending)
        helper = helper.sort_values(keys, ascending=orders)
        result = helper.drop([c for c in helper.columns if c.startswith(_ORDER_PREFIX)]) \
            if any(c.startswith(_ORDER_PREFIX) for c in helper.columns) else helper
    elif any(c.startswith(_ORDER_PREFIX) for c in result.columns):
        result = result.drop([c for c in result.columns if c.startswith(_ORDER_PREFIX)])
    start = stmt.offset or 0
    if stmt.limit is not None:
        return result[start : start + stmt.limit]
    if start:
        return result[start:]
    return result
