"""Vectorized expression evaluation over Frames.

Every expression evaluates to a NumPy array of the Frame's row count (or a
scalar broadcast lazily).  Scalar functions are the numeric helpers the
paper's SQL agent emits (ABS/SQRT/LOG/LOG10/POWER/ROUND/FLOOR/CEIL).
"""

from __future__ import annotations

import re

import numpy as np

from repro.db.errors import UnknownColumnError, UnsupportedSQLError
from repro.db.sql import ast
from repro.frame import Frame
from repro.frame.frame import ColumnMismatchError

_SCALAR_FUNCS = {
    "ABS": np.abs,
    "SQRT": np.sqrt,
    "LOG": np.log,
    "LN": np.log,
    "LOG10": np.log10,
    "EXP": np.exp,
    "FLOOR": np.floor,
    "CEIL": np.ceil,
    "CEILING": np.ceil,
    "ROUND": np.round,
    "SIGN": np.sign,
}

_TWO_ARG_FUNCS = {
    "POWER": np.power,
    "POW": np.power,
    "MOD": np.mod,
    "GREATEST": np.maximum,
    "LEAST": np.minimum,
}


def column_value(frame: Frame, node: ast.Column) -> np.ndarray:
    """Resolve a (possibly table-qualified) column against a frame.

    Joined frames carry ``table.column``-style disambiguated names only
    when both sides share a name; the resolver tries the qualified name
    first, then the bare name.
    """
    candidates = [node.qualified, node.name] if node.table else [node.name]
    for cand in candidates:
        if cand in frame:
            return frame.column(cand)
    raise UnknownColumnError(candidates[0], frame.columns)


def evaluate(expr: ast.Expr, frame: Frame) -> np.ndarray:
    """Evaluate ``expr`` to an array of length ``frame.num_rows``."""
    n = frame.num_rows
    if isinstance(expr, ast.Literal):
        if expr.value is None:
            return np.full(n, np.nan)
        if isinstance(expr.value, str):
            return np.full(n, expr.value, dtype=object)
        return np.full(n, expr.value)
    if isinstance(expr, ast.Column):
        try:
            return column_value(frame, expr)
        except ColumnMismatchError as exc:  # normalize error type
            raise UnknownColumnError(exc.missing, exc.known) from None
    if isinstance(expr, ast.Star):
        raise UnsupportedSQLError("* is only valid in SELECT or COUNT(*)")
    if isinstance(expr, ast.Unary):
        return _eval_unary(expr, frame)
    if isinstance(expr, ast.Binary):
        return _eval_binary(expr, frame)
    if isinstance(expr, ast.FuncCall):
        return _eval_func(expr, frame)
    if isinstance(expr, ast.InList):
        operand = evaluate(expr.operand, frame)
        result = np.zeros(n, dtype=bool)
        for opt in expr.options:
            result |= _compare_eq(operand, evaluate(opt, frame))
        return ~result if expr.negated else result
    if isinstance(expr, ast.Between):
        operand = evaluate(expr.operand, frame)
        low = evaluate(expr.low, frame)
        high = evaluate(expr.high, frame)
        result = (operand >= low) & (operand <= high)
        return ~result if expr.negated else result
    if isinstance(expr, ast.Case):
        return _eval_case(expr, frame)
    raise UnsupportedSQLError(f"cannot evaluate expression {expr!r}")


def _eval_unary(expr: ast.Unary, frame: Frame) -> np.ndarray:
    operand = evaluate(expr.operand, frame)
    if expr.op == "-":
        return -operand
    if expr.op == "NOT":
        return ~operand.astype(bool)
    if expr.op == "IS NULL":
        return np.isnan(operand.astype(np.float64)) if operand.dtype != object else np.asarray([v is None for v in operand])
    if expr.op == "IS NOT NULL":
        isnull = evaluate(ast.Unary("IS NULL", expr.operand), frame)
        return ~isnull
    raise UnsupportedSQLError(f"unknown unary operator {expr.op!r}")


def _compare_eq(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if left.dtype == object or right.dtype == object:
        return np.asarray([str(a) == str(b) for a, b in zip(left, right)])
    return left == right


def _eval_binary(expr: ast.Binary, frame: Frame) -> np.ndarray:
    op = expr.op
    if op in ("AND", "OR"):
        left = evaluate(expr.left, frame).astype(bool)
        right = evaluate(expr.right, frame).astype(bool)
        return (left & right) if op == "AND" else (left | right)
    left = evaluate(expr.left, frame)
    right = evaluate(expr.right, frame)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.true_divide(left, right)
    if op == "%":
        return np.mod(left, right)
    if op == "=":
        return _compare_eq(left, right)
    if op == "!=":
        return ~_compare_eq(left, right)
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "||":
        return np.asarray([str(a) + str(b) for a, b in zip(left, right)], dtype=object)
    if op == "LIKE":
        return _eval_like(left, right)
    raise UnsupportedSQLError(f"unknown binary operator {op!r}")


def _eval_like(values: np.ndarray, patterns: np.ndarray) -> np.ndarray:
    pattern = str(patterns[0]) if len(patterns) else ""
    regex = re.compile(
        "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$"
    )
    # re.escape escapes % and _ as themselves (no backslash for %); handle both
    regex = re.compile(
        "^"
        + re.escape(pattern).replace(re.escape("%"), ".*").replace(re.escape("_"), ".")
        + "$"
    )
    return np.asarray([bool(regex.match(str(v))) for v in values])


def _eval_func(expr: ast.FuncCall, frame: Frame) -> np.ndarray:
    if expr.is_aggregate:
        raise UnsupportedSQLError(
            f"aggregate {expr.name} not allowed here (only in SELECT/HAVING with GROUP BY)"
        )
    if expr.name in _SCALAR_FUNCS:
        if len(expr.args) != 1:
            raise UnsupportedSQLError(f"{expr.name} takes exactly one argument")
        with np.errstate(divide="ignore", invalid="ignore"):
            return _SCALAR_FUNCS[expr.name](evaluate(expr.args[0], frame))
    if expr.name in _TWO_ARG_FUNCS:
        if len(expr.args) != 2:
            raise UnsupportedSQLError(f"{expr.name} takes exactly two arguments")
        return _TWO_ARG_FUNCS[expr.name](
            evaluate(expr.args[0], frame), evaluate(expr.args[1], frame)
        )
    raise UnsupportedSQLError(f"unknown function {expr.name!r}")


def _eval_case(expr: ast.Case, frame: Frame) -> np.ndarray:
    n = frame.num_rows
    result = (
        evaluate(expr.default, frame)
        if expr.default is not None
        else np.full(n, np.nan)
    ).astype(np.float64, copy=True)
    decided = np.zeros(n, dtype=bool)
    for cond, value in expr.whens:
        mask = evaluate(cond, frame).astype(bool) & ~decided
        vals = evaluate(value, frame)
        result[mask] = vals[mask]
        decided |= mask
    return result


def expr_name(expr: ast.Expr) -> str:
    """Default output column name for an unaliased SELECT expression."""
    if isinstance(expr, ast.Column):
        return expr.name
    if isinstance(expr, ast.FuncCall):
        inner = ", ".join(expr_name(a) for a in expr.args) if expr.args else "*"
        return f"{expr.name.lower()}({inner})"
    if isinstance(expr, ast.Literal):
        return str(expr.value)
    if isinstance(expr, ast.Binary):
        return f"{expr_name(expr.left)}{expr.op}{expr_name(expr.right)}"
    if isinstance(expr, ast.Unary):
        return f"{expr.op}{expr_name(expr.operand)}"
    if isinstance(expr, ast.Star):
        return "*"
    return "expr"
