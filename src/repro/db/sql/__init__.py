"""SQL frontend: lexer, AST, recursive-descent parser, planner, executor."""

from repro.db.sql.parser import parse_sql
from repro.db.sql.ast import SelectStatement

__all__ = ["parse_sql", "SelectStatement"]
