"""Streaming aggregate accumulators.

Aggregation runs over row groups one at a time; each accumulator keeps
O(#groups) state (Welford-style moments for variance) so a GROUP BY over
an arbitrarily large table peaks at row-group memory.  MEDIAN is the one
holdout that must buffer values, documented as such.

Every accumulator is also *mergeable*: the morsel-driven parallel engine
computes one partial accumulator per row group on worker threads, then
folds partials into the global accumulator **in row-group order** via
:meth:`Accumulator.merge` with a local→global group-index remap.  Merge
is written to replay, bit for bit, the same floating-point operations the
sequential ``update`` path performs (partials are scattered into
full-width arrays so untouched groups see the identical ``+ 0.0`` the
sequential bincount adds), which is what makes parallel execution
byte-identical to sequential — the invariant the query-result cache,
chaos suite, and canonical traces all depend on.
"""

from __future__ import annotations

import numpy as np

AGGREGATE_NAMES = {"COUNT", "SUM", "AVG", "MEAN", "MIN", "MAX", "STDDEV", "STD", "VAR", "MEDIAN"}


class Accumulator:
    """Base streaming accumulator keyed by dense group index."""

    def update(self, group_idx: np.ndarray, values: np.ndarray | None, n_groups: int) -> None:
        raise NotImplementedError

    def merge(self, other: "Accumulator", mapping: np.ndarray, n_groups: int) -> None:
        """Fold a partial accumulator of the same kind into this one.

        ``other`` was built by a single ``update`` over one morsel using
        chunk-local dense group codes; ``mapping[local_idx]`` is the
        global group index.  Called in row-group order by the parallel
        merge, and required to be bitwise-equivalent to having called
        ``update`` with globally-coded indices directly.
        """
        raise NotImplementedError

    def finalize(self, n_groups: int) -> np.ndarray:
        raise NotImplementedError


def _scatter(partial: np.ndarray, mapping: np.ndarray, n_groups: int) -> np.ndarray:
    """Spread a local-group-indexed partial onto the global index space.

    Untouched groups hold exact zero, so folding the scattered array with
    ``+=`` performs the identical additions (including ``x + 0.0``) the
    sequential path's ``minlength=n_groups`` bincount performs.
    """
    out = np.zeros(n_groups, dtype=partial.dtype)
    out[mapping[: len(partial)]] = partial
    return out


class CountAcc(Accumulator):
    def __init__(self) -> None:
        self.counts = np.zeros(0, dtype=np.int64)

    def update(self, group_idx, values, n_groups):
        self.counts = _grow(self.counts, n_groups)
        if values is None:  # COUNT(*)
            self.counts += np.bincount(group_idx, minlength=n_groups)
        else:
            valid = ~_nan_mask(values)
            self.counts += np.bincount(group_idx[valid], minlength=n_groups)

    def merge(self, other, mapping, n_groups):
        self.counts = _grow(self.counts, n_groups)
        self.counts += _scatter(other.counts, mapping, n_groups)

    def finalize(self, n_groups):
        return _grow(self.counts, n_groups)


class SumAcc(Accumulator):
    def __init__(self) -> None:
        self.sums = np.zeros(0)

    def update(self, group_idx, values, n_groups):
        self.sums = _grow(self.sums, n_groups)
        self.sums += np.bincount(group_idx, weights=_clean(values), minlength=n_groups)

    def merge(self, other, mapping, n_groups):
        self.sums = _grow(self.sums, n_groups)
        self.sums += _scatter(other.sums, mapping, n_groups)

    def finalize(self, n_groups):
        return _grow(self.sums, n_groups)


class MeanAcc(Accumulator):
    def __init__(self) -> None:
        self.sums = np.zeros(0)
        self.counts = np.zeros(0, dtype=np.int64)

    def update(self, group_idx, values, n_groups):
        self.sums = _grow(self.sums, n_groups)
        self.counts = _grow(self.counts, n_groups)
        valid = ~_nan_mask(values)
        self.sums += np.bincount(group_idx[valid], weights=values[valid].astype(np.float64), minlength=n_groups)
        self.counts += np.bincount(group_idx[valid], minlength=n_groups)

    def merge(self, other, mapping, n_groups):
        self.sums = _grow(self.sums, n_groups)
        self.counts = _grow(self.counts, n_groups)
        self.sums += _scatter(other.sums, mapping, n_groups)
        self.counts += _scatter(other.counts, mapping, n_groups)

    def finalize(self, n_groups):
        sums = _grow(self.sums, n_groups)
        counts = _grow(self.counts, n_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            return sums / counts


class MinMaxAcc(Accumulator):
    def __init__(self, is_min: bool) -> None:
        self.is_min = is_min
        self.best: np.ndarray | None = None

    def update(self, group_idx, values, n_groups):
        fill = np.inf if self.is_min else -np.inf
        if self.best is None:
            self.best = np.full(n_groups, fill)
        elif len(self.best) < n_groups:
            self.best = np.concatenate([self.best, np.full(n_groups - len(self.best), fill)])
        op = np.minimum if self.is_min else np.maximum
        reducer = op.reduceat
        order = np.argsort(group_idx, kind="stable")
        gi = group_idx[order]
        vals = values[order].astype(np.float64)
        starts = np.flatnonzero(np.concatenate(([True], gi[1:] != gi[:-1])))
        per_group = reducer(vals, starts)
        self.best[gi[starts]] = op(self.best[gi[starts]], per_group)

    def merge(self, other, mapping, n_groups):
        fill = np.inf if self.is_min else -np.inf
        if self.best is None:
            self.best = np.full(n_groups, fill)
        elif len(self.best) < n_groups:
            self.best = np.concatenate([self.best, np.full(n_groups - len(self.best), fill)])
        if other.best is None:
            return
        op = np.minimum if self.is_min else np.maximum
        # every local group of a partial saw at least one row, so this is
        # exactly the sequential per-present-group fold (min/max is exact)
        target = mapping[: len(other.best)]
        self.best[target] = op(self.best[target], other.best)

    def finalize(self, n_groups):
        fill = np.inf if self.is_min else -np.inf
        best = self.best if self.best is not None else np.full(n_groups, fill)
        if len(best) < n_groups:
            best = np.concatenate([best, np.full(n_groups - len(best), fill)])
        return best


class MomentsAcc(Accumulator):
    """Chan et al. parallel-merge mean/M2 for VAR/STDDEV."""

    def __init__(self, want_std: bool) -> None:
        self.want_std = want_std
        self.n = np.zeros(0)
        self.mean = np.zeros(0)
        self.m2 = np.zeros(0)

    def update(self, group_idx, values, n_groups):
        self.n = _grow(self.n, n_groups)
        self.mean = _grow(self.mean, n_groups)
        self.m2 = _grow(self.m2, n_groups)
        vals = values.astype(np.float64)
        nb = np.bincount(group_idx, minlength=n_groups).astype(np.float64)
        sb = np.bincount(group_idx, weights=vals, minlength=n_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            mb = np.where(nb > 0, sb / np.maximum(nb, 1), 0.0)
        dev = vals - mb[group_idx]
        m2b = np.bincount(group_idx, weights=dev * dev, minlength=n_groups)
        na = self.n
        delta = mb - self.mean
        tot = na + nb
        with np.errstate(invalid="ignore", divide="ignore"):
            self.mean = np.where(tot > 0, self.mean + delta * np.where(tot > 0, nb / np.maximum(tot, 1), 0), self.mean)
            self.m2 = self.m2 + m2b + delta**2 * na * nb / np.maximum(tot, 1)
        self.n = tot

    def merge(self, other, mapping, n_groups):
        # scatter the partial's (n, mean, m2) onto the global index space
        # and replay the exact Chan combine the sequential update performs
        # (a partial built by one update from fresh state holds precisely
        # the (nb, mb, m2b) that update derived from the chunk)
        self.n = _grow(self.n, n_groups)
        self.mean = _grow(self.mean, n_groups)
        self.m2 = _grow(self.m2, n_groups)
        nb = _scatter(other.n, mapping, n_groups)
        mb = _scatter(other.mean, mapping, n_groups)
        m2b = _scatter(other.m2, mapping, n_groups)
        na = self.n
        delta = mb - self.mean
        tot = na + nb
        with np.errstate(invalid="ignore", divide="ignore"):
            self.mean = np.where(tot > 0, self.mean + delta * np.where(tot > 0, nb / np.maximum(tot, 1), 0), self.mean)
            self.m2 = self.m2 + m2b + delta**2 * na * nb / np.maximum(tot, 1)
        self.n = tot

    def finalize(self, n_groups):
        n = _grow(self.n, n_groups)
        m2 = _grow(self.m2, n_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            var = np.where(n > 1, m2 / np.maximum(n - 1, 1), 0.0)
        return np.sqrt(var) if self.want_std else var


class DistinctCountAcc(Accumulator):
    """COUNT(DISTINCT col): per-group distinct sets, any value dtype.

    Each chunk is deduplicated vectorially (factorize values, unique the
    (group, value-code) pairs) before touching the per-group sets, so
    memory and Python-level work scale with *distinct* pairs, not rows.
    """

    def __init__(self) -> None:
        self.sets: dict[int, set] = {}

    def update(self, group_idx, values, n_groups):
        if values is None:
            raise ValueError("COUNT(DISTINCT *) is not valid")
        uvals, inverse = np.unique(values, return_inverse=True)
        pair_codes = group_idx.astype(np.int64) * (len(uvals) + 1) + inverse
        unique_pairs = np.unique(pair_codes)
        groups = unique_pairs // (len(uvals) + 1)
        codes = unique_pairs % (len(uvals) + 1)
        for g, c in zip(groups.tolist(), codes.tolist()):
            self.sets.setdefault(g, set()).add(uvals[c])

    def merge(self, other, mapping, n_groups):
        # set union is order-insensitive and len() is exact, so merging
        # per-morsel distinct sets is trivially equivalent to sequential
        for local, s in other.sets.items():
            self.sets.setdefault(int(mapping[local]), set()).update(s)

    def finalize(self, n_groups):
        out = np.zeros(n_groups, dtype=np.int64)
        for g, s in self.sets.items():
            if g < n_groups:
                out[g] = len(s)
        return out


class MedianAcc(Accumulator):
    """Buffers values; exact medians require a full pass by nature."""

    def __init__(self) -> None:
        self.values: list[np.ndarray] = []
        self.groups: list[np.ndarray] = []

    def update(self, group_idx, values, n_groups):
        self.values.append(values.astype(np.float64))
        self.groups.append(group_idx)

    def merge(self, other, mapping, n_groups):
        # partials merge in row-group order, so the concatenated buffers
        # end up in the exact row order the sequential path builds; only
        # the group codes need remapping
        for vals, groups in zip(other.values, other.groups):
            self.values.append(vals)
            self.groups.append(mapping[groups])

    def finalize(self, n_groups):
        if not self.values:
            return np.full(n_groups, np.nan)
        vals = np.concatenate(self.values)
        groups = np.concatenate(self.groups)
        out = np.full(n_groups, np.nan)
        order = np.argsort(groups, kind="stable")
        gs, vs = groups[order], vals[order]
        starts = np.flatnonzero(np.concatenate(([True], gs[1:] != gs[:-1])))
        for seg, grp in zip(np.split(vs, starts[1:]), gs[starts]):
            out[grp] = float(np.median(seg))
        return out


def make_accumulator(name: str, distinct: bool = False) -> Accumulator:
    name = name.upper()
    if name == "COUNT" and distinct:
        return DistinctCountAcc()
    if distinct:
        raise ValueError(f"DISTINCT is only supported for COUNT, not {name}")
    if name == "COUNT":
        return CountAcc()
    if name == "SUM":
        return SumAcc()
    if name in ("AVG", "MEAN"):
        return MeanAcc()
    if name == "MIN":
        return MinMaxAcc(is_min=True)
    if name == "MAX":
        return MinMaxAcc(is_min=False)
    if name in ("STDDEV", "STD"):
        return MomentsAcc(want_std=True)
    if name == "VAR":
        return MomentsAcc(want_std=False)
    if name == "MEDIAN":
        return MedianAcc()
    raise ValueError(f"unknown aggregate {name!r}")


def _grow(arr: np.ndarray, n: int) -> np.ndarray:
    if len(arr) >= n:
        return arr
    pad = np.zeros(n - len(arr), dtype=arr.dtype)
    return np.concatenate([arr, pad])


def _nan_mask(values: np.ndarray) -> np.ndarray:
    if np.issubdtype(values.dtype, np.floating):
        return np.isnan(values)
    return np.zeros(len(values), dtype=bool)


def _clean(values: np.ndarray) -> np.ndarray:
    vals = values.astype(np.float64)
    return np.where(np.isnan(vals), 0.0, vals)
