"""Recursive-descent SQL parser.

Grammar (roughly)::

    statement   := select | create_table_as
    create      := CREATE TABLE ident AS select
    select      := SELECT [DISTINCT] items FROM table_ref join*
                   [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                   [ORDER BY order_list] [LIMIT n [OFFSET m]]
    join        := [INNER|LEFT] JOIN table_ref ON column = column
    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | comparison
    comparison  := additive ((=|!=|<>|<|<=|>|>=|LIKE) additive
                   | [NOT] IN (list) | [NOT] BETWEEN additive AND additive
                   | IS [NOT] NULL)?
    additive    := multiplicative ((+|-|'||') multiplicative)*
    multiplicative := unary ((*|/|%) unary)*
    unary       := - unary | primary
    primary     := NUMBER | STRING | NULL | '*' | func(args) | CASE ...
                   | ident[.ident] | ( expr )
"""

from __future__ import annotations

from repro.db.errors import SQLSyntaxError
from repro.db.sql import ast
from repro.db.sql.lexer import Token, TokType, lex


def parse_sql(sql: str) -> ast.SelectStatement | ast.CreateTableAs:
    """Parse one statement; trailing semicolon allowed."""
    return _Parser(sql).parse_statement()


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = lex(sql)
        self.i = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.i]

    def advance(self) -> Token:
        tok = self.cur
        self.i += 1
        return tok

    def accept_kw(self, *names: str) -> bool:
        if self.cur.is_kw(*names):
            self.advance()
            return True
        return False

    def expect_kw(self, name: str) -> None:
        if not self.accept_kw(name):
            self.fail(f"expected {name}, found {self.cur.value or 'end of input'}")

    def accept_punct(self, ch: str) -> bool:
        if self.cur.type is TokType.PUNCT and self.cur.value == ch:
            self.advance()
            return True
        return False

    def expect_punct(self, ch: str) -> None:
        if not self.accept_punct(ch):
            self.fail(f"expected {ch!r}, found {self.cur.value or 'end of input'}")

    def expect_ident(self) -> str:
        if self.cur.type is not TokType.IDENT:
            self.fail(f"expected identifier, found {self.cur.value or 'end of input'}")
        return self.advance().value

    def fail(self, message: str) -> None:
        raise SQLSyntaxError(message, self.sql, self.cur.pos)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.SelectStatement | ast.CreateTableAs:
        if self.accept_kw("CREATE"):
            self.expect_kw("TABLE")
            name = self.expect_ident()
            self.expect_kw("AS")
            select = self.parse_select()
            stmt: ast.SelectStatement | ast.CreateTableAs = ast.CreateTableAs(name, select)
        else:
            stmt = self.parse_select()
        self.accept_punct(";")
        if self.cur.type is not TokType.EOF:
            self.fail(f"unexpected trailing input: {self.cur.value!r}")
        return stmt

    def parse_select(self) -> ast.SelectStatement:
        self.expect_kw("SELECT")
        distinct = self.accept_kw("DISTINCT")
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        self.expect_kw("FROM")
        table = self.parse_table_ref()
        joins: list[ast.Join] = []
        while self.cur.is_kw("JOIN", "INNER", "LEFT"):
            joins.append(self.parse_join())
        where = self.parse_expr() if self.accept_kw("WHERE") else None
        group_by: tuple[ast.Expr, ...] = ()
        if self.accept_kw("GROUP"):
            self.expect_kw("BY")
            exprs = [self.parse_expr()]
            while self.accept_punct(","):
                exprs.append(self.parse_expr())
            group_by = tuple(exprs)
        having = self.parse_expr() if self.accept_kw("HAVING") else None
        order_by: tuple[ast.OrderItem, ...] = ()
        if self.accept_kw("ORDER"):
            self.expect_kw("BY")
            orders = [self.parse_order_item()]
            while self.accept_punct(","):
                orders.append(self.parse_order_item())
            order_by = tuple(orders)
        limit = offset = None
        if self.accept_kw("LIMIT"):
            limit = self.parse_int("LIMIT")
            if self.accept_kw("OFFSET"):
                offset = self.parse_int("OFFSET")
        return ast.SelectStatement(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def parse_int(self, context: str) -> int:
        if self.cur.type is not TokType.NUMBER:
            self.fail(f"{context} expects an integer")
        text = self.advance().value
        try:
            return int(text)
        except ValueError:
            self.fail(f"{context} expects an integer, got {text!r}")
            raise AssertionError  # unreachable

    def parse_select_item(self) -> ast.SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.cur.type is TokType.IDENT:
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    def parse_table_ref(self) -> ast.TableRef:
        if self.accept_punct("("):
            inner = self.parse_select()
            self.expect_punct(")")
            alias = None
            if self.accept_kw("AS"):
                alias = self.expect_ident()
            elif self.cur.type is TokType.IDENT:
                alias = self.advance().value
            return ast.TableRef(name=None, alias=alias, subquery=inner)
        name = self.expect_ident()
        alias = None
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.cur.type is TokType.IDENT:
            alias = self.advance().value
        return ast.TableRef(name, alias)

    def parse_join(self) -> ast.Join:
        kind = "inner"
        if self.accept_kw("LEFT"):
            kind = "left"
        else:
            self.accept_kw("INNER")
        self.expect_kw("JOIN")
        table = self.parse_table_ref()
        self.expect_kw("ON")
        condition = self.parse_expr()
        pairs: list[tuple[ast.Column, ast.Column]] = []

        def collect(node: ast.Expr) -> None:
            if isinstance(node, ast.Binary) and node.op == "AND":
                collect(node.left)
                collect(node.right)
                return
            if (
                isinstance(node, ast.Binary)
                and node.op == "="
                and isinstance(node.left, ast.Column)
                and isinstance(node.right, ast.Column)
            ):
                pairs.append((node.left, node.right))
                return
            self.fail("JOIN ... ON requires column = column (optionally ANDed)")

        collect(condition)
        return ast.Join(table=table, kind=kind, keys=tuple(pairs))

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_kw("DESC"):
            ascending = False
        else:
            self.accept_kw("ASC")
        return ast.OrderItem(expr, ascending)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept_kw("OR"):
            left = ast.Binary("OR", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.accept_kw("AND"):
            left = ast.Binary("AND", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.accept_kw("NOT"):
            return ast.Unary("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        if self.cur.type is TokType.OP and self.cur.value in ("=", "!=", "<>", "<", "<=", ">", ">="):
            op = self.advance().value
            if op == "<>":
                op = "!="
            return ast.Binary(op, left, self.parse_additive())
        if self.cur.is_kw("LIKE"):
            self.advance()
            return ast.Binary("LIKE", left, self.parse_additive())
        negated = False
        if self.cur.is_kw("NOT"):
            nxt = self.tokens[self.i + 1]
            if nxt.is_kw("IN", "BETWEEN"):
                self.advance()
                negated = True
        if self.accept_kw("IN"):
            self.expect_punct("(")
            options = [self.parse_expr()]
            while self.accept_punct(","):
                options.append(self.parse_expr())
            self.expect_punct(")")
            return ast.InList(left, tuple(options), negated)
        if self.accept_kw("BETWEEN"):
            low = self.parse_additive()
            self.expect_kw("AND")
            high = self.parse_additive()
            return ast.Between(left, low, high, negated)
        if self.accept_kw("IS"):
            is_not = self.accept_kw("NOT")
            self.expect_kw("NULL")
            op = "IS NOT NULL" if is_not else "IS NULL"
            return ast.Unary(op, left)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            if self.cur.type is TokType.PUNCT and self.cur.value in ("+", "-"):
                op = self.advance().value
                left = ast.Binary(op, left, self.parse_multiplicative())
            elif self.cur.type is TokType.OP and self.cur.value == "||":
                self.advance()
                left = ast.Binary("||", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.cur.type is TokType.PUNCT and self.cur.value in ("*", "/", "%"):
            op = self.advance().value
            left = ast.Binary(op, left, self.parse_unary())
        return left

    def parse_case(self) -> ast.Expr:
        self.expect_kw("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_kw("WHEN"):
            cond = self.parse_expr()
            self.expect_kw("THEN")
            whens.append((cond, self.parse_expr()))
        if not whens:
            self.fail("CASE requires at least one WHEN clause")
        default = self.parse_expr() if self.accept_kw("ELSE") else None
        self.expect_kw("END")
        return ast.Case(tuple(whens), default)

    def parse_unary(self) -> ast.Expr:
        if self.cur.type is TokType.PUNCT and self.cur.value == "-":
            self.advance()
            return ast.Unary("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        tok = self.cur
        if tok.type is TokType.NUMBER:
            self.advance()
            text = tok.value
            if "." in text or "e" in text.lower():
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if tok.type is TokType.STRING:
            self.advance()
            return ast.Literal(tok.value)
        if tok.is_kw("NULL"):
            self.advance()
            return ast.Literal(None)
        if tok.is_kw("CASE"):
            return self.parse_case()
        if tok.type is TokType.PUNCT and tok.value == "*":
            self.advance()
            return ast.Star()
        if tok.type is TokType.PUNCT and tok.value == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect_punct(")")
            return inner
        if tok.type is TokType.IDENT:
            name = self.advance().value
            # function call?
            if self.cur.type is TokType.PUNCT and self.cur.value == "(":
                self.advance()
                distinct = self.accept_kw("DISTINCT")
                args: list[ast.Expr] = []
                if not self.accept_punct(")"):
                    args.append(self.parse_expr())
                    while self.accept_punct(","):
                        args.append(self.parse_expr())
                    self.expect_punct(")")
                return ast.FuncCall(name.upper(), tuple(args), distinct)
            # qualified column?
            if self.accept_punct("."):
                col = self.expect_ident()
                return ast.Column(col, table=name)
            return ast.Column(name)
        self.fail(f"unexpected token {tok.value!r}")
        raise AssertionError  # unreachable
