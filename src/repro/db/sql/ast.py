"""SQL abstract syntax tree nodes.

Plain frozen dataclasses; the planner walks these, the executor never sees
raw SQL.  Expressions form their own small tree shared by SELECT items,
WHERE/HAVING predicates and ORDER BY keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Expr:
    """Base expression node."""


@dataclass(frozen=True)
class Literal(Expr):
    value: float | int | str | None


@dataclass(frozen=True)
class Column(Expr):
    name: str
    table: str | None = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` in SELECT or COUNT(*)."""


@dataclass(frozen=True)
class Unary(Expr):
    op: str          # '-', 'NOT'
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str          # + - * / % = != < <= > >= AND OR ||
    left: Expr
    right: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str        # upper-cased
    args: tuple[Expr, ...]
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        from repro.db.sql.aggregates import AGGREGATE_NAMES

        return self.name in AGGREGATE_NAMES


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    options: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class Case(Expr):
    whens: tuple[tuple[Expr, Expr], ...]
    default: Expr | None = None


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    name: str | None = None
    alias: str | None = None
    subquery: "SelectStatement | None" = None

    @property
    def binding(self) -> str:
        return self.alias or self.name or "subquery"

    @property
    def is_subquery(self) -> bool:
        return self.subquery is not None


@dataclass(frozen=True)
class Join:
    table: TableRef
    kind: str                  # 'inner' | 'left'
    keys: tuple[tuple[Column, Column], ...]  # (left, right) equality pairs

    @property
    def left_key(self) -> Column:
        return self.keys[0][0]

    @property
    def right_key(self) -> Column:
        return self.keys[0][1]


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement:
    items: tuple[SelectItem, ...]
    table: TableRef
    joins: tuple[Join, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


@dataclass(frozen=True)
class CreateTableAs:
    name: str
    select: SelectStatement


def walk(expr: Expr):
    """Yield every node of an expression tree (pre-order)."""
    yield expr
    if isinstance(expr, Unary):
        yield from walk(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, FuncCall):
        for a in expr.args:
            yield from walk(a)
    elif isinstance(expr, InList):
        yield from walk(expr.operand)
        for o in expr.options:
            yield from walk(o)
    elif isinstance(expr, Between):
        yield from walk(expr.operand)
        yield from walk(expr.low)
        yield from walk(expr.high)
    elif isinstance(expr, Case):
        for cond, val in expr.whens:
            yield from walk(cond)
            yield from walk(val)
        if expr.default is not None:
            yield from walk(expr.default)


def contains_aggregate(expr: Expr) -> bool:
    return any(isinstance(n, FuncCall) and n.is_aggregate for n in walk(expr))
