"""Semantic query-result cache with incremental re-execution.

The QA redo loop re-parses, re-scans and re-executes SQL that is
semantically identical — up to a renamed alias, reordered predicates, or
a typo fixed on the second attempt — on every revision, and the
evaluation harness repeats the same questions across runs and worker
processes.  This module memoizes executed result frames behind a
content-addressed key so that re-work costs a lookup instead of a scan.

**Key.**  ``blake2b(normalized-plan fingerprint + per-table states)``.
The fingerprint (:mod:`repro.db.sql.normalize`) is alias-insensitive and
predicate-order-normalized; the table state (``Database.table_state``)
combines the catalog's monotonic version with the store's content
checksums, so appending rows changes every affected key — stale results
are unreachable by construction, and byte-identical tables in *different*
databases (every harness run loads the same subset) share entries.

**Tiers** (mirroring :mod:`repro.rag.cache`):

1. in-process bounded LRU of result frames (shared by every Database in
   the process, across redo attempts and repeated questions);
2. on-disk ``.npy`` columns + JSON sidecar under ``cache_dir``, published
   atomically (write-temp-then-rename) and served memory-mapped, shared
   across harness worker processes;
3. **incremental re-execution**: when a redo's normalized plan targets
   the same table state as a recently cached statement and its WHERE is
   equal or strictly narrower (conjunct superset), the residual
   predicates re-filter the cached parent frame through the ordinary
   executor pipeline instead of re-scanning row groups from disk;
4. cold miss: full streaming execution, then publish for everyone else.

All tiers count into the process-local :data:`QUERY_STATS` (mergeable —
the harness ships deltas back from worker processes), into ``repro.obs``
metrics counters, and onto ``sql.execute`` span attributes.

**Self-healing.**  Every published column file carries a CRC32 in the
sidecar.  A read that fails verification — a torn write that published a
truncated column, a bit flipped on disk, a mangled sidecar — *quarantines*
the entry (moved under ``<cache_dir>/.quarantine/``, counted as
``db.cache.quarantine``) and falls through to recomputation, which
re-publishes a good copy.  Corruption therefore costs one extra execution,
never a wrong answer and never a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import zlib
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro import faults
from repro.db.errors import UnknownTableError
from repro.db.sql import ast
from repro.db.sql.executor import ScanStats, execute as sql_execute, execute_over_frame
from repro.db.sql.normalize import (
    NormalizedPlan,
    conjoin,
    normalize,
    referenced_column_names,
    residual_conjuncts,
)
from repro.frame import Frame
from repro.obs.logsetup import get_logger
from repro.obs.names import SQL_EXECUTE_SPAN
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.util.stats import MergeableCounters

log = get_logger("db.cache")

SIDECAR_NAME = "result.json"
QUARANTINE_DIRNAME = ".quarantine"
DEFAULT_MEMORY_ENTRIES = 128
_PARENTS_PER_SCAFFOLD = 8
_MAX_SCAFFOLDS = 256
_MAX_TRACKED_FINGERPRINTS = 4096


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
@dataclass
class QueryCacheStats(MergeableCounters):
    """Process-local counters for every query-result-cache tier."""

    memory_hits: int = 0
    disk_hits: int = 0
    incremental_hits: int = 0        # redo re-filtered a cached parent
    misses: int = 0                  # full streaming executions
    stores: int = 0
    evictions: int = 0               # in-process LRU evictions
    invalidations: int = 0           # a known plan's table state changed
    quarantined: int = 0             # corrupt disk entries moved aside

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits + self.incremental_hits

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


QUERY_STATS = QueryCacheStats()

# tier 1: key -> result Frame, LRU over insertion/use order
_MEMORY: OrderedDict[str, Frame] = OrderedDict()
_MEMORY_CAPACITY = int(os.environ.get("REPRO_QUERY_CACHE_ENTRIES", DEFAULT_MEMORY_ENTRIES))

# incremental-parent registry: "<table>@<state>" -> recent eligible parents
_PARENTS: OrderedDict[str, list["_ParentRecord"]] = OrderedDict()

# fingerprint -> last-seen table-states key (invalidation accounting)
_LAST_STATES: OrderedDict[str, str] = OrderedDict()


def stats_snapshot() -> QueryCacheStats:
    """Copy of the process-wide counters (subtract later with ``delta``)."""
    return QUERY_STATS.copy()


def set_memory_capacity(entries: int) -> None:
    """Resize the in-process result LRU (evicting down if needed)."""
    global _MEMORY_CAPACITY
    _MEMORY_CAPACITY = max(0, int(entries))
    _evict_to_capacity()


def memory_capacity() -> int:
    return _MEMORY_CAPACITY


def clear_memory_cache() -> None:
    """Drop every in-process tier (results, parents, invalidation state)."""
    _MEMORY.clear()
    _PARENTS.clear()
    _LAST_STATES.clear()


def _evict_to_capacity() -> None:
    while len(_MEMORY) > _MEMORY_CAPACITY:
        _MEMORY.popitem(last=False)
        QUERY_STATS.evictions += 1
        get_registry().counter("db.cache.eviction").inc()


def _memory_put(key: str, frame: Frame) -> None:
    _MEMORY[key] = frame
    _MEMORY.move_to_end(key)
    _evict_to_capacity()


def _memory_get(key: str) -> Frame | None:
    frame = _MEMORY.get(key)
    if frame is not None:
        _MEMORY.move_to_end(key)
    return frame


def _view(frame: Frame) -> Frame:
    """A fresh Frame over the same column arrays (callers may reshape the
    column dict; by repo convention nobody mutates arrays in place)."""
    return Frame({name: frame.column(name) for name in frame.columns})


# ----------------------------------------------------------------------
# incremental-parent registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ParentRecord:
    key: str                         # cache key of the parent result
    conjunct_keys: frozenset[str]    # normalized WHERE conjuncts applied
    columns: tuple[str, ...]         # columns available in the result
    star: bool                       # parent projected * (all table columns)


def _parent_eligible(plan: NormalizedPlan) -> bool:
    """Can this statement's result serve as an incremental parent?

    Conservative by design: single stored table, full scan order (no
    ORDER BY / LIMIT / OFFSET / DISTINCT), no grouping or aggregates, and
    a projection of bare columns (or ``*``) so every output column is a
    source column under its own name.  Anything else falls back to the
    ordinary cache tiers.
    """
    stmt = plan.statement
    if not plan.single_table:
        return False
    if stmt.limit is not None or stmt.offset or stmt.distinct:
        return False
    if stmt.group_by or stmt.having is not None or stmt.order_by:
        return False
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            continue
        if not isinstance(item.expr, ast.Column):
            return False
        if item.alias is not None and item.alias != item.expr.name:
            return False
        if ast.contains_aggregate(item.expr):
            return False
    return True


def _scaffold_state(plan: NormalizedPlan, states: tuple[str, ...]) -> str:
    return f"{plan.scaffold}|{'|'.join(states)}"


def _register_parent(
    plan: NormalizedPlan, states: tuple[str, ...], key: str, frame: Frame
) -> None:
    if not _parent_eligible(plan):
        return
    star = any(isinstance(i.expr, ast.Star) for i in plan.statement.items)
    record = _ParentRecord(
        key=key,
        conjunct_keys=plan.conjunct_keys,
        columns=tuple(frame.columns),
        star=star,
    )
    bucket = _PARENTS.setdefault(_scaffold_state(plan, states), [])
    bucket[:] = [r for r in bucket if r.key != key]
    bucket.append(record)
    del bucket[:-_PARENTS_PER_SCAFFOLD]
    _PARENTS.move_to_end(_scaffold_state(plan, states))
    while len(_PARENTS) > _MAX_SCAFFOLDS:
        _PARENTS.popitem(last=False)


def _shape_attrs(plan: NormalizedPlan) -> dict:
    """The statement-shape attributes the executor stamps on every
    ``sql.execute`` span; hit spans carry the same ones so a cached run's
    canonical span tree matches a cold run's (the ``cache`` tier itself
    is excluded from canonicalization, like timing)."""
    stmt = plan.statement
    return {
        "grouped": bool(stmt.group_by)
        or any(ast.contains_aggregate(item.expr) for item in stmt.items),
        "joins": len(stmt.joins),
    }


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------
class _CorruptEntry(ValueError):
    """A published disk entry failed verification; quarantine it."""


class QueryResultCache:
    """Tiered result store driving ``Database.query`` SELECT execution.

    The in-process tiers (LRU + parent registry) are module-global and
    shared by every instance; ``cache_dir`` adds the cross-process disk
    tier when set.
    """

    def __init__(self, cache_dir: str | Path | None = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None

    # -- orchestration -------------------------------------------------
    def execute(self, db, stmt: ast.SelectStatement, scan_stats: ScanStats | None) -> Frame:
        try:
            plan = normalize(stmt)
            states = tuple(db.table_state(t) for t in plan.tables)
        except UnknownTableError:
            # unknown table: run the ordinary path so the agent-facing
            # error (with known-table suggestions) is raised unchanged
            return sql_execute(db, stmt, scan_stats)

        states_key = "|".join(states)
        self._track_invalidation(plan.fingerprint, states_key)
        key = hashlib.blake2b(
            f"{plan.fingerprint}|{states_key}".encode(), digest_size=16
        ).hexdigest()

        frame = _memory_get(key)
        if frame is not None:
            return self._record_hit("memory", plan, frame)

        frame = self._disk_load(key)
        if frame is not None:
            _memory_put(key, frame)
            return self._record_hit("disk", plan, frame)

        frame = self._try_incremental(plan, states, key)
        if frame is not None:
            return self._record_hit("incremental", plan, frame)

        QUERY_STATS.misses += 1
        get_registry().counter("db.cache.miss").inc()
        frame = sql_execute(db, stmt, scan_stats, cache_outcome="miss")
        self._store(key, plan, states, frame)
        return frame

    def _record_hit(self, tier: str, plan: NormalizedPlan, frame: Frame) -> Frame:
        setattr(QUERY_STATS, f"{tier}_hits", getattr(QUERY_STATS, f"{tier}_hits") + 1)
        get_registry().counter(f"db.cache.hit.{tier}").inc()
        # every SELECT counts as a query regardless of how it was served,
        # so "sql.queries" stays identical between cached and cold runs
        get_registry().counter("sql.queries").inc()
        if tier != "incremental":  # incremental emits its own sql.execute span
            with get_tracer().span(SQL_EXECUTE_SPAN, cache=tier, **_shape_attrs(plan)) as sp:
                sp.set(rows=frame.num_rows)
        return _view(frame)

    def _track_invalidation(self, fingerprint: str, states_key: str) -> None:
        previous = _LAST_STATES.get(fingerprint)
        if previous is not None and previous != states_key:
            QUERY_STATS.invalidations += 1
            get_registry().counter("db.cache.invalidation").inc()
        _LAST_STATES[fingerprint] = states_key
        _LAST_STATES.move_to_end(fingerprint)
        while len(_LAST_STATES) > _MAX_TRACKED_FINGERPRINTS:
            _LAST_STATES.popitem(last=False)

    # -- incremental re-execution --------------------------------------
    def _try_incremental(
        self, plan: NormalizedPlan, states: tuple[str, ...], key: str
    ) -> Frame | None:
        if not plan.single_table:
            return None
        stmt = plan.statement
        needed = referenced_column_names(stmt)
        for record in reversed(_PARENTS.get(_scaffold_state(plan, states), [])):
            residual = residual_conjuncts(plan, record.conjunct_keys)
            if residual is None:
                continue
            if needed is None:
                if not record.star:
                    continue
            elif not needed <= set(record.columns):
                continue
            parent = _memory_get(record.key) or self._disk_load(record.key)
            if parent is None:
                continue  # evicted since it was registered
            residual_stmt = replace(stmt, where=conjoin(residual))
            with get_tracer().span(
                SQL_EXECUTE_SPAN,
                cache="incremental",
                residual_conjuncts=len(residual),
                **_shape_attrs(plan),
            ) as sp:
                result = execute_over_frame(residual_stmt, parent)
                sp.set(rows=result.num_rows)
            self._store(key, plan, states, result)
            return result
        return None

    # -- publishing ----------------------------------------------------
    def _store(
        self, key: str, plan: NormalizedPlan, states: tuple[str, ...], frame: Frame
    ) -> None:
        QUERY_STATS.stores += 1
        get_registry().counter("db.cache.store").inc()
        _memory_put(key, frame)
        self._disk_store(key, frame)
        _register_parent(plan, states, key, frame)

    # -- disk tier -----------------------------------------------------
    def _entry_dir(self, key: str) -> Path | None:
        return None if self.cache_dir is None else self.cache_dir / f"q_{key}"

    def quarantined_entries(self) -> list[Path]:
        if self.cache_dir is None:
            return []
        qdir = self.cache_dir / QUARANTINE_DIRNAME
        if not qdir.is_dir():
            return []
        return sorted(p for p in qdir.iterdir() if p.is_dir())

    def _disk_load(self, key: str) -> Frame | None:
        entry = self._entry_dir(key)
        if entry is None or not entry.is_dir():
            return None
        try:
            return self._read_entry(entry, key)
        except _CorruptEntry as exc:
            self._quarantine(entry, str(exc))
            return None
        except OSError:
            return None  # raced with another process's quarantine/clear

    def _read_entry(self, entry: Path, key: str) -> Frame:
        """Load and *verify* one published entry.

        Raises :class:`_CorruptEntry` for anything that should not be
        possible under an intact publish: unreadable/mismatched sidecar,
        a missing or CRC-failing column file, a row-count mismatch.
        """
        injector = faults.get_injector()
        try:
            meta = json.loads((entry / SIDECAR_NAME).read_text())
        except FileNotFoundError:
            raise _CorruptEntry("sidecar missing") from None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _CorruptEntry(f"sidecar unreadable: {exc}") from None
        if not isinstance(meta, dict) or meta.get("key") != key:
            raise _CorruptEntry("sidecar key mismatch")
        crcs = meta.get("crc32")
        try:
            names = list(meta["columns"])
            num_rows = int(meta["num_rows"])
        except (KeyError, TypeError, ValueError) as exc:
            raise _CorruptEntry(f"sidecar schema: {exc}") from None
        columns: dict[str, np.ndarray] = {}
        for i, name in enumerate(names):
            path = entry / f"col{i:05d}.npy"
            if crcs is not None:
                try:
                    raw = path.read_bytes()
                except FileNotFoundError:
                    raise _CorruptEntry(f"column file {path.name} missing") from None
                if injector.fire(faults.STORAGE_BIT_FLIP):
                    raw = injector.flip_bit(faults.STORAGE_BIT_FLIP, raw)
                if (zlib.crc32(raw) & 0xFFFFFFFF) != int(crcs[i]):
                    raise _CorruptEntry(f"column {name!r} failed CRC")
            try:
                arr = np.load(path, mmap_mode="r", allow_pickle=False)
            except (OSError, ValueError) as exc:
                raise _CorruptEntry(f"column {name!r} unreadable: {exc}") from None
            if len(arr) != num_rows:
                raise _CorruptEntry(
                    f"column {name!r} has {len(arr)} rows, sidecar says {num_rows}"
                )
            columns[name] = arr
        return Frame(columns)

    def _quarantine(self, entry: Path, detail: str) -> None:
        """Move a corrupt entry aside so the next execution re-publishes."""
        QUERY_STATS.quarantined += 1
        get_registry().counter("db.cache.quarantine").inc()
        span = get_tracer().current()
        if span is not None:
            attrs = span.attributes
            attrs["cache_quarantined"] = int(attrs.get("cache_quarantined", 0)) + 1
        log.warning("quarantining corrupt cache entry %s: %s", entry.name, detail)
        qdir = entry.parent / QUARANTINE_DIRNAME
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(entry, qdir / entry.name)
        except OSError:
            shutil.rmtree(entry, ignore_errors=True)

    def _disk_store(self, key: str, frame: Frame) -> None:
        """Atomic write-temp-then-rename publish (racers lose quietly)."""
        entry = self._entry_dir(key)
        if entry is None or entry.exists():
            return
        if any(frame.column(n).dtype == object for n in frame.columns):
            return  # object columns don't round-trip .npy; memory tier only
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            tmp = Path(tempfile.mkdtemp(dir=self.cache_dir, prefix=".q_tmp_"))
        except OSError:
            return  # read-only workdir degrades to in-process caching
        try:
            crcs: list[int] = []
            for i, name in enumerate(frame.columns):
                path = tmp / f"col{i:05d}.npy"
                np.save(path, np.asarray(frame.column(name)), allow_pickle=False)
                crcs.append(zlib.crc32(path.read_bytes()) & 0xFFFFFFFF)
            sidecar = {
                "key": key,
                "columns": list(frame.columns),
                "dtypes": [str(frame.column(n).dtype) for n in frame.columns],
                "num_rows": frame.num_rows,
                "crc32": crcs,
            }
            (tmp / SIDECAR_NAME).write_text(json.dumps(sidecar, indent=1))
            injector = faults.get_injector()
            if frame.columns and injector.fire(faults.STORAGE_TORN_WRITE):
                # tear the first column file *after* its CRC was recorded:
                # the publish "succeeds", and the read side must catch it
                victim = tmp / "col00000.npy"
                victim.write_bytes(
                    injector.truncate(faults.STORAGE_TORN_WRITE, victim.read_bytes())
                )
            os.rename(tmp, entry)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)

    # -- maintenance ---------------------------------------------------
    def disk_entries(self) -> list[Path]:
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return []
        return sorted(p for p in self.cache_dir.iterdir()
                      if p.is_dir() and p.name.startswith("q_"))

    def footprint_bytes(self) -> int:
        """On-disk bytes held by published result entries."""
        return sum(
            f.stat().st_size
            for entry in self.disk_entries()
            for f in entry.iterdir()
            if f.is_file()
        )

    def clear_disk(self) -> int:
        """Remove every published entry; returns how many were dropped."""
        entries = self.disk_entries()
        for entry in entries:
            shutil.rmtree(entry, ignore_errors=True)
        return len(entries)
