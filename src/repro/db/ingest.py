"""Live ensemble ingestion: append generated snapshots to a running system.

The paper's ensembles are static at load time; :class:`StreamingIngester`
makes them *live*.  Each :meth:`ingest_step` deterministically extends the
ensemble with one more timestep (:func:`repro.sim.ensemble.append_snapshot`
— byte-identical to having generated the step up front) and appends the
new halo/galaxy rows to a live analysis database through the WAL commit
protocol (:mod:`repro.db.wal`), so queries racing ingestion only ever see
a committed snapshot and a killed ingester recovers exactly.

This is the *only* component that arms the simulated-death fault points
(:func:`repro.faults.arm_ingest_kills`): under a chaos profile the
ingester can die mid-WAL-append, mid-segment, or between metadata and
catalog publish — :meth:`ingest_step` raises
:class:`repro.db.errors.IngestKilled` at the exact point a SIGKILL would
have struck, and a retry after :meth:`recover` completes the append.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import faults
from repro.db.database import Database
from repro.db.errors import IngestKilled
from repro.frame import Frame, concat
from repro.obs import names as obs_names
from repro.obs.logsetup import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.sim.cosmology import DEFAULT_COSMOLOGY
from repro.sim.ensemble import Ensemble, append_snapshot
from repro.util.timing import WallClock

log = get_logger("db.ingest")

DEFAULT_TABLES = ("halos", "galaxies")


@dataclass
class IngestReport:
    """Accounting for one committed snapshot append."""

    step: int
    ensemble_version: int
    rows: dict[str, int] = field(default_factory=dict)
    table_versions: dict[str, int] = field(default_factory=dict)
    kills: int = 0          # simulated deaths absorbed before the commit landed
    recoveries: int = 0     # WAL recovery passes run between retries
    wall_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "ensemble_version": self.ensemble_version,
            "rows": dict(self.rows),
            "table_versions": dict(self.table_versions),
            "kills": self.kills,
            "recoveries": self.recoveries,
            "wall_s": self.wall_s,
        }


class StreamingIngester:
    """Single live writer for one ensemble + its live analysis database.

    ``arm_faults=True`` lets the active chaos profile kill the ingester at
    the WAL protocol's fault points (the query path never arms them);
    ``max_attempts`` bounds the kill/recover/retry loop of
    :meth:`ingest_step_resilient`.
    """

    def __init__(
        self,
        ensemble_root: str | Path,
        db: Database | None = None,
        db_path: str | Path | None = None,
        tables: tuple[str, ...] = DEFAULT_TABLES,
        arm_faults: bool = False,
        clock=None,
    ):
        self.clock = clock or WallClock()
        self.ensemble = Ensemble(ensemble_root)
        if db is None:
            db = Database(
                Path(db_path) if db_path is not None else self.ensemble.root / "live.db",
                result_cache=False,
            )
        self.db = db
        self.tables = tuple(tables)
        self.arm_faults = arm_faults
        self.last_report: IngestReport | None = None

    # ------------------------------------------------------------------
    def recover(self) -> dict:
        """Settle any interrupted commit (safe to call any time)."""
        report = self.db.recover()
        self.ensemble.reload()
        return report

    def bootstrap(self) -> dict[str, int]:
        """Load every already-generated snapshot into empty live tables.

        Uses the same one-combined-frame-per-step append layout as
        :meth:`ingest_step`, so a database bootstrapped from an extended
        ensemble and one that ingested the extension live hold
        byte-identical row groups (equal content signatures).
        """
        rows: dict[str, int] = {}
        self.db.recover()
        for kind in self.tables:
            if self.db.has_table(kind):
                continue
            for i, step in enumerate(self.ensemble.timesteps):
                frame = concat(
                    [
                        self._annotated(run, int(step), kind)
                        for run in range(self.ensemble.n_runs)
                    ]
                )
                if i == 0:
                    self.db.create_table(kind, frame)
                else:
                    self.db.append(kind, frame)
                rows[kind] = rows.get(kind, 0) + frame.num_rows
        return rows

    # ------------------------------------------------------------------
    def next_step(self, spacing: int = 25) -> int:
        """The next timestep to generate (bounded by the cosmology grid)."""
        last = int(self.ensemble.timesteps[-1])
        step = last + spacing
        final = DEFAULT_COSMOLOGY.final_step
        if step > final:
            raise ValueError(
                f"ensemble grid exhausted: next step {step} would pass the "
                f"final step {final} (last committed step is {last})"
            )
        return step

    def ingest_step(self, step: int | None = None) -> IngestReport:
        """Extend the ensemble by one snapshot and append its rows.

        One attempt: under an armed chaos profile this can raise
        :class:`IngestKilled` at any protocol stage, leaving disk state
        for :meth:`recover` to settle.  Use
        :meth:`ingest_step_resilient` for the kill/recover/retry loop.
        """
        step = int(step) if step is not None else self.next_step()
        started = self.clock.now()
        registry = get_registry()
        with get_tracer().span(obs_names.INGEST_STEP_SPAN) as span:
            span.set(step=step)
            if self.arm_faults:
                with faults.arm_ingest_kills():
                    report = self._ingest_once(step)
            else:
                report = self._ingest_once(step)
            report.wall_s = self.clock.now() - started
            span.set(
                rows=int(sum(report.rows.values())),
                ensemble_version=report.ensemble_version,
            )
            registry.counter(obs_names.INGEST_STEPS).inc()
            registry.counter(obs_names.INGEST_ROWS).inc(sum(report.rows.values()))
        self.last_report = report
        return report

    def _ingest_once(self, step: int) -> IngestReport:
        if step not in self.ensemble.reload().timesteps:
            append_snapshot(self.ensemble.root, step)
            self.ensemble.reload()
        report = IngestReport(step=step, ensemble_version=self.ensemble.version)
        for kind in self.tables:
            # one combined frame per table: the step's rows for all runs
            # land in a single WAL-protected append, so the commit is
            # atomic per table and a retry can skip tables that made it
            frame = concat(
                [
                    self._annotated(run, step, kind)
                    for run in range(self.ensemble.n_runs)
                ]
            )
            if not self._step_ingested(kind, step):
                # (a killed attempt whose commit recovery already finished
                # lands here as already-ingested and is simply skipped)
                if not self.db.has_table(kind):
                    self.db.create_table(kind, frame)
                else:
                    self.db.append(kind, frame)
            report.rows[kind] = frame.num_rows
            report.table_versions[kind] = self.db.table_version(kind)
        return report

    def _step_ingested(self, kind: str, step: int) -> bool:
        """Whether a prior (killed) attempt already committed this step.

        Steps are appended in increasing order, so the table's maximum
        committed ``step`` lives in its last committed row group; the
        zone map answers without touching row bytes.
        """
        if not self.db.has_table(kind):
            return False
        store = self.db.store(kind)
        last = store.num_row_groups - 1
        if last < 0:
            return False
        bounds = store.zone_map(last).get("step")
        if bounds is None:
            column = store.read_row_group(last, ["step"]).column("step")
            return bool(len(column)) and int(np.max(column)) >= step
        return bounds[1] >= step

    def ingest_step_resilient(
        self, step: int | None = None, max_attempts: int = 64
    ) -> IngestReport:
        """Kill/recover/retry until the snapshot commit lands.

        This is the restart loop a supervised ingester process would run:
        every simulated death is followed by a WAL recovery pass (exactly
        what a fresh process would do on open), then the append retries.
        Appends are idempotent under retry — recovery either finished the
        interrupted commit (the retry skips it) or discarded it cleanly.
        """
        step = int(step) if step is not None else self.next_step()
        kills = recoveries = 0
        registry = get_registry()
        for _ in range(max_attempts):
            try:
                report = self.ingest_step(step)
            except IngestKilled as exc:
                kills += 1
                registry.counter(obs_names.INGEST_KILLS).inc()
                log.info("ingester killed (%s); recovering and retrying", exc.stage)
                self.recover()
                recoveries += 1
                continue
            report.kills = kills
            report.recoveries = recoveries
            self.last_report = report
            return report
        raise IngestKilled(
            "retry-budget", f"step {step} did not commit within {max_attempts} attempts"
        )

    # ------------------------------------------------------------------
    def _annotated(self, run: int, step: int, kind: str) -> Frame:
        """One (run, step) catalog with the loader's run/step annotations."""
        frame = self.ensemble.read(run, step, kind)
        columns = {name: frame.column(name) for name in frame.columns}
        columns["run"] = np.full(frame.num_rows, run, dtype=np.int64)
        columns["step"] = np.full(frame.num_rows, step, dtype=np.int64)
        return Frame(columns)

    def stats(self) -> dict:
        """Snapshot/WAL accounting for ``/stats`` and the CLI."""
        doc = {
            "schema": 1,
            "ensemble_version": self.ensemble.version,
            "timesteps": list(self.ensemble.timesteps),
            "tables": {},
            "last_report": self.last_report.as_dict() if self.last_report else None,
        }
        for kind in self.tables:
            if self.db.has_table(kind):
                doc["tables"][kind] = {
                    "version": self.db.table_version(kind),
                    "rows": self.db.store(kind).num_rows,
                }
        return doc
