"""Embedded on-disk columnar SQL engine (DuckDB substitute).

The paper funnels all selected data into a DuckDB database so that
"data operations [run] on disk rather than in memory".  This package
provides the same contract with no external dependency:

* column-oriented on-disk storage in row-group segments (``.npy`` files),
* a SQL subset (SELECT / WHERE / GROUP BY / HAVING / ORDER BY / LIMIT /
  JOIN / expression arithmetic / aggregate functions) with a hand-written
  lexer, recursive-descent parser, logical planner and a vectorized
  NumPy executor,
* streaming execution: filters and aggregations consume one row group at
  a time, so peak memory is bounded by the row-group size rather than
  the table size,
* precise storage accounting for the paper's provenance-overhead metrics.

Errors carry the known column/table names so the agents' quality-assurance
loop can repair near-miss identifiers, the paper's dominant failure mode.
"""

from repro.db.cache import QueryCacheStats, QueryResultCache
from repro.db.database import CatalogSnapshot, Database
from repro.db.errors import (
    DBError,
    IngestKilled,
    SQLSyntaxError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.db.ingest import IngestReport, StreamingIngester
from repro.db.wal import WriteAheadLog

__all__ = [
    "CatalogSnapshot",
    "Database",
    "DBError",
    "IngestKilled",
    "IngestReport",
    "QueryCacheStats",
    "QueryResultCache",
    "SQLSyntaxError",
    "StreamingIngester",
    "UnknownColumnError",
    "UnknownTableError",
    "WriteAheadLog",
]
