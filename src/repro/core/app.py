"""The InferA assistant façade.

Wires the full two-stage workflow over a HACC-style ensemble:

1. *Planning* — the planning agent interprets the question (chain of
   thought + structured intent), proposes a step-by-step plan, and loops
   on human feedback until approval.
2. *Analysis* — the supervisor executes the approved plan through the
   specialized agents with sandboxed execution, QA revision loops, and
   full provenance tracking.

Each query gets its own provenance session directory and its own on-disk
analysis database; ``QueryReport`` carries every number the paper's
evaluation tables are computed from.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.agents import (
    AgentContext,
    DataLoadingAgent,
    PlanningAgent,
    Supervisor,
)
from repro.agents.planner import FeedbackProvider, PlanningResult
from repro.agents.supervisor import RunReport
from repro.agents.tools import default_toolset
from repro.db import Database
from repro.faults import FaultInjector, FaultProfile, use_faults
from repro.frame import Frame
from repro.graph.checkpoint import DurableCheckpointer
from repro.llm import HashedEmbedder, MockLLM
from repro.llm.base import MeteredModel
from repro.obs.cost import CostLedger, cost_attribution, use_ledger
from repro.obs.metrics import get_registry
from repro.obs.names import COST_LEDGER_SPAN, SESSION_SPAN
from repro.obs.tracer import Tracer, current_context, use_tracer
from repro.resilience import BudgetExceeded
from repro.provenance import ProvenanceTracker
from repro.rag import ColumnRetriever, RetrievalArtifactCache
from repro.sandbox import (
    InProcessClient,
    SandboxClient,
    SandboxExecutor,
    SandboxFleet,
    resolve_sandbox_workers,
)
from repro.sim.ensemble import Ensemble
from repro.util.timing import SimulatedClock, WallClock
from repro.sim.schema import (
    COLUMN_DESCRIPTIONS,
    FILE_STRUCTURE_DESCRIPTIONS,
    IMPORTANT_COLUMNS,
)
from repro.core.config import InferAConfig


@dataclass
class QueryReport:
    """Everything one query produced."""

    run: RunReport
    plan: PlanningResult
    session_dir: Path
    db_bytes: int
    # the session's execution trace as serialized span dicts (also written
    # to the provenance trail as a kind="trace" JSONL artifact)
    trace_spans: list[dict] = field(default_factory=list)
    # the session's cost ledger (CostLedger.as_dict()): per-(session,
    # agent, node, attempt, level) token/USD spend plus derived totals
    cost: dict = field(default_factory=dict)

    # convenience passthroughs -----------------------------------------
    @property
    def completed(self) -> bool:
        return self.run.completed

    @property
    def tokens(self) -> int:
        return self.run.tokens

    @property
    def storage_bytes(self) -> int:
        return self.run.storage_bytes

    @property
    def time_s(self) -> float:
        return self.run.time_s

    @property
    def figures(self) -> list[str]:
        return self.run.figures

    @property
    def tables(self) -> dict[str, Frame]:
        return self.run.tables

    @property
    def analysis_steps(self) -> int:
        return self.run.analysis_steps

    @property
    def cost_usd(self) -> float:
        return float(self.cost.get("totals", {}).get("cost_usd", 0.0))


class InferA:
    """A smart assistant for cosmological ensemble data."""

    def __init__(
        self,
        ensemble: Ensemble,
        workdir: str | Path,
        config: InferAConfig | None = None,
        llm=None,
        clock: WallClock | SimulatedClock | None = None,
        retriever: ColumnRetriever | None = None,
        sandbox=None,
    ):
        self.ensemble = ensemble
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.config = config or InferAConfig()
        self._llm_factory = llm
        # the single clock every timed component of a query shares
        # (tracer spans, provenance timestamps, supervisor wall time)
        self.clock = clock or WallClock()
        self._query_count = 0
        self._count_lock = threading.Lock()
        # process-wide read-only warm state may be injected by a host that
        # shares it across many apps (the serving layer builds the
        # retriever and sandbox once at warm-up and hands them to every
        # per-request app); when absent they are built lazily as before
        self._shared_sandbox = sandbox
        # the metadata dictionaries come straight from the ensemble manifest
        # when present (new datasets plug in by shipping their own)
        manifest = ensemble.manifest
        self.column_descriptions = manifest.get("column_descriptions", COLUMN_DESCRIPTIONS)
        self.structure = manifest.get("structure", FILE_STRUCTURE_DESCRIPTIONS)
        cache_dir = self.config.retrieval_cache_dir or self.workdir / ".retrieval_cache"
        self._retrieval_cache = RetrievalArtifactCache(cache_dir)
        self._retriever: ColumnRetriever | None = retriever
        # warm sandbox fleet (config.sandbox_workers / REPRO_SANDBOX_WORKERS):
        # built lazily on the first query and shared by every query of this
        # app, like the retriever
        self._fleet: SandboxFleet | None = None
        # chaos engineering: one injector per app so every query of a run
        # draws from the same deterministic per-fault-point schedule.  An
        # explicit profile wins; otherwise REPRO_FAULT_PROFILE (resolved
        # here, never in library code, so unit tests stay fault-free).
        profile = self.config.fault_profile
        if profile is None:
            profile = FaultProfile.from_env(seed=self.config.seed)
        self.fault_injector = FaultInjector(profile)

    # ------------------------------------------------------------------
    def _build_context(
        self, session_id: str, tracer: Tracer, query_index: int | None = None
    ) -> tuple[AgentContext, Database]:
        cfg = self.config
        if query_index is None:
            query_index = self._query_count
        base_llm = self._llm_factory or MockLLM(
            seed=cfg.seed + query_index,
            error_model=cfg.error_model,
            latency_per_call_s=cfg.llm_latency_s,
        )
        if callable(self._llm_factory):
            base_llm = self._llm_factory(cfg.seed + query_index)
        # the corpus is fixed for the ensemble, so the retriever (and its
        # embedding matrix, shared on disk across processes) is built once
        # per app and reused by every query
        if self._retriever is None:
            self._retriever = ColumnRetriever(
                self.column_descriptions,
                self.structure,
                important=IMPORTANT_COLUMNS,
                embedder=HashedEmbedder(cfg.embedder_dim),
                cache=self._retrieval_cache,
            )
        retriever = self._retriever
        provenance = ProvenanceTracker(self.workdir, session_id, clock=self.clock)
        query_cache_dir = cfg.query_cache_dir or self.workdir / ".query_cache"
        db = Database(
            self.workdir / session_id / "analysis.db",
            cache_dir=query_cache_dir,
            num_threads=cfg.sql_threads,
        )
        provenance.register_external(db.path)
        fleet_workers = resolve_sandbox_workers(cfg.sandbox_workers)
        if self._shared_sandbox is not None:
            # a host-provided warm client (serving layer): connections,
            # breaker state, and health history shared across requests
            sandbox = self._shared_sandbox
        elif fleet_workers:
            # pooled warm workers with least-loaded routing and tiered
            # degradation; routing never changes what an execution
            # computes, so answers match the single-worker paths below
            sandbox = self._sandbox_fleet(fleet_workers)
        elif cfg.sandbox_url:
            # remote gateway behind the resilience ladder: bounded retries,
            # circuit breaker, and graceful degradation onto an in-process
            # executor with identical semantics when the gateway stays down
            sandbox = SandboxClient(
                cfg.sandbox_url,
                clock=self.clock,
                seed=cfg.seed,
                fallback=InProcessClient(SandboxExecutor(tools=default_toolset())),
            )
        else:
            sandbox = InProcessClient(SandboxExecutor(tools=default_toolset()))
        context = AgentContext(
            llm=MeteredModel(base_llm),
            retriever=retriever,
            db=db,
            sandbox=sandbox,
            provenance=provenance,
            limited_context=cfg.limited_context,
            tracer=tracer,
        )
        return context, db

    # ------------------------------------------------------------------
    def _sandbox_fleet(self, workers: int) -> SandboxFleet:
        """Build the app's fleet once (under the query-count lock since
        concurrent first queries may race here)."""
        with self._count_lock:
            if self._fleet is None:
                self._fleet = SandboxFleet.spawn_local(
                    workers,
                    mode=self.config.sandbox_spawn or "thread",
                    fallback=InProcessClient(
                        SandboxExecutor(tools=default_toolset())
                    ),
                    clock=self.clock,
                    seed=self.config.seed,
                    stats_path=self.workdir / "sandbox_fleet.json",
                )
                self._fleet.warm()
            return self._fleet

    def close(self) -> None:
        """Release owned background resources (fleet workers)."""
        if self._fleet is not None:
            self._fleet.close()
            self._fleet = None

    # ------------------------------------------------------------------
    def run_query(
        self,
        question: str,
        feedback: FeedbackProvider | None = None,
        session_id: str | None = None,
        plan_transform=None,
    ) -> QueryReport:
        """Run one natural-language query end to end.

        ``plan_transform`` (steps -> steps) rewrites the approved plan
        before execution; used by the §4.4.1 architecture baselines to
        force e.g. a static linear workflow through the same machinery.
        """
        with self._count_lock:
            self._query_count += 1
            query_index = self._query_count
        session_id = session_id or f"query_{query_index:03d}_{_slug(question)}"
        # the session tracer parents itself under whatever trace is already
        # active (e.g. the evaluation harness's suite trace) so multi-process
        # runs merge into one coherent tree
        tracer = Tracer(clock=self.clock, context=current_context())
        context, db = self._build_context(session_id, tracer, query_index)
        context.provenance.record_query(question)

        # every session is metered: LLM spend lands in a per-session
        # ledger attributed by (session, agent, node, attempt, level),
        # with the optional hard token budget enforced at agent chats
        ledger = CostLedger(token_budget=self.config.token_budget)
        plan_result: PlanningResult | None = None
        with use_faults(self.fault_injector), use_tracer(tracer), use_ledger(
            ledger
        ), cost_attribution(session=session_id), tracer.span(
            SESSION_SPAN, session_id=session_id
        ):
            try:
                planner = PlanningAgent(context)
                with tracer.span("plan.generate") as plan_span, cost_attribution(
                    node="plan"
                ):
                    plan_result = planner.plan(question, feedback=feedback)
                    plan_span.set(steps=len(plan_result.steps))
                if plan_transform is not None:
                    transformed = plan_transform([dict(s) for s in plan_result.steps])
                    plan_result.steps = [dict(s, index=i) for i, s in enumerate(transformed)]

                loader = DataLoadingAgent(context, self.ensemble)
                checkpointer = None
                if self.config.use_checkpointer and self.config.durable_checkpoints:
                    checkpointer = DurableCheckpointer(
                        self.workdir / session_id / "checkpoints"
                    )
                supervisor = Supervisor(
                    context,
                    loader,
                    max_revisions=self.config.max_revisions,
                    qa_mode=self.config.qa_mode,
                    enable_documentation=self.config.enable_documentation,
                    supervisor_history=self.config.supervisor_history,
                    use_checkpointer=self.config.use_checkpointer,
                    parallel_viz=self.config.parallel_viz,
                    checkpointer=checkpointer,
                )
                self._last_supervisor = supervisor
                self._last_context = context
                run = supervisor.execute(
                    question,
                    plan_result.steps,
                    plan_result.semantic_level,
                    plan_result.intent,
                    thread_id=session_id,
                )
            except BudgetExceeded as exc:
                # budget blown during planning, before the supervisor's own
                # handler could take over: classify and end the session
                get_registry().counter("cost.budget_exceeded").inc()
                if plan_result is None:
                    plan_result = PlanningResult(
                        intent={}, steps=[], semantic_level=0,
                        reasoning="", rounds=0,
                    )
                run = RunReport(
                    question=question,
                    completed=False,
                    failed_at_step=None,
                    steps=[],
                    plan_size=len(plan_result.steps),
                    analysis_steps=0,
                    tokens=context.total_tokens,
                    storage_bytes=context.provenance.storage_bytes(),
                    time_s=context.simulated_latency_s,
                    llm_latency_s=context.simulated_latency_s,
                    redo_iterations=0,
                    load_report=None,
                    tables={},
                    figures=[],
                    semantic_level=0,
                    intent=plan_result.intent,
                    failure=exc.classification,
                )
            # telemetry-only rollup span (canonical-tree excluded): the
            # session's spend travels with its trace
            with tracer.span(COST_LEDGER_SPAN) as cost_span:
                cost_span.set(
                    calls=ledger.total_calls(),
                    total_tokens=ledger.total_tokens(),
                    cost_usd=ledger.total_cost_usd(),
                    budget_tokens=self.config.token_budget,
                )
        spans = tracer.span_dicts()
        context.provenance.record_trace(spans)
        return QueryReport(
            run=run,
            plan=plan_result,
            session_dir=context.provenance.root,
            db_bytes=db.nbytes(),
            trace_spans=spans,
            cost=ledger.as_dict(),
        )


def _slug(text: str, max_len: int = 24) -> str:
    slug = re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_")
    return slug[:max_len]
