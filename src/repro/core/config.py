"""InferA configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults import FaultProfile
from repro.llm.errors import ErrorModel


@dataclass
class InferAConfig:
    """All knobs of the assistant in one place.

    Defaults reproduce the paper's evaluation protocol: five revision
    attempts, 1-100 QA scoring thresholded at 50, limited per-agent
    context with a short supervisor history, documentation agent on, and
    the calibrated generation-error model.
    """

    seed: int = 0
    max_revisions: int = 5
    qa_mode: str = "score"               # 'score' | 'binary' (the §4.2.4 ablation)
    qa_threshold: int = 50
    limited_context: bool = True         # per-agent context isolation (§4.2.5)
    supervisor_history: int | None = 6   # messages of history the supervisor sees
    enable_documentation: bool = True
    use_checkpointer: bool = False       # stateful branching support (§4.2.1)
    parallel_viz: bool = False           # parallel viz execution (§5 future work)
    error_model: ErrorModel = field(default_factory=ErrorModel)
    llm_latency_s: float = 1.2           # simulated per-invocation latency
    embedder_dim: int = 384
    row_group_size: int = 65536
    # where the shared retrieval-artifact cache (corpus embedding matrix,
    # see repro.rag.cache) lives; None -> "<workdir>/.retrieval_cache".
    # The evaluation harness points every run at one shared directory so
    # worker processes mmap a single matrix instead of re-embedding.
    retrieval_cache_dir: str | None = None
    # on-disk tier of the semantic query-result cache (repro.db.cache);
    # None -> "<workdir>/.query_cache".  The harness points every run and
    # worker process at one shared directory so a result executed once is
    # mmap-served everywhere else.
    query_cache_dir: str | None = None
    # morsel-driven SQL engine threads (repro.db.sql.executor); None
    # defers to the REPRO_SQL_THREADS environment variable, then 1, and
    # 0 means one thread per core.  Parallel execution is byte-identical
    # to sequential, so this only changes throughput, never answers
    sql_threads: int | None = None
    # when set, generated code executes on a remote sandbox gateway (the
    # paper's ASGI-server deployment) instead of in-process
    sandbox_url: str | None = None
    # warm sandbox fleet (repro.sandbox.fleet); None defers to the
    # REPRO_SANDBOX_WORKERS environment variable, then disabled.  0 means
    # one worker per core.  Routing only ever picks *where* an execution
    # runs, so fleet answers stay byte-identical to single-worker runs
    sandbox_workers: int | None = None
    # how fleet workers materialize: "thread" (in-process servers, cheap
    # to spawn — tests/benchmarks) or "process" (separate interpreters,
    # the production isolation boundary); None -> "thread"
    sandbox_spawn: str | None = None
    # deterministic infrastructure fault injection (repro.faults); None
    # defers to the REPRO_FAULT_PROFILE environment variable, which in
    # turn defaults to off.  Injected faults are absorbed by the
    # resilience layer, so answers stay byte-identical to a fault-free run
    fault_profile: FaultProfile | None = None
    # persist checkpoints under "<workdir>/<session>/checkpoints" so a
    # restarted process can resume/branch; only active with use_checkpointer
    durable_checkpoints: bool = True
    # hard per-session token budget enforced by the cost ledger at the
    # agent boundary (None = unbounded): crossing it raises a classified
    # BudgetExceeded that ends the session like a resilience failure,
    # putting a ceiling on QA-redo token growth (§4.5)
    token_budget: int | None = None
