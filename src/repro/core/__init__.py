"""InferA public API.

>>> from repro.core import InferA, InferAConfig
>>> assistant = InferA(ensemble, workdir="analysis")
>>> report = assistant.run_query(
...     "Can you find me the top 20 largest friends-of-friends halos "
...     "from timestep 498 in simulation 0?"
... )
>>> report.completed
True
"""

from repro.core.config import InferAConfig
from repro.core.app import InferA, QueryReport
from repro.core.session import Session, SessionManager

__all__ = ["InferA", "InferAConfig", "QueryReport", "Session", "SessionManager"]
