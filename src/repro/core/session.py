"""Stateful sessions with checkpoint branching (§4.2.1).

A :class:`Session` runs queries with the checkpointer enabled, exposes
the checkpoint history of each run, and can branch a new analysis thread
from any checkpoint — rerunning only the steps after the branch point,
the paper's "explore different analytical paths [without] rerunning
entire workflows".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.app import InferA, QueryReport
from repro.core.config import InferAConfig
from repro.graph.checkpoint import Checkpoint
from repro.sim.ensemble import Ensemble


@dataclass
class Session:
    """One stateful analysis thread."""

    app: InferA
    thread_id: str
    reports: list[QueryReport] = field(default_factory=list)

    def run(self, question: str, feedback=None) -> QueryReport:
        report = self.app.run_query(question, feedback=feedback, session_id=self.thread_id)
        self.reports.append(report)
        return report

    def checkpoints(self) -> list[Checkpoint]:
        supervisor = getattr(self.app, "_last_supervisor", None)
        if supervisor is None or supervisor.checkpointer is None:
            return []
        return supervisor.checkpointer.history(self.thread_id)

    def branch_from(self, checkpoint_id: str, new_thread_id: str):
        """Branch at a checkpoint and re-run the remaining steps.

        Returns the graph RunResult of the branched thread; earlier steps
        are *not* re-executed — their state is restored from the snapshot.
        """
        supervisor = getattr(self.app, "_last_supervisor", None)
        if supervisor is None or supervisor.checkpointer is None:
            raise RuntimeError("session has no checkpointed run to branch from")
        graph = supervisor._last_graph
        return graph.resume_from_branch(checkpoint_id, new_thread_id)


class SessionManager:
    """Creates sessions over one ensemble + workspace."""

    def __init__(self, ensemble: Ensemble, workdir: str | Path, config: InferAConfig | None = None):
        config = config or InferAConfig()
        if not config.use_checkpointer:
            config = InferAConfig(**{**config.__dict__, "use_checkpointer": True})
        self.app = InferA(ensemble, workdir, config)
        self._count = 0

    def new_session(self, name: str | None = None) -> Session:
        self._count += 1
        return Session(self.app, thread_id=name or f"session_{self._count:03d}")
