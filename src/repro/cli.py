"""Command-line interface.

``python -m repro <command>``:

* ``generate`` — write a synthetic HACC-style ensemble
* ``info``     — describe an ensemble
* ``query``    — run one natural-language question end to end
* ``eval``     — run the 20-question evaluation suite and print Table 2
* ``sql``      — run SQL directly against an analysis database
* ``trace``    — inspect a recorded execution trace (summary/tree/export)
* ``cache``    — report or clear the shared query-result/retrieval caches
* ``cost``     — report a run's LLM spend (per agent, §4.5 growth curve)
* ``profile``  — run one query under the sampling profiler (flamegraph)
* ``slo``      — check a trace/workdir against declarative SLO budgets
* ``serve``    — long-running multi-tenant HTTP server over one warm process
* ``sandbox``  — inspect the warm sandbox fleet (topology, per-worker state)
* ``ingest``   — append generated snapshots to a live ensemble through the
  crash-safe WAL commit protocol (locally or via a running server)

All commands are plain functions over the library API; the CLI adds no
behaviour of its own, so scripted use and the Python API stay equivalent.

Command *results* (tables, query answers, figures) go to stdout; *status*
goes through the ``repro.*`` logger hierarchy on stderr, tuned with
``--verbose``/``-q``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core import InferA, InferAConfig
from repro.db import Database
from repro.eval import EvaluationHarness, HarnessConfig, format_table2
from repro.llm.errors import NO_ERRORS, ErrorModel
from repro.obs.cost import CostLedger
from repro.obs.events import EventBus, LiveRenderer, use_bus
from repro.obs.export import (
    read_spans,
    render_tree,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.logsetup import get_logger, setup_logging
from repro.sim import EnsembleSpec, generate_ensemble
from repro.sim.ensemble import Ensemble

log = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="InferA reproduction: a smart assistant for cosmological ensemble data",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more status output on stderr (repeatable)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="less status output on stderr (repeatable)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic ensemble")
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--runs", type=int, default=4)
    gen.add_argument("--particles", type=int, default=4000)
    gen.add_argument("--steps", default="0,124,249,374,498,624",
                     help="comma-separated timesteps in [0, 624]")
    gen.add_argument("--seed", type=int, default=20250)
    gen.add_argument("--no-particles", action="store_true",
                     help="skip writing particle files (catalogs only)")

    info = sub.add_parser("info", help="describe an ensemble")
    info.add_argument("--ensemble", required=True)

    query = sub.add_parser("query", help="answer one natural-language question")
    query.add_argument("question")
    query.add_argument("--ensemble", required=True)
    query.add_argument("--workdir", default="infera_workspace")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--no-errors", action="store_true",
                       help="disable the calibrated LLM-error injection")
    query.add_argument("--parallel-viz", action="store_true")
    query.add_argument("--qa-mode", choices=("score", "binary"), default="score")
    query.add_argument("--live", action="store_true",
                       help="stream span completions to stderr as they happen")
    query.add_argument("--token-budget", type=int, default=None,
                       help="hard per-session token ceiling; exceeding it ends "
                            "the session as a classified 'budget-exceeded' failure")

    evaluate = sub.add_parser("eval", help="run the 20-question evaluation (Table 2)")
    evaluate.add_argument("--ensemble", required=True)
    evaluate.add_argument("--workdir", default="infera_eval")
    evaluate.add_argument("--runs-per-question", type=int, default=3)
    evaluate.add_argument("--seed", type=int, default=7)
    evaluate.add_argument("--workers", type=int, default=1,
                          help="worker processes for the run grid "
                               "(1 = sequential, 0 = one per CPU core)")
    evaluate.add_argument("--chaos", choices=("off", "light", "heavy"), default="off",
                          help="inject deterministic infrastructure faults at the "
                               "named intensity; the resilience layer must absorb "
                               "them (fault counters are reported after the table)")
    evaluate.add_argument("--live", action="store_true",
                          help="stream cell/session completions to stderr as they "
                               "happen (also switches the merged trace to "
                               "incremental writes)")

    sql = sub.add_parser("sql", help="run SQL against an analysis database")
    sql.add_argument("statement")
    sql.add_argument("--db", required=True)

    trace = sub.add_parser("trace", help="inspect a recorded execution trace")
    trace.add_argument("action", choices=("summary", "tree", "export"),
                       help="summary: per-phase wall time + token counters; "
                            "tree: indented span tree; export: rewrite the trace")
    trace.add_argument("path",
                       help="trace .jsonl file, or a directory containing one "
                            "(a provenance session dir or an eval workdir)")
    trace.add_argument("--chrome", action="store_true",
                       help="export in Chrome trace format (chrome://tracing / Perfetto)")
    trace.add_argument("--out", default=None, help="export output path")

    cache = sub.add_parser("cache", help="inspect or clear the shared caches")
    cache.add_argument("action", choices=("stats", "clear"),
                       help="stats: tiered hit/miss counters + on-disk footprint; "
                            "clear: drop in-process tiers and on-disk entries")
    cache.add_argument("--workdir", default="infera_workspace",
                       help="workdir whose .query_cache/.retrieval_cache to report")

    cost = sub.add_parser("cost", help="report a run's LLM spend")
    cost.add_argument("path",
                      help="eval workdir (reads its cost_ledger.json) or a "
                           "ledger .json file directly")
    cost.add_argument("--by", choices=("agent", "node", "session", "attempt", "level"),
                      default="agent",
                      help="attribution field for the breakdown table")

    profile = sub.add_parser(
        "profile", help="answer one question under the sampling profiler"
    )
    profile.add_argument("question")
    profile.add_argument("--ensemble", required=True)
    profile.add_argument("--workdir", default="infera_profile")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--no-errors", action="store_true")
    profile.add_argument("--hz", type=float, default=100.0,
                         help="sampling frequency (default 100 Hz)")
    profile.add_argument("--out", default=None,
                         help="output base path; writes <out>.collapsed and "
                              "<out>.svg (default <workdir>/profile)")

    slo = sub.add_parser("slo", help="check SLO budgets against run artifacts")
    slo.add_argument("action", choices=("check",),
                     help="check: evaluate the policy and exit 1 on violations")
    slo.add_argument("path",
                     help="trace .jsonl file or a workdir containing one "
                          "(metrics.json / cost_ledger.json beside the trace "
                          "enable the histogram and spend gates)")
    slo.add_argument("--policy", default=None,
                     help="policy JSON file (default: the built-in "
                          "machine-independent policy)")
    slo.add_argument("--bench-dir", default=None,
                     help="directory holding BENCH_*.json perf artifacts for "
                          "the bench gates (e.g. benchmarks/output)")

    chat = sub.add_parser(
        "chat", help="interactive session with plan review (the paper's intended mode)"
    )
    chat.add_argument("--ensemble", required=True)
    chat.add_argument("--workdir", default="infera_chat")
    chat.add_argument("--seed", type=int, default=0)
    chat.add_argument("--no-errors", action="store_true")

    serve = sub.add_parser(
        "serve", help="long-running multi-tenant HTTP server over one warm process"
    )
    serve.add_argument("--ensemble", required=True)
    serve.add_argument("--workdir", default="infera_serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (0 = pick a free one)")
    serve.add_argument("--app-workers", type=int, default=4,
                       help="worker threads executing queries concurrently")
    serve.add_argument("--queue-depth", type=int, default=32,
                       help="admission queue bound; beyond it requests get "
                            "a structured 429 with a retry-after hint")
    serve.add_argument("--request-timeout", type=float, default=120.0,
                       help="per-request deadline in seconds (queue wait counts)")
    serve.add_argument("--token-budget", type=int, default=None,
                       help="hard per-session token ceiling across all of a "
                            "tenant's requests")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--no-errors", action="store_true",
                       help="disable the calibrated LLM-error injection")
    serve.add_argument("--llm-latency", type=float, default=0.0,
                       help="simulated seconds per LLM call (models a hosted "
                            "API; makes requests latency- rather than "
                            "CPU-bound, which is what the worker pool overlaps)")
    serve.add_argument("--sandbox-workers", type=int, default=None,
                       help="warm sandbox fleet size shared by all sessions "
                            "(0 = one per core; default: REPRO_SANDBOX_WORKERS "
                            "or no fleet)")
    serve.add_argument("--sandbox-spawn", choices=("thread", "process"),
                       default=None,
                       help="how fleet workers materialize: in-process "
                            "servers (thread) or separate interpreters "
                            "(process); default thread")

    ingest = sub.add_parser(
        "ingest",
        help="append generated snapshots to a live ensemble (WAL-protected)",
    )
    ingest.add_argument("--ensemble", required=True,
                        help="ensemble root to extend (must carry a generator "
                             "block, i.e. written by this repro version)")
    ingest.add_argument("--db", default=None,
                        help="live analysis database path "
                             "(default <ensemble>/live.db)")
    ingest.add_argument("--step", type=int, default=None,
                        help="timestep to ingest (default: last + --spacing)")
    ingest.add_argument("--count", type=int, default=1,
                        help="how many consecutive snapshots to ingest")
    ingest.add_argument("--spacing", type=int, default=25,
                        help="timestep spacing when --step is not given")
    ingest.add_argument("--bootstrap", action="store_true",
                        help="first load every already-generated snapshot "
                             "into empty live tables")
    ingest.add_argument("--server", default=None,
                        help="POST to a running `repro serve` at this URL "
                             "instead of ingesting locally")
    ingest.add_argument("--chaos", choices=("off", "light", "heavy"),
                        default="off",
                        help="arm the simulated-death fault points at the "
                             "named intensity; the WAL recovery loop must "
                             "absorb every kill (local mode only)")
    ingest.add_argument("--seed", type=int, default=0,
                        help="chaos schedule seed")

    sandbox = sub.add_parser("sandbox", help="inspect the warm sandbox fleet")
    sandbox.add_argument("action", choices=("stats",),
                         help="stats: fleet topology, per-worker load/breaker "
                              "state, lifetime route/trip/respawn counters")
    sandbox.add_argument("--workdir", default="infera_serve",
                         help="workdir whose sandbox_fleet.json snapshot to "
                              "report (written by a fleet-enabled serve/app)")

    return parser


def cmd_generate(args: argparse.Namespace) -> int:
    steps = tuple(int(s) for s in args.steps.split(","))
    spec = EnsembleSpec(
        n_runs=args.runs,
        n_particles=args.particles,
        timesteps=steps,
        seed=args.seed,
        write_particles=not args.no_particles,
    )
    ensemble = generate_ensemble(args.out, spec)
    print(ensemble.describe())
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    print(Ensemble(args.ensemble).describe())
    return 0


def _live_bus(enabled: bool, verbose: bool = False) -> EventBus | None:
    """An event bus with a stderr renderer attached, or None when off."""
    if not enabled:
        return None
    bus = EventBus()
    bus.subscribe(LiveRenderer(stream=sys.stderr, verbose=verbose))
    return bus


def cmd_query(args: argparse.Namespace) -> int:
    config = InferAConfig(
        seed=args.seed,
        error_model=NO_ERRORS if args.no_errors else ErrorModel(),
        parallel_viz=args.parallel_viz,
        qa_mode=args.qa_mode,
        token_budget=args.token_budget,
    )
    app = InferA(Ensemble(args.ensemble), args.workdir, config)
    log.info("running query against %s (seed=%d)", args.ensemble, args.seed)
    bus = _live_bus(getattr(args, "live", False), verbose=args.verbose > 0)
    try:
        if bus is not None:
            with use_bus(bus):
                report = app.run_query(args.question)
        else:
            report = app.run_query(args.question)
    finally:
        app.close()  # stop any sandbox fleet; final stats checkpoint
    log.debug("trace: %d spans recorded under %s", len(report.trace_spans), report.session_dir)
    print(f"completed: {report.completed}")
    print(f"steps: {sum(1 for s in report.run.steps if s.status == 'ok')}/{report.run.plan_size} ok")
    print(f"tokens: {report.tokens:,}  storage: {report.storage_bytes:,} bytes  "
          f"time: {report.time_s:.1f} s")
    totals = report.cost.get("totals", {})
    if totals.get("calls"):
        print(f"cost: ${report.cost_usd:.4f} over {totals['calls']} LLM calls "
              f"({totals['total_tokens']:,} tokens)")
    if report.run.failure:
        print(f"failure: {report.run.failure}")
    if report.run.load_report:
        print(f"ensemble bytes read: {report.run.load_report.bytes_selected:,} "
              f"({report.run.load_report.selectivity:.3%})")
    work = report.tables.get("work")
    if work is not None:
        print(work)
    for i, svg in enumerate(report.figures):
        path = Path(args.workdir) / f"figure_{i}.svg"
        path.write_text(svg)
        print(f"figure: {path}")
    print(f"provenance: {report.session_dir}")
    return 0 if report.completed else 1


def cmd_eval(args: argparse.Namespace) -> int:
    from repro.faults import FaultProfile

    chaos = getattr(args, "chaos", "off")
    fault_profile = (
        FaultProfile.named(chaos, seed=args.seed) if chaos != "off" else None
    )
    harness = EvaluationHarness(
        Ensemble(args.ensemble),
        args.workdir,
        HarnessConfig(
            runs_per_question=args.runs_per_question,
            seed=args.seed,
            workers=args.workers,
            fault_profile=fault_profile,
        ),
    )
    bus = _live_bus(getattr(args, "live", False), verbose=args.verbose > 0)
    if bus is not None:
        with use_bus(bus):
            result = harness.run_suite()
    else:
        result = harness.run_suite()
    print(format_table2(result.aggregator.table2_rows()))
    perf = result.perf
    if perf is not None:
        cache = perf.cache
        log.info("[perf] workers=%d runs=%d wall=%.2fs throughput=%.2f runs/s",
                 perf.workers, len(result.metrics), perf.total_wall_s, perf.runs_per_s)
        log.info("[perf] retrieval cache: %d hits (%d memory, %d disk), %d builds; "
                 "query memo %d/%d hits",
                 cache.matrix_hits, cache.memory_hits, cache.disk_hits, cache.builds,
                 cache.query_memo_hits, cache.query_memo_hits + cache.query_memo_misses)
        qc = perf.query_cache
        log.info("[perf] query cache: %d hits (%d memory, %d disk, %d incremental), "
                 "%d misses (%.1f%% hit ratio); %d invalidations",
                 qc.hits, qc.memory_hits, qc.disk_hits, qc.incremental_hits,
                 qc.misses, 100.0 * qc.hit_ratio, qc.invalidations)
        totals = (perf.cost or {}).get("totals", {})
        if totals.get("calls"):
            log.info("[cost] $%.4f over %d LLM calls (%s tokens); "
                     "details: repro cost %s",
                     totals["cost_usd"], totals["calls"],
                     f"{totals['total_tokens']:,}", args.workdir)
        if fault_profile is not None or perf.fault_counters:
            counters = perf.fault_counters
            injected = counters.get("faults.injected", 0)
            print(f"chaos[{chaos}]: {injected} faults injected")
            for name, value in counters.items():
                print(f"  {name} = {value}")
        for phase, agg in perf.span_rollups.items():
            log.debug("[trace] %-12s %4d spans %8.3f s %d errors",
                      phase, int(agg["spans"]), agg["total_s"], int(agg["errors"]))
    if result.trace_path is not None:
        log.info("merged trace: %s (%d spans)", result.trace_path, len(result.spans))
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.db import cache as query_cache
    from repro.rag import cache as rag_cache

    workdir = Path(args.workdir)
    store = query_cache.QueryResultCache(workdir / ".query_cache")
    retrieval_dir = workdir / ".retrieval_cache"
    retrieval_files = (
        sorted(retrieval_dir.glob("retrieval_*")) if retrieval_dir.is_dir() else []
    )
    retrieval_bytes = sum(f.stat().st_size for f in retrieval_files)

    if args.action == "clear":
        query_cache.clear_memory_cache()
        rag_cache.clear_memory_cache()
        dropped = store.clear_disk()
        for f in retrieval_files:
            f.unlink(missing_ok=True)
        print(f"query cache: dropped {dropped} result entries under {store.cache_dir}")
        print(f"retrieval cache: dropped {len(retrieval_files)} artifacts "
              f"({retrieval_bytes:,} bytes) under {retrieval_dir}")
        return 0

    if not store.cache_dir.is_dir() and not retrieval_dir.is_dir():
        # a fresh or foreign workdir: say so instead of a wall of zeros
        print(f"no caches under {workdir} "
              f"(neither {store.cache_dir.name} nor {retrieval_dir.name} exists yet); "
              f"run a query or the eval harness first")
        return 0

    import json as _json

    qstats = query_cache.stats_snapshot()
    print(f"query result cache ({store.cache_dir})")
    print(f"  disk: {len(store.disk_entries())} entries, {store.footprint_bytes():,} bytes")
    # entries published by an older repro version have no CRC sidecar
    # field; they still load (verified structurally on first read), but
    # say so instead of letting a missing key look like corruption
    legacy = 0
    for entry in store.disk_entries():
        try:
            meta = _json.loads((entry / query_cache.SIDECAR_NAME).read_text())
        except (OSError, ValueError):
            continue  # unreadable entries are the read path's problem
        if isinstance(meta, dict) and "crc32" not in meta:
            legacy += 1
    if legacy:
        print(f"  note: {legacy} entries written by an older repro version "
              f"(no CRC sidecar); verified structurally on first read")
    quarantined_disk = len(store.quarantined_entries())
    if quarantined_disk:
        print(f"  quarantined: {quarantined_disk} corrupt entries moved aside")
    print(f"  process counters: memory={qstats.memory_hits} disk={qstats.disk_hits} "
          f"incremental={qstats.incremental_hits} miss={qstats.misses} "
          f"(hit ratio {qstats.hit_ratio:.1%} of {qstats.requests})")
    print(f"  stores={qstats.stores} evictions={qstats.evictions} "
          f"invalidations={qstats.invalidations} quarantined={qstats.quarantined}")
    rstats = rag_cache.stats_snapshot()
    print(f"retrieval artifact cache ({retrieval_dir})")
    print(f"  disk: {len(retrieval_files)} files, {retrieval_bytes:,} bytes")
    print(f"  process counters: memory={rstats.memory_hits} disk={rstats.disk_hits} "
          f"builds={rstats.builds}")
    print(f"  query memo: {rstats.query_memo_hits}/{rstats.query_memo_hits + rstats.query_memo_misses} "
          f"hits, {rstats.query_memo_evictions} evictions "
          f"(capacity {rag_cache.query_memo_capacity()})")
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    db = Database(args.db)
    result = db.query(args.statement)
    print(result)
    stats = db.last_scan_stats
    if stats.row_groups_total:
        print(f"(scanned {stats.row_groups_total - stats.row_groups_skipped}"
              f"/{stats.row_groups_total} row groups; "
              f"skipped {stats.row_groups_skipped_zone} by zone map, "
              f"{stats.row_groups_skipped_bloom} by bloom filter; "
              f"{stats.morsels_executed} morsels on {stats.threads} thread(s))")
    return 0


class _StdinFeedback:
    """Human plan review on the terminal.

    Shows the proposed plan; an empty line (or 'y') approves, anything
    else is treated as a refinement directive for the next planning round.
    """

    def __init__(self, prompt_fn=None, echo=print):
        # resolve `input` lazily so test monkeypatching takes effect
        self._prompt = prompt_fn or (lambda text: input(text))
        self._echo = echo

    def review(self, plan_doc: dict) -> tuple[bool, str]:
        self._echo("\nproposed plan:")
        for step in plan_doc.get("steps", []):
            self._echo(f"  {step['index']}. [{step['kind']}] {step['description']}")
        answer = self._prompt("approve? [enter=yes / feedback]: ").strip()
        if answer.lower() in ("", "y", "yes"):
            return True, "approved"
        return False, answer


def cmd_chat(args: argparse.Namespace) -> int:
    config = InferAConfig(
        seed=args.seed,
        error_model=NO_ERRORS if args.no_errors else ErrorModel(),
    )
    app = InferA(Ensemble(args.ensemble), args.workdir, config)
    print("InferA interactive session. Empty question quits.")
    while True:
        try:
            question = input("\nquestion> ").strip()
        except EOFError:
            break
        if not question:
            break
        report = app.run_query(question, feedback=_StdinFeedback())
        status = "completed" if report.completed else "FAILED"
        print(f"[{status}] {report.tokens:,} tokens, "
              f"{report.storage_bytes:,} bytes provenance")
        work = report.tables.get("work")
        if work is not None:
            print(work)
        for i, svg in enumerate(report.figures):
            path = Path(args.workdir) / f"chat_figure_{i}.svg"
            path.write_text(svg)
            print(f"figure: {path}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    try:
        spans = read_spans(args.path)
    except FileNotFoundError:
        # a fresh workdir simply has no trace yet; that's a state to
        # report, not a stack trace
        print(f"no trace yet under {args.path} "
              f"(run a query or the eval harness first)")
        return 0
    if not spans:
        print(f"trace at {args.path} is empty (no spans recorded yet)")
        return 0
    if args.action == "summary":
        print(summarize(spans))
    elif args.action == "tree":
        print(render_tree(spans))
    else:  # export
        if args.chrome:
            out = Path(args.out or "trace_chrome.json")
            nbytes = write_chrome_trace(spans, out)
        else:
            out = Path(args.out or "trace_export.jsonl")
            nbytes = write_jsonl(spans, out)
        log.info("wrote %d spans (%d bytes)", len(spans), nbytes)
        print(out)
    return 0


def cmd_cost(args: argparse.Namespace) -> int:
    path = Path(args.path)
    ledger_path = path if path.is_file() else path / "cost_ledger.json"
    if not ledger_path.is_file():
        print(f"no cost ledger under {args.path} "
              f"(run the eval harness with cost metering first)")
        return 0
    import json as _json

    ledger = CostLedger.from_dict(_json.loads(ledger_path.read_text()))
    totals = ledger.as_dict()["totals"]
    budget = ledger.token_budget
    budget_note = f" (budget {budget:,} tokens)" if budget else ""
    print(f"cost ledger {ledger_path}")
    print(f"  total: ${totals['cost_usd']:.4f} over {totals['calls']} LLM calls, "
          f"{totals['total_tokens']:,} tokens "
          f"({totals['prompt_tokens']:,} prompt + "
          f"{totals['completion_tokens']:,} completion){budget_note}")
    print(f"\nby {args.by}:")
    print(f"  {args.by:<16} {'calls':>6} {'tokens':>10} {'usd':>10}")
    for name, entry in ledger.by_field(args.by).items():
        print(f"  {name:<16} {entry.calls:>6} {entry.total_tokens:>10,} "
              f"{entry.cost_usd:>10.4f}")
    curve = ledger.growth_curve()
    if curve:
        # the paper's §4.5 view: token spend per redo attempt, by tier
        print("\ntoken growth per redo attempt (by difficulty tier):")
        for level, tier in curve.items():
            steps = "  ".join(f"attempt {a}: {t:,}" for a, t in tier.items())
            print(f"  level {level}: {steps}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.names import PROFILE_CAPTURE_SPAN
    from repro.obs.profiler import SamplingProfiler, write_profile
    from repro.obs.tracer import Tracer, use_tracer

    config = InferAConfig(
        seed=args.seed,
        error_model=NO_ERRORS if args.no_errors else ErrorModel(),
    )
    app = InferA(Ensemble(args.ensemble), args.workdir, config)
    profiler = SamplingProfiler(hz=args.hz)
    # an outer tracer so the capture is a (canonical-excluded) span the
    # session trace hangs under, exactly like harness-embedded profiling
    tracer = Tracer()
    with use_tracer(tracer), tracer.span(PROFILE_CAPTURE_SPAN, hz=args.hz) as sp:
        with profiler:
            report_q = app.run_query(args.question)
        sp.set(samples=profiler.report.samples)
    prof = profiler.report
    out_base = Path(args.out) if args.out else Path(args.workdir) / "profile"
    collapsed, svg = write_profile(prof, out_base, title=f"repro: {args.question}")
    print(f"query completed: {report_q.completed}")
    print(f"profile: {prof.samples} samples at {args.hz:g} Hz "
          f"({len(prof.stacks)} unique stacks, {prof.dropped_stacks} dropped)")
    if prof.span_samples:
        ranked = sorted(prof.span_samples.items(), key=lambda kv: (-kv[1], kv[0]))
        print("time by enclosing span:")
        for name, count in ranked[:8]:
            print(f"  {name or '(outside spans)':<24} {count:>6}")
    for leaf, count in prof.top_functions(8):
        print(f"  hot: {leaf} ({count})")
    print(f"collapsed stacks: {collapsed}")
    print(f"flamegraph: {svg}")
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    from repro.obs.slo import SLOPolicy, check_workdir

    policy = SLOPolicy.from_json(args.policy) if args.policy else SLOPolicy.default()
    try:
        report = check_workdir(args.path, policy=policy, bench_dir=args.bench_dir)
    except FileNotFoundError:
        print(f"no trace yet under {args.path} "
              f"(run a query or the eval harness first)")
        return 0
    print(report.render())
    return 0 if report.ok else 1


def cmd_sandbox(args: argparse.Namespace) -> int:
    import json

    snapshot = Path(args.workdir) / "sandbox_fleet.json"
    if not snapshot.is_file():
        print(f"no sandbox fleet snapshot under {args.workdir} "
              f"({snapshot.name} not written yet); start a fleet-enabled "
              f"run first, e.g. repro serve --sandbox-workers 4")
        return 0
    try:
        doc = json.loads(snapshot.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        print(f"cannot read {snapshot}: {exc}")
        return 1
    lifetime = doc.get("lifetime", {})
    schema = doc.get("schema")
    if schema is None:
        # pre-schema snapshots (older repro versions) can miss whole
        # sections; every field below falls back instead of KeyError-ing
        print("note: snapshot written by an older repro version "
              "(no schema field); missing counters shown as defaults")
    elif schema > 2:
        print(f"note: snapshot schema {schema} is newer than this repro "
              f"version understands; unknown fields are ignored")
    print(f"sandbox fleet: {doc.get('workers', 0)} worker(s), "
          f"mode={doc.get('mode', '?')}")
    print(f"{'worker':>6} {'in_flight':>9} {'ewma_s':>10} {'breaker':>9} "
          f"{'routes':>7} {'trips':>6} {'respawns':>8}  url")
    for member in doc.get("members", []):
        print(f"{member.get('index', '?'):>6} {member.get('in_flight', 0):>9} "
              f"{member.get('ewma_s', 0.0):>10.4f} {member.get('breaker', '?'):>9} "
              f"{member.get('routes', 0):>7} {member.get('trips', 0):>6} "
              f"{member.get('respawns', 0):>8}  {member.get('url', '?')}")
    print(f"lifetime: {lifetime.get('routes', 0)} routed, "
          f"{lifetime.get('trips', 0)} trips, "
          f"{lifetime.get('respawns', 0)} respawns, "
          f"{lifetime.get('fallbacks', 0)} fallbacks")
    return 0


def _ingest_remote(args: argparse.Namespace) -> int:
    """Drive a running server's ``POST /v1/ingest`` (admission-controlled)."""
    import json
    import urllib.error
    import urllib.request

    url = args.server.rstrip("/") + "/v1/ingest"
    step = args.step
    for _ in range(max(1, args.count)):
        body = json.dumps({"step": step} if step is not None else {}).encode()
        request = urllib.request.Request(
            url, data=body, headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(request, timeout=300.0) as response:
                doc = json.loads(response.read().decode())
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            print(f"server refused ingest ({exc.code}): {detail}")
            return 1
        except (urllib.error.URLError, OSError) as exc:
            print(f"cannot reach {url}: {exc}")
            return 1
        report = doc.get("report", {})
        print(f"committed step {report.get('step')} "
              f"(ensemble v{report.get('ensemble_version')}, "
              f"{sum(report.get('rows', {}).values())} rows, "
              f"{report.get('kills', 0)} kills absorbed, "
              f"{report.get('wall_s', 0.0):.3f} s)")
        step = None if args.step is None else step + args.spacing
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    from repro import faults
    from repro.db.ingest import StreamingIngester

    if args.server:
        return _ingest_remote(args)

    chaos = args.chaos != "off"
    ingester = StreamingIngester(
        args.ensemble,
        db_path=args.db,
        arm_faults=chaos,
    )
    injector = faults.FaultInjector(faults.FaultProfile.named(args.chaos, seed=args.seed))
    with faults.use_faults(injector):
        recovery = ingester.recover()
        if recovery["replayed"] or recovery["torn_tail"] or recovery["corrupt"]:
            print(f"recovered interrupted commit: {recovery}")
        if args.bootstrap:
            rows = ingester.bootstrap()
            if rows:
                loaded = ", ".join(f"{k}={v}" for k, v in sorted(rows.items()))
                print(f"bootstrapped live tables: {loaded}")
        step = args.step
        committed = 0
        for _ in range(max(1, args.count)):
            try:
                report = ingester.ingest_step_resilient(step)
            except ValueError as exc:
                # off-grid / exhausted-grid / non-monotonic step requests
                print(f"ingest refused: {exc}")
                if not committed:
                    return 1
                break
            committed += 1
            print(f"committed step {report.step} "
                  f"(ensemble v{report.ensemble_version}, "
                  f"{sum(report.rows.values())} rows, "
                  f"{report.kills} kills absorbed, {report.wall_s:.3f} s)")
            step = None if args.step is None else report.step + args.spacing
    doc = ingester.stats()
    tables = ", ".join(
        f"{k} v{v['version']} ({v['rows']} rows)"
        for k, v in sorted(doc["tables"].items())
    )
    print(f"live database: {tables or 'no tables'}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ReproServer

    config = InferAConfig(
        seed=args.seed,
        error_model=NO_ERRORS if args.no_errors else ErrorModel(),
        token_budget=args.token_budget,
        llm_latency_s=args.llm_latency,
        sandbox_workers=args.sandbox_workers,
        sandbox_spawn=args.sandbox_spawn,
    )
    server = ReproServer(
        Ensemble(args.ensemble),
        args.workdir,
        config,
        host=args.host,
        port=args.port,
        app_workers=args.app_workers,
        queue_depth=args.queue_depth,
        request_timeout_s=args.request_timeout,
    )
    report = server.start()
    print(report.render())
    print(f"serving {args.ensemble} at {server.url} "
          f"({args.app_workers} workers, queue depth {args.queue_depth})")
    print("POST /v1/query   POST /v1/ingest   GET /healthz   GET /stats   "
          "(ctrl-c drains and exits)")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("\ndraining...", file=sys.stderr)
    manifest = server.shutdown()
    stats = server.registry.stats()
    print(f"served {stats['requests']} requests across {stats['sessions']} sessions "
          f"({stats['completed']} completed, {stats['failed']} failed)")
    print(f"sessions checkpointed: {manifest}")
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "info": cmd_info,
    "query": cmd_query,
    "eval": cmd_eval,
    "sql": cmd_sql,
    "cache": cmd_cache,
    "chat": cmd_chat,
    "trace": cmd_trace,
    "cost": cmd_cost,
    "profile": cmd_profile,
    "slo": cmd_slo,
    "serve": cmd_serve,
    "sandbox": cmd_sandbox,
    "ingest": cmd_ingest,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # pass the stream explicitly so repeated in-process invocations (tests,
    # embedding apps) follow the current sys.stderr rather than a stale one
    setup_logging(args.verbose - args.quiet, stream=sys.stderr)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # stdout consumer went away (e.g. `repro trace tree ... | head`)
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
