"""On-disk layout and reader/writer for the mini-GenericIO format.

Layout::

    offset 0   : magic b"MGIO1\\n"
    offset 6   : header length as 8-byte little-endian unsigned
    offset 14  : UTF-8 JSON header
    thereafter : column blobs, each contiguous, in header order

The JSON header carries ``num_rows``, free-form ``attrs`` (simulation
run id, timestep, sub-grid parameters, ...), and per-column entries with
``name``, ``dtype`` (NumPy dtype string), ``offset`` (absolute file
offset), ``nbytes`` and ``crc32``.  Columns are independently seekable
and CRC-verified on read.
"""

from __future__ import annotations

import json
import zlib
from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from repro.frame import Frame

GIO_MAGIC = b"MGIO1\n"
_HEADER_LEN_BYTES = 8


class GIOFormatError(RuntimeError):
    """Raised on magic/CRC/structure violations."""


def write_gio(
    path: str | Path,
    columns: Mapping[str, np.ndarray],
    attrs: Mapping[str, object] | None = None,
) -> int:
    """Write columns to ``path``; returns total bytes written.

    All columns must share one length.  dtypes are preserved exactly;
    object/string columns are stored as fixed-width UTF-32 (``<U``) blobs.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays: dict[str, np.ndarray] = {}
    num_rows: int | None = None
    for name, values in columns.items():
        arr = np.ascontiguousarray(values)
        if arr.dtype == object:
            arr = arr.astype(str)
        if arr.ndim != 1:
            raise GIOFormatError(f"column {name!r} must be 1-D")
        if num_rows is None:
            num_rows = len(arr)
        elif len(arr) != num_rows:
            raise GIOFormatError(
                f"column {name!r} has {len(arr)} rows, expected {num_rows}"
            )
        arrays[name] = arr
    if num_rows is None:
        num_rows = 0

    # two passes: first compute blob sizes so header offsets are exact
    entries = []
    blobs = []
    for name, arr in arrays.items():
        blob = arr.tobytes()
        entries.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "nbytes": len(blob),
                "crc32": zlib.crc32(blob) & 0xFFFFFFFF,
            }
        )
        blobs.append(blob)

    def header_bytes(with_offsets: bool) -> bytes:
        doc = {
            "num_rows": num_rows,
            "attrs": dict(attrs or {}),
            "columns": entries,
        }
        return json.dumps(doc, sort_keys=True).encode("utf-8") if with_offsets else b""

    # Fix-point the header size (offsets appear inside the JSON header, so
    # the header length depends on the offsets' digit counts).  After the
    # loop, pad with whitespace — legal trailing JSON whitespace — so the
    # recorded offsets are guaranteed consistent even if the loop did not
    # fully converge.
    prefix = len(GIO_MAGIC) + _HEADER_LEN_BYTES
    data_start = 0
    for _ in range(4):
        proposed = prefix + len(header_bytes(True))
        if proposed <= data_start:
            break
        data_start = proposed
        cursor = data_start
        for entry in entries:
            entry["offset"] = cursor
            cursor += entry["nbytes"]
    header = header_bytes(True)
    if len(header) > data_start - prefix:  # pragma: no cover - defensive
        raise GIOFormatError("header offset fix-point failed to converge")
    header = header + b" " * (data_start - prefix - len(header))

    with path.open("wb") as fh:
        fh.write(GIO_MAGIC)
        fh.write(len(header).to_bytes(_HEADER_LEN_BYTES, "little"))
        fh.write(header)
        for blob in blobs:
            fh.write(blob)
        total = fh.tell()
    return total


class GIOFile:
    """Read handle over a mini-GenericIO file.

    Only the header is parsed at open time; column payloads are read
    lazily and selectively, so opening a large ensemble costs kilobytes.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        with self.path.open("rb") as fh:
            magic = fh.read(len(GIO_MAGIC))
            if magic != GIO_MAGIC:
                raise GIOFormatError(f"{self.path}: bad magic {magic!r}")
            header_len = int.from_bytes(fh.read(_HEADER_LEN_BYTES), "little")
            try:
                doc = json.loads(fh.read(header_len).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise GIOFormatError(f"{self.path}: corrupt header: {exc}") from exc
        self.num_rows: int = int(doc["num_rows"])
        self.attrs: dict = dict(doc["attrs"])
        self._entries: dict[str, dict] = {e["name"]: e for e in doc["columns"]}

    @property
    def columns(self) -> list[str]:
        return list(self._entries)

    def column_nbytes(self, name: str) -> int:
        return int(self._entry(name)["nbytes"])

    def total_data_nbytes(self) -> int:
        """Bytes of column payload (the 'dataset size' used in storage ratios)."""
        return sum(int(e["nbytes"]) for e in self._entries.values())

    def _entry(self, name: str) -> dict:
        try:
            return self._entries[name]
        except KeyError:
            raise GIOFormatError(
                f"{self.path}: no column {name!r}; available: {self.columns}"
            ) from None

    def read_column(self, name: str, verify: bool = True) -> np.ndarray:
        """Read a single column, seeking directly to its blob."""
        entry = self._entry(name)
        with self.path.open("rb") as fh:
            fh.seek(entry["offset"])
            blob = fh.read(entry["nbytes"])
        if len(blob) != entry["nbytes"]:
            raise GIOFormatError(f"{self.path}: truncated column {name!r}")
        if verify and (zlib.crc32(blob) & 0xFFFFFFFF) != entry["crc32"]:
            raise GIOFormatError(f"{self.path}: CRC mismatch in column {name!r}")
        return np.frombuffer(blob, dtype=np.dtype(entry["dtype"])).copy()

    def read(self, columns: Sequence[str] | None = None, verify: bool = True) -> Frame:
        """Read the selected columns (default: all) into a Frame."""
        names = list(columns) if columns is not None else self.columns
        return Frame({n: self.read_column(n, verify=verify) for n in names})

    def bytes_for(self, columns: Sequence[str]) -> int:
        """Payload bytes a selective read of ``columns`` would touch."""
        return sum(self.column_nbytes(n) for n in columns)
