"""A GenericIO-like blocked columnar binary format.

HACC writes its data products (particles, halo catalogs, galaxy catalogs)
with GenericIO: self-describing column-oriented binary files with CRC
protection, designed so readers can fetch *individual variables* without
touching the rest of the file.  That selective-read property is exactly
what lets InferA's data-loading agent reduce terabytes to gigabytes, so we
reproduce it: the on-disk layout stores each column contiguously, the JSON
header records byte offsets, and :meth:`GIOFile.read` seeks straight to
the requested columns.
"""

from repro.gio.format import GIOFile, write_gio, GIOFormatError, GIO_MAGIC

__all__ = ["GIOFile", "write_gio", "GIOFormatError", "GIO_MAGIC"]
