"""Retries, deadlines, and a circuit breaker for infrastructure faults.

The QA redo loop (§4.1) is the paper's answer to *generation* failures;
this module is the repo's answer to *infrastructure* failures — the
sandbox gateway resetting a connection, a request hanging past its
deadline, a dependency flapping.  Three primitives, all clock-injected
(DESIGN's determinism invariant) and all observable through
:mod:`repro.obs`:

* :func:`call_with_retries` / :func:`retrying` — bounded retries with
  deterministic jittered exponential backoff.  Jitter comes from a caller
  -supplied ``numpy`` Generator (derive it with
  :func:`repro.util.rngs.derive_seed`), so two runs with the same seed
  wait the exact same schedule.
* :class:`Deadline` — a shrinking time budget shared across retries, so
  a retried operation cannot exceed its caller's overall timeout.
* :class:`CircuitBreaker` — closed → open after ``failure_threshold``
  consecutive failures; open fails fast (callers degrade to a fallback)
  until ``reset_timeout_s`` has elapsed on the injected clock; then one
  half-open probe decides between closing and re-opening.

Failures escalate into *classified* errors (:class:`RetriesExhausted`,
:class:`CircuitOpen`, :class:`DeadlineExceeded`) so callers and
provenance records see a named degradation, never a raw traceback from
deep inside a transport stack.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.obs.metrics import get_registry
from repro.util.timing import SimulatedClock, WallClock

Clock = WallClock | SimulatedClock


class ResilienceError(RuntimeError):
    """Base of every classified resilience failure."""

    classification = "resilience"


class RetriesExhausted(ResilienceError):
    """The retry budget ran out; ``last_error`` is the final cause."""

    classification = "retries-exhausted"

    def __init__(self, message: str, last_error: BaseException | None = None):
        super().__init__(message)
        self.last_error = last_error


class CircuitOpen(ResilienceError):
    """The breaker is open and the operation was rejected fast."""

    classification = "circuit-open"


class DeadlineExceeded(ResilienceError):
    """The operation's overall time budget is spent."""

    classification = "deadline-exceeded"


class BudgetExceeded(ResilienceError):
    """The session's token budget is spent (``InferAConfig.token_budget``).

    Raised at the agent boundary by the cost ledger and handled like any
    other classified resilience failure: the session ends with a
    ``budget-exceeded`` classification instead of unbounded redo growth.
    """

    classification = "budget-exceeded"


# ----------------------------------------------------------------------
# retry with deterministic jittered backoff
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter."""

    max_attempts: int = 3
    base_delay_s: float = 0.02
    max_delay_s: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.5          # +/- fraction of the nominal delay

    def delay_s(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        nominal = self.base_delay_s * self.multiplier ** max(attempt - 1, 0)
        if rng is not None and self.jitter > 0:
            nominal *= 1.0 + self.jitter * (2.0 * rng.uniform() - 1.0)
        return min(max(nominal, 0.0), self.max_delay_s)


def make_sleeper(clock: Clock | None) -> Callable[[float], None]:
    """Backoff sleep honouring the injected clock: simulated clocks
    advance instantly (bit-stable tests), wall clocks really sleep."""
    if isinstance(clock, SimulatedClock):
        return clock.advance
    return time.sleep


def call_with_retries(
    fn: Callable[[], Any],
    policy: RetryPolicy | None = None,
    retryable: tuple[type[BaseException], ...] = (ConnectionError, TimeoutError, OSError),
    rng: np.random.Generator | None = None,
    sleep: Callable[[float], None] | None = None,
    clock: Clock | None = None,
    deadline: "Deadline | None" = None,
    on_retry: Callable[[int, float, BaseException], None] | None = None,
    op: str = "op",
) -> Any:
    """Run ``fn`` under ``policy``, retrying classified-transient errors.

    Raises :class:`RetriesExhausted` (cause-chained) when the budget runs
    out, :class:`DeadlineExceeded` when ``deadline`` expires between
    attempts.  Every retry increments ``resilience.retries`` and the
    per-op counter.
    """
    policy = policy or RetryPolicy()
    sleep = sleep or make_sleeper(clock)
    last: BaseException | None = None
    for attempt in range(1, max(policy.max_attempts, 1) + 1):
        if deadline is not None and deadline.expired:
            raise DeadlineExceeded(
                f"{op}: deadline spent after {attempt - 1} attempt(s)"
            ) from last
        try:
            return fn()
        except retryable as exc:
            last = exc
            if attempt >= policy.max_attempts:
                break
            delay = policy.delay_s(attempt, rng)
            if deadline is not None:
                delay = min(delay, deadline.remaining)
            registry = get_registry()
            registry.counter("resilience.retries").inc()
            registry.counter(f"resilience.retries.{op}").inc()
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            if delay > 0:
                sleep(delay)
    raise RetriesExhausted(
        f"{op}: gave up after {policy.max_attempts} attempt(s): "
        f"{type(last).__name__}: {last}",
        last_error=last,
    ) from last


def retrying(
    policy: RetryPolicy | None = None,
    retryable: tuple[type[BaseException], ...] = (ConnectionError, TimeoutError, OSError),
    **kwargs: Any,
):
    """Decorator form of :func:`call_with_retries`."""

    def deco(fn: Callable[..., Any]) -> Callable[..., Any]:
        def wrapper(*args: Any, **kw: Any) -> Any:
            return call_with_retries(
                lambda: fn(*args, **kw),
                policy=policy,
                retryable=retryable,
                op=kwargs.get("op", fn.__name__),
                **{k: v for k, v in kwargs.items() if k != "op"},
            )

        wrapper.__name__ = fn.__name__
        wrapper.__doc__ = fn.__doc__
        return wrapper

    return deco


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
class Deadline:
    """A total time budget measured on the injected clock."""

    def __init__(self, total_s: float, clock: Clock | None = None):
        self.clock = clock or WallClock()
        self.total_s = float(total_s)
        self._t0 = self.clock.now()

    @property
    def remaining(self) -> float:
        return max(0.0, self.total_s - (self.clock.now() - self._t0))

    @property
    def expired(self) -> bool:
        return self.remaining <= 0.0

    def clamp(self, timeout_s: float, floor_s: float = 0.001) -> float:
        """A per-attempt timeout that cannot outlive the deadline."""
        return max(min(timeout_s, self.remaining), floor_s)

    def check(self, op: str = "op") -> None:
        if self.expired:
            raise DeadlineExceeded(f"{op}: {self.total_s:.3f} s budget spent")


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with clock-driven half-open probes.

    ``allow()`` answers "may I attempt the operation now?"; callers then
    report the outcome through ``record_success``/``record_failure``.
    Transitions are appended to ``self.transitions`` (tests assert the
    open → half-open → closed ladder) and counted as
    ``resilience.breaker.<transition>``.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 5.0,
        clock: Clock | None = None,
        name: str = "breaker",
    ):
        self.failure_threshold = max(1, int(failure_threshold))
        self.reset_timeout_s = float(reset_timeout_s)
        self.clock = clock or WallClock()
        self.name = name
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.transitions: list[str] = []

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        self.transitions.append(state)
        get_registry().counter(f"resilience.breaker.{state}").inc()

    def allow(self) -> bool:
        """True if an attempt may proceed (possibly as the half-open probe)."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if (
                self.opened_at is not None
                and self.clock.now() - self.opened_at >= self.reset_timeout_s
            ):
                self._transition(HALF_OPEN)
                return True
            return False
        return True  # HALF_OPEN: the probe is in flight; let it through

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self.opened_at = self.clock.now()
            self._transition(OPEN)
        elif self.state == CLOSED and self.consecutive_failures >= self.failure_threshold:
            self.opened_at = self.clock.now()
            self._transition(OPEN)

    def call(self, fn: Callable[[], Any], op: str = "op") -> Any:
        """Convenience wrapper: gate, run, record."""
        if not self.allow():
            raise CircuitOpen(f"{op}: circuit {self.name!r} is open")
        try:
            result = fn()
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result


def classify(exc: BaseException) -> str:
    """Stable classification label for a failure (provenance records it)."""
    if isinstance(exc, ResilienceError):
        return exc.classification
    return type(exc).__name__


def classify_chain(exc: BaseException) -> list[str]:
    """Classification of an exception and its ``__cause__`` chain."""
    out: list[str] = []
    seen: set[int] = set()
    current: BaseException | None = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        out.append(classify(current))
        current = current.__cause__
    return out


def is_transient(exc: BaseException, extra: Iterable[type[BaseException]] = ()) -> bool:
    """Default transience test shared by the sandbox client and tests."""
    transient: tuple[type[BaseException], ...] = (
        ConnectionError,
        TimeoutError,
        *extra,
    )
    return isinstance(exc, transient)
