"""Question interpretation: the mock LLM's language understanding."""

import pytest

from repro.llm.interpret import interpret_question


class TestScope:
    def test_all_simulations(self):
        i = interpret_question("Across all the simulations, average halo count per step")
        assert i.runs is None

    def test_specific_simulation(self):
        i = interpret_question("largest halo in simulation 2 at timestep 498")
        assert i.runs == [2]
        assert i.steps == [498]

    def test_two_simulations_phrase(self):
        i = interpret_question("differences between the two simulations in halo count")
        assert i.runs == [0, 1]

    def test_all_timesteps(self):
        i = interpret_question("halo mass for all timesteps in simulation 0")
        assert i.steps is None

    def test_default_latest_step(self):
        i = interpret_question("top 10 halos in simulation 0")
        assert i.steps == ["latest"]


class TestRanking:
    def test_top_k(self):
        i = interpret_question("find the largest 100 halos at timestep 624")
        assert i.top_k == 100
        assert "top_k" in i.analyses

    def test_two_largest(self):
        i = interpret_question("the two largest halos by halo count in timestep 624")
        assert i.top_k == 2
        assert i.rank_metric == "fof_halo_count"

    def test_secondary_top_k(self):
        i = interpret_question(
            "two largest halos in timestep 624. Then the top 10 galaxies associated to those halos"
        )
        assert i.top_k == 2 and i.second_top_k == 10

    def test_galaxy_ranking_uses_stellar_mass(self):
        i = interpret_question("top 50 galaxies at timestep 498")
        assert i.rank_metric == "gal_stellar_mass"


class TestAnalyses:
    def test_aggregate(self):
        i = interpret_question("what is the average fof_halo_count at each time step?")
        assert "aggregate" in i.analyses
        assert "step" in i.group_keys

    def test_evolution_tracking(self):
        i = interpret_question("plot the change in mass of the largest halos over all timesteps")
        assert "track_evolution" in i.analyses
        assert i.tracking_kind == "characteristic"

    def test_gas_fraction_relation(self):
        i = interpret_question(
            "how does the slope and normalization of the gas-mass fraction-mass relation evolve"
        )
        assert i.relation is not None
        assert i.relation.y_term == "gas mass fraction"
        assert i.relation.per_step
        assert "relation_fit" in i.analyses
        assert "track_evolution" not in i.analyses  # evolve belongs to the fit

    def test_smhm_by_seed_mass(self):
        i = interpret_question(
            "how does the slope and intrinsic scatter of the SMHM relation vary as a function of seed mass?"
        )
        assert i.relation is not None
        assert i.relation.per_param == "M_seed"
        assert i.runs is None  # parameter sweep requires the whole ensemble
        assert "relation_by_param" in i.analyses

    def test_interestingness(self):
        i = interpret_question("generate an interestingness score and plot as a UMAP plot")
        assert "interestingness" in i.analyses
        assert "umap" in i.viz

    def test_neighborhood(self):
        i = interpret_question("all halos within 20 Mpc of the target halo")
        assert i.radius_mpc == 20.0
        assert "neighborhood" in i.analyses

    def test_parameter_inference_ambiguous(self):
        i = interpret_question(
            "make an inference on the direction of the FSN and VEL parameters to increase halo count"
        )
        assert "parameter_inference" in i.analyses
        assert i.ambiguous

    def test_compare_groups(self):
        i = interpret_question(
            "what are the differences in characteristics of the two groups of galaxies?"
        )
        assert "compare_groups" in i.analyses


class TestViz:
    def test_paraview(self):
        i = interpret_question("plot all of them in Paraview")
        assert "paraview3d" in i.viz

    def test_two_plots(self):
        i = interpret_question(
            "plot the change in mass, provide two plots using both fof_halo_count and "
            "fof_halo_mass as metrics"
        )
        assert i.viz.count("line") == 2

    def test_histogram(self):
        i = interpret_question("show a histogram of fof_halo_mass")
        assert "hist" in i.viz

    def test_no_plot_requested(self):
        i = interpret_question("what is the average halo count?")
        assert i.viz == []


class TestEntitiesAndJoin:
    def test_galaxy_halo_join(self):
        i = interpret_question("galaxies associated to those halos related by fof_halo_tag")
        assert set(i.entities) >= {"galaxies", "halos"}
        assert i.join_galaxies_to_halos

    def test_smhm_implies_galaxies(self):
        i = interpret_question("the stellar-to-halo mass (SMHM) relation at timestep 624")
        assert "galaxies" in i.entities
        assert i.join_galaxies_to_halos

    def test_metric_phrase_resolution(self):
        i = interpret_question("using velocity, mass, and kinetic energy of the halos")
        assert "fof_halo_vel_disp" in i.metric_terms
        assert "fof_halo_mass" in i.metric_terms
        assert "fof_halo_ke" in i.metric_terms

    def test_no_substring_false_positive(self):
        # 'mass' inside 'gal_gas_mass' must not add fof_halo_mass
        i = interpret_question("average gal_gas_mass of galaxies at each time step")
        assert "fof_halo_mass" not in i.metric_terms
        assert "gal_gas_mass" in i.metric_terms
