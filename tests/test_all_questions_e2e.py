"""Every evaluation question, end to end, without error injection.

With the error model off, all 20 question pipelines must complete with
satisfactory data and visualization oracles — this pins the full
interpreter → planner → loader → SQL → Python → viz chain per question
so regressions localize immediately.
"""

import pytest

from repro.eval.metrics import oracle_assess
from repro.eval.questions import QUESTION_SUITE


@pytest.mark.parametrize("question", QUESTION_SUITE, ids=[q.qid for q in QUESTION_SUITE])
def test_question_end_to_end(question, clean_app):
    report = clean_app.run_query(question.text)
    assert report.completed, f"{question.qid} failed at step {report.run.failed_at_step}"
    assert report.run.tasks_completed_fraction == 1.0
    data_ok, visual_ok = oracle_assess(report)
    assert data_ok, f"{question.qid}: data oracle rejected the output"
    assert visual_ok, f"{question.qid}: visual oracle rejected the output"
    # every run leaves a non-trivial provenance trail and bounded storage
    assert report.storage_bytes > 0
    assert report.tokens > 500
